"""Simulated server applications for experiment targets.

These run as plain processes on simulated hosts (they are *not* PacketLab
components) and give experiments something realistic to measure against:
UDP echo, a UDP sink that records arrival times (the paper's bandwidth
server), a DNS authoritative server, and a minimal HTTP server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.netsim.node import Node
from repro.packet.dns import DnsMessage, DnsRecord, RCODE_NXDOMAIN
from repro.util.byteio import DecodeError


def start_udp_echo(node: Node, port: int, prefix: bytes = b"") -> None:
    """Echo every UDP datagram back to its sender."""

    def server() -> Generator:
        sock = node.udp.bind(port)
        while True:
            payload, src_ip, src_port, _ = yield sock.recvfrom()
            sock.sendto(prefix + payload, src_ip, src_port)

    node.spawn(server(), name=f"udp-echo:{port}")


@dataclass
class UdpSink:
    """Records (sim_time, size, payload) for every datagram received."""

    node: Node
    port: int
    arrivals: list[tuple[float, int, bytes]] = field(default_factory=list)

    def start(self) -> "UdpSink":
        def server() -> Generator:
            sock = self.node.udp.bind(self.port)
            while True:
                payload, _src_ip, _src_port, _ = yield sock.recvfrom()
                self.arrivals.append((self.node.sim.now, len(payload), payload))

        self.node.spawn(server(), name=f"udp-sink:{self.port}")
        return self

    @property
    def count(self) -> int:
        return len(self.arrivals)

    def observed_rate_bps(self, wire_overhead: int = 42) -> float:
        """Arrival rate including per-packet wire overhead (UDP 8 + IP 20 +
        link 14 = 42 bytes), computed over the burst span."""
        if len(self.arrivals) < 2:
            return 0.0
        first_time = self.arrivals[0][0]
        last_time = self.arrivals[-1][0]
        if last_time <= first_time:
            return 0.0
        bits = sum(
            (size + wire_overhead) * 8 for _, size, _ in self.arrivals[1:]
        )
        return bits / (last_time - first_time)


def start_dns_server(node: Node, port: int, zone: dict[str, int]) -> None:
    """Authoritative DNS for a static name -> IPv4 zone."""

    def server() -> Generator:
        sock = node.udp.bind(port)
        while True:
            payload, src_ip, src_port, _ = yield sock.recvfrom()
            try:
                query = DnsMessage.decode(payload)
            except DecodeError:
                continue
            if not query.questions:
                continue
            name = query.questions[0].name
            address = zone.get(name)
            if address is None:
                response = query.respond((), rcode=RCODE_NXDOMAIN)
            else:
                response = query.respond((DnsRecord.a(name, address),))
            sock.sendto(response.encode(), src_ip, src_port)

    node.spawn(server(), name=f"dns:{port}")


def start_http_server(
    node: Node, port: int, pages: Optional[dict[str, bytes]] = None
) -> None:
    """A minimal HTTP/1.0 server: GET <path>, Content-Length, close."""
    site = pages or {"/": b"<html>hello from the simulated web</html>"}

    def handle(conn) -> Generator:
        request = b""
        while b"\r\n\r\n" not in request:
            chunk = yield from conn.recv(1024)
            if not chunk:
                conn.close()
                return
            request += chunk
        line = request.split(b"\r\n", 1)[0].decode("ascii", "replace")
        parts = line.split()
        path = parts[1] if len(parts) >= 2 else "/"
        body = site.get(path)
        if body is None:
            head = b"HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n"
            yield from conn.send(head)
        else:
            head = (
                b"HTTP/1.0 200 OK\r\nContent-Length: "
                + str(len(body)).encode()
                + b"\r\n\r\n"
            )
            yield from conn.send(head + body)
        conn.close()

    def server() -> Generator:
        listener = node.tcp.listen(port)
        while True:
            conn = yield listener.accept()
            node.spawn(handle(conn), name=f"http-conn:{port}")

    node.spawn(server(), name=f"http:{port}")
