"""Uplink bandwidth measurement — the paper's first prototype experiment (§4).

"To measure an endpoint's uplink bandwidth, we make it send a sequence of
UDP packets to our server as quickly as possible, and then record the rate
at which they arrive at the server. The controller first reads the current
time t0 on the endpoint (using the mread command). It then opens a UDP
socket on the endpoint (using nopen) and schedules a block of UDP
datagrams to be sent from the endpoint to the controller at time t0+5
(using nsend). The controller then waits for the UDP packets from the
endpoint, records their arrival times, and calculates the uplink
bandwidth."

Scheduling the burst in the future is the point: by the time the packets
leave, the control channel is quiet, so control traffic does not contend
with the measurement on the shared access link (§3.1). The ``immediate``
mode sends each datagram as soon as its nsend arrives, re-creating the
contention the design avoids — benchmark C1 sweeps both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.controller.client import (
    CommandError,
    EndpointHandle,
    RpcTimeout,
    SessionClosed,
)
from repro.experiments.servers import UdpSink
from repro.netsim.clock import NANOSECONDS
from repro.netsim.node import Node

# Per-packet wire overhead: UDP(8) + IPv4(20) + link(14).
WIRE_OVERHEAD = 42

# Faults an experiment driver degrades gracefully on: the session died,
# a command went unanswered, or the endpoint refused a command.
_RECOVERABLE = (SessionClosed, RpcTimeout, CommandError)


@dataclass
class BandwidthResult:
    measured_bps: float
    packets_sent: int
    packets_received: int
    burst_span: float
    first_arrival: float
    scheduled_lead: float
    # Graceful degradation under faults: ``partial`` marks a run cut
    # short by a session/command failure, ``error`` says why. The
    # measured fields then cover only the packets that made it out.
    partial: bool = False
    error: Optional[str] = None

    @property
    def loss_fraction(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return 1.0 - self.packets_received / self.packets_sent


def measure_uplink_bandwidth(
    handle: EndpointHandle,
    controller_node: Node,
    packet_count: int = 50,
    payload_size: int = 1000,
    lead_time: float = 5.0,
    immediate: bool = False,
    sink_port: int = 9901,
    sktid: int = 0,
    settle_time: float = 30.0,
) -> Generator:
    """Run the §4 uplink bandwidth experiment; returns BandwidthResult.

    Use as ``result = yield from measure_uplink_bandwidth(handle, node)``.
    """
    sink = UdpSink(controller_node, sink_port).start()
    error: Optional[str] = None
    issued = 0
    try:
        status = yield from handle.nopen_udp(
            sktid,
            locport=0,
            remaddr=controller_node.primary_address(),
            remport=sink_port,
        )
        handle.expect_ok(status, "nopen(udp)")
        t0 = yield from handle.read_clock()
        if immediate:
            due = 0  # a time in the past: send upon command arrival (§3.1)
        else:
            due = t0 + int(lead_time * NANOSECONDS)
        payload_base = b"B" * (payload_size - 2)
        for index in range(packet_count):
            data = index.to_bytes(2, "big") + payload_base
            if immediate:
                # Pipelined: the endpoint transmits each datagram as soon as
                # its command arrives, so control delivery and measurement
                # traffic share the access link — the contention the paper's
                # future-scheduling design avoids.
                handle.nsend_nowait(sktid, due, data)
            else:
                status = yield from handle.nsend(sktid, due, data)
                handle.expect_ok(status, "nsend")
            issued += 1
    except _RECOVERABLE as exc:
        # Partial result: report what the sink observed of the packets
        # that were scheduled before the session/command failed.
        error = f"{type(exc).__name__}: {exc}"
    # Wait for the burst to drain to the sink.
    if issued:
        deadline = controller_node.sim.now + lead_time + settle_time
        while sink.count < issued and controller_node.sim.now < deadline:
            yield 0.1
    try:
        if not handle.closed:
            yield from handle.nclose(sktid)
    except _RECOVERABLE:
        pass
    arrivals = sink.arrivals
    measured = sink.observed_rate_bps(WIRE_OVERHEAD)
    return BandwidthResult(
        measured_bps=measured,
        packets_sent=issued,
        packets_received=len(arrivals),
        burst_span=(arrivals[-1][0] - arrivals[0][0]) if len(arrivals) > 1 else 0.0,
        first_arrival=arrivals[0][0] if arrivals else 0.0,
        scheduled_lead=0.0 if immediate else lead_time,
        partial=error is not None,
        error=error,
    )
