"""Campaign-ready variants of the stock experiments.

Each factory wraps one controller-side experiment generator as a
:class:`~repro.fleet.scheduler.CampaignJob`: the ``run`` body executes
the experiment against a pooled endpoint handle, and the ``metrics``
extractor reduces the raw result to the mergeable
``{"counters": ..., "values": ...}`` shape the fleet aggregator folds
into per-endpoint and campaign rollups.

Failure semantics: the stock experiments degrade gracefully (they catch
transport faults and return partial results). A campaign wants the
opposite for *empty* runs — a job that produced no data re-raises as
:class:`~repro.controller.client.SessionClosed` so the scheduler's
failure-aware rescheduling retries it elsewhere in virtual time.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.controller.client import SessionClosed
from repro.experiments.bandwidth import measure_uplink_bandwidth
from repro.experiments.ping import ping
from repro.experiments.traceroute import traceroute
from repro.fleet.scheduler import CampaignContext, CampaignJob


def ping_job(
    name: str,
    destination: Optional[int] = None,
    count: int = 4,
    interval: float = 0.2,
    timeout: float = 2.0,
    payload_size: int = 32,
    endpoint: Optional[str] = None,
) -> CampaignJob:
    """A ping run as a campaign job (``destination=None`` = the
    testbed's measurement target)."""

    def run(handle, ctx: CampaignContext) -> Generator:
        dest = destination if destination is not None else ctx.target_address
        result = yield from ping(
            handle, dest, count=count, interval=interval,
            timeout=timeout, payload_size=payload_size,
        )
        if result.partial and result.received == 0:
            raise SessionClosed(result.error or "ping produced no data")
        return result

    def metrics(result) -> dict:
        rtts = [probe.rtt for probe in result.probes
                if probe.rtt is not None]
        return {
            "counters": {
                "probes_sent": result.sent,
                "probes_received": result.received,
                "probes_lost": result.sent - result.received,
                "partial_runs": 1 if result.partial else 0,
            },
            "values": {"rtt_s": rtts},
        }

    return CampaignJob(name=name, run=run, metrics=metrics,
                       endpoint=endpoint)


def traceroute_job(
    name: str,
    destination: Optional[int] = None,
    max_ttl: int = 16,
    per_hop_timeout: float = 2.0,
    endpoint: Optional[str] = None,
) -> CampaignJob:
    """A traceroute run as a campaign job."""

    def run(handle, ctx: CampaignContext) -> Generator:
        dest = destination if destination is not None else ctx.target_address
        result = yield from traceroute(
            handle, dest, max_ttl=max_ttl,
            per_hop_timeout=per_hop_timeout,
        )
        if result.partial and not result.hops:
            raise SessionClosed(result.error or "traceroute produced no data")
        return result

    def metrics(result) -> dict:
        hop_rtts = [hop.rtt for hop in result.hops if hop.rtt is not None]
        return {
            "counters": {
                "traceroutes": 1,
                "destinations_reached": 1 if result.reached else 0,
                "hops_responding": sum(
                    1 for hop in result.hops if hop.responder is not None
                ),
                "partial_runs": 1 if result.partial else 0,
            },
            "values": {
                "hop_rtt_s": hop_rtts,
                "path_length": [float(len(result.hops))],
            },
        }

    return CampaignJob(name=name, run=run, metrics=metrics,
                       endpoint=endpoint)


def bandwidth_job(
    name: str,
    packet_count: int = 20,
    payload_size: int = 1000,
    lead_time: float = 0.5,
    settle_time: float = 3.0,
    endpoint: Optional[str] = None,
) -> CampaignJob:
    """An uplink bandwidth estimate as a campaign job.

    The controller-side UDP sink listens on a port drawn from the
    campaign's allocator, so any number of concurrent bandwidth jobs
    coexist on the controller host without listener collisions.
    """

    def run(handle, ctx: CampaignContext) -> Generator:
        if ctx.controller_host is None or ctx.allocate_port is None:
            raise SessionClosed(
                "bandwidth_job needs a campaign context with a "
                "controller host and port allocator"
            )
        result = yield from measure_uplink_bandwidth(
            handle,
            ctx.controller_host,
            packet_count=packet_count,
            payload_size=payload_size,
            lead_time=lead_time,
            settle_time=settle_time,
            sink_port=ctx.allocate_port(),
        )
        if result.partial and result.packets_received == 0:
            raise SessionClosed(result.error or "bandwidth run saw no packets")
        return result

    def metrics(result) -> dict:
        return {
            "counters": {
                "bw_packets_sent": result.packets_sent,
                "bw_packets_received": result.packets_received,
                "partial_runs": 1 if result.partial else 0,
            },
            "values": {"uplink_bps": [result.measured_bps]},
        }

    return CampaignJob(name=name, run=run, metrics=metrics,
                       endpoint=endpoint)
