"""Traceroute — the paper's second prototype experiment (§4).

"To reproduce the traceroute tool, an experiment controller creates a
series of ICMP echo request packets with incrementing TTL values starting
from 1 and the payload set to contain a two-byte sequence number... The
sequence number is extracted from the packet and used to match the
original ICMP's t_snd to calculate the round trip time as t_rcv - t_snd.
Note that both timestamps are relative to the endpoint's clock. The
controller sends packets to the endpoint until either an ICMP reply is
received from the target destination or the next TTL value is greater
than 40."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.controller.client import (
    CommandError,
    EndpointHandle,
    RpcTimeout,
    SessionClosed,
)
from repro.endpoint.memory import OFF_ADDR_IP
from repro.filtervm import builtins
from repro.netsim.clock import NANOSECONDS
from repro.packet.icmp import (
    ICMP_ECHO_REPLY,
    ICMP_TIME_EXCEEDED,
    IcmpMessage,
)
from repro.packet.ipv4 import IPv4Packet, PROTO_ICMP
from repro.util.byteio import DecodeError

MAX_TTL = 40

_RECOVERABLE = (SessionClosed, RpcTimeout, CommandError)


@dataclass
class TracerouteHop:
    ttl: int
    responder: Optional[int]  # IPv4 of the answering host; None = timeout
    rtt: Optional[float]  # endpoint-clock seconds
    reached_destination: bool = False


@dataclass
class TracerouteResult:
    destination: int
    hops: list[TracerouteHop] = field(default_factory=list)
    reached: bool = False
    # Graceful degradation under faults: the hops gathered before the
    # session/command failure are still reported.
    partial: bool = False
    error: Optional[str] = None

    def responder_path(self) -> list[Optional[int]]:
        return [hop.responder for hop in self.hops]


def traceroute(
    handle: EndpointHandle,
    destination: int,
    sktid: int = 0,
    ident: int = 0x7472,  # "tr"
    per_hop_timeout: float = 2.0,
    max_ttl: int = MAX_TTL,
    lead_time: float = 0.05,
) -> Generator:
    """Run the §4 traceroute experiment; returns TracerouteResult.

    All timestamps are endpoint-clock values, exactly as the paper
    specifies; the controller never needs synchronized time.
    """
    result = TracerouteResult(destination=destination)
    try:
        status = yield from handle.nopen_raw(sktid)
        handle.expect_ok(status, "nopen(raw)")
        endpoint_ip = int.from_bytes(
            (yield from handle.mread(OFF_ADDR_IP, 4)), "big"
        )
        # Capture ICMP for the whole run.
        far_future = (1 << 62)
        status = yield from handle.ncap(
            sktid, far_future, builtins.capture_protocol(PROTO_ICMP)
        )
        handle.expect_ok(status, "ncap")

        for ttl in range(1, max_ttl + 1):
            t0 = yield from handle.read_clock()
            t_snd = t0 + int(lead_time * NANOSECONDS)
            probe = IPv4Packet(
                src=endpoint_ip,
                dst=destination,
                proto=PROTO_ICMP,
                payload=IcmpMessage.echo_request(
                    ident, ttl, payload=ttl.to_bytes(2, "big")
                ).encode(),
                ttl=ttl,
            ).encode()
            status = yield from handle.nsend(sktid, t_snd, probe)
            handle.expect_ok(status, "nsend")
            deadline = t_snd + int(per_hop_timeout * NANOSECONDS)
            hop = yield from _await_hop(
                handle, ttl, ident, destination, t_snd, deadline
            )
            result.hops.append(hop)
            if hop.reached_destination:
                result.reached = True
                break
    except _RECOVERABLE as exc:
        # Partial result: keep the hops discovered before the failure.
        result.partial = True
        result.error = f"{type(exc).__name__}: {exc}"
    try:
        if not handle.closed:
            yield from handle.nclose(sktid)
    except _RECOVERABLE:
        pass
    return result


def _await_hop(
    handle: EndpointHandle,
    ttl: int,
    ident: int,
    destination: int,
    t_snd: int,
    deadline: int,
) -> Generator:
    """Poll until this TTL's answer (matched by sequence number) arrives."""
    while True:
        poll = yield from handle.npoll(deadline)
        match = _match_response(poll.records, ttl, ident, destination, t_snd)
        if match is not None:
            return match
        now = yield from handle.read_clock()
        if now >= deadline:
            return TracerouteHop(ttl=ttl, responder=None, rtt=None)


def _match_response(records, ttl, ident, destination, t_snd):
    for record in records:
        try:
            packet = IPv4Packet.decode(record.data, verify_checksum=False)
            message = IcmpMessage.decode(packet.payload, verify_checksum=False)
        except DecodeError:
            continue
        if message.icmp_type == ICMP_ECHO_REPLY:
            if message.echo_ident != ident or message.echo_seq != ttl:
                continue
            rtt = (record.timestamp - t_snd) / NANOSECONDS
            return TracerouteHop(
                ttl=ttl, responder=packet.src, rtt=rtt,
                reached_destination=packet.src == destination,
            )
        if message.icmp_type == ICMP_TIME_EXCEEDED:
            quote = message.original_datagram()
            if len(quote) < 28 or quote[9] != PROTO_ICMP:
                continue
            # Sequence number of the quoted echo request (ICMP header
            # starts at quote[20]; seq is its bytes 6..8).
            seq = int.from_bytes(quote[26:28], "big")
            quoted_ident = int.from_bytes(quote[24:26], "big")
            if quoted_ident != ident or seq != ttl:
                continue
            rtt = (record.timestamp - t_snd) / NANOSECONDS
            return TracerouteHop(ttl=ttl, responder=packet.src, rtt=rtt)
    return None
