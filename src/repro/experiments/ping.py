"""Ping over the PacketLab interface.

The paper repeatedly uses timing measurements like ping as the example of
experiments PacketLab serves well: "what they need are precise timestamps
(which PacketLab provides), rather than fast endpoint response times"
(§3.5). RTTs here come entirely from endpoint-local timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.controller.client import (
    CommandError,
    EndpointHandle,
    RpcTimeout,
    SessionClosed,
)
from repro.endpoint.memory import OFF_ADDR_IP
from repro.filtervm import builtins
from repro.netsim.clock import NANOSECONDS
from repro.packet.icmp import ICMP_ECHO_REPLY, IcmpMessage
from repro.packet.ipv4 import IPv4Packet, PROTO_ICMP
from repro.util.byteio import DecodeError


@dataclass
class PingProbe:
    seq: int
    rtt: Optional[float]  # endpoint-clock seconds; None = lost


_RECOVERABLE = (SessionClosed, RpcTimeout, CommandError)


@dataclass
class PingResult:
    destination: int
    probes: list[PingProbe] = field(default_factory=list)
    # Graceful degradation: probes scheduled before a failure still
    # report their RTTs (or loss); ``error`` says what cut the run short.
    partial: bool = False
    error: Optional[str] = None

    @property
    def sent(self) -> int:
        return len(self.probes)

    @property
    def received(self) -> int:
        return sum(1 for probe in self.probes if probe.rtt is not None)

    @property
    def loss_fraction(self) -> float:
        return 1.0 - self.received / self.sent if self.probes else 0.0

    @property
    def rtt_avg(self) -> Optional[float]:
        rtts = [probe.rtt for probe in self.probes if probe.rtt is not None]
        return sum(rtts) / len(rtts) if rtts else None

    @property
    def rtt_min(self) -> Optional[float]:
        rtts = [probe.rtt for probe in self.probes if probe.rtt is not None]
        return min(rtts) if rtts else None


def ping(
    handle: EndpointHandle,
    destination: int,
    count: int = 4,
    interval: float = 0.2,
    timeout: float = 2.0,
    ident: int = 0x7069,  # "pi"
    sktid: int = 0,
    payload_size: int = 32,
) -> Generator:
    """Ping ``destination`` from the endpoint; returns PingResult."""
    result = PingResult(destination=destination)
    send_times: dict[int, int] = {}
    rtts: dict[int, float] = {}
    try:
        status = yield from handle.nopen_raw(sktid)
        handle.expect_ok(status, "nopen(raw)")
        endpoint_ip = int.from_bytes(
            (yield from handle.mread(OFF_ADDR_IP, 4)), "big"
        )
        status = yield from handle.ncap(
            sktid, 1 << 62, builtins.capture_protocol(PROTO_ICMP)
        )
        handle.expect_ok(status, "ncap")

        # Schedule the whole probe train up front (no per-probe round trips).
        t0 = yield from handle.read_clock()
        for seq in range(1, count + 1):
            due = t0 + int((0.05 + (seq - 1) * interval) * NANOSECONDS)
            send_times[seq] = due
            probe = IPv4Packet(
                src=endpoint_ip, dst=destination, proto=PROTO_ICMP,
                payload=IcmpMessage.echo_request(
                    ident, seq, payload=b"\x00" * payload_size
                ).encode(),
            ).encode()
            status = yield from handle.nsend(sktid, due, probe)
            handle.expect_ok(status, "nsend")

        deadline = t0 + int((0.05 + count * interval + timeout) * NANOSECONDS)
        while len(rtts) < count:
            poll = yield from handle.npoll(deadline)
            for record in poll.records:
                parsed = _parse_reply(record.data, ident)
                if parsed is None:
                    continue
                seq, src = parsed
                if src == destination and seq in send_times and seq not in rtts:
                    rtts[seq] = (
                        record.timestamp - send_times[seq]
                    ) / NANOSECONDS
            now = yield from handle.read_clock()
            if now >= deadline:
                break
    except _RECOVERABLE as exc:
        # Partial result: probes scheduled before the failure still count.
        result.partial = True
        result.error = f"{type(exc).__name__}: {exc}"
    try:
        if not handle.closed:
            yield from handle.nclose(sktid)
    except _RECOVERABLE:
        pass
    for seq in sorted(send_times):
        result.probes.append(PingProbe(seq=seq, rtt=rtts.get(seq)))
    return result


def _parse_reply(data: bytes, ident: int):
    try:
        packet = IPv4Packet.decode(data, verify_checksum=False)
        message = IcmpMessage.decode(packet.payload, verify_checksum=False)
    except DecodeError:
        return None
    if message.icmp_type != ICMP_ECHO_REPLY or message.echo_ident != ident:
        return None
    return message.echo_seq, packet.src
