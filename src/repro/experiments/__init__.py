"""Measurement experiments implemented as controller logic.

Each experiment is a generator function over an
:class:`~repro.controller.client.EndpointHandle` — pure controller-side
logic, per the paper's core design: "adding a new experiment should
require no changes to endpoints".

- :func:`measure_uplink_bandwidth` and :func:`traceroute` are the paper's
  two §4 prototype experiments.
- :func:`ping`, :func:`dns_query`, :func:`http_get`, and
  :func:`passive_capture` cover the measurement types the paper cites from
  existing platforms (Atlas's fixed set, OONI-style fetches, telescopes).
"""

from repro.experiments.bandwidth import BandwidthResult, measure_uplink_bandwidth
from repro.experiments.campaign import bandwidth_job, ping_job, traceroute_job
from repro.experiments.dispersion import (
    DispersionResult,
    measure_downlink_dispersion,
)
from repro.experiments.dnsquery import DnsResult, dns_query
from repro.experiments.httpget import HttpResult, http_get
from repro.experiments.ping import PingProbe, PingResult, ping
from repro.experiments.servers import (
    UdpSink,
    start_dns_server,
    start_http_server,
    start_udp_echo,
)
from repro.experiments.telescope import (
    CapturedPacket,
    TelescopeResult,
    passive_capture,
)
from repro.experiments.traceroute import (
    TracerouteHop,
    TracerouteResult,
    traceroute,
)

__all__ = [
    "BandwidthResult",
    "CapturedPacket",
    "DispersionResult",
    "DnsResult",
    "HttpResult",
    "PingProbe",
    "PingResult",
    "TelescopeResult",
    "TracerouteHop",
    "TracerouteResult",
    "UdpSink",
    "bandwidth_job",
    "dns_query",
    "http_get",
    "measure_downlink_dispersion",
    "measure_uplink_bandwidth",
    "passive_capture",
    "ping",
    "ping_job",
    "start_dns_server",
    "start_http_server",
    "start_udp_echo",
    "traceroute",
    "traceroute_job",
]
