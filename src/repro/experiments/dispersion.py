"""Downlink bandwidth by packet-pair dispersion.

The complement of the paper's §4 uplink experiment, built on the other
half of the interface: *receive* timestamping. A sender (the controller
host itself, or any cooperating server) emits back-to-back packet pairs
toward the endpoint; the endpoint's capture timestamps give the pair
dispersion, and ``bottleneck_bw = wire_size / dispersion``. Precise
endpoint-side timestamps are exactly what the paper argues PacketLab
provides in place of fast endpoint response (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.controller.client import (
    CommandError,
    EndpointHandle,
    RpcTimeout,
    SessionClosed,
)
from repro.netsim.clock import NANOSECONDS
from repro.netsim.links import LINK_OVERHEAD_BYTES
from repro.netsim.node import Node
from repro.packet.ipv4 import IP_HEADER_LEN
from repro.packet.udp import UDP_HEADER_LEN


_RECOVERABLE = (SessionClosed, RpcTimeout, CommandError)


@dataclass
class DispersionResult:
    estimated_bps: float
    pair_dispersions: list[float] = field(default_factory=list)
    pairs_received: int = 0
    pairs_sent: int = 0
    # Graceful degradation: pairs timestamped before a failure still
    # contribute to the estimate; ``error`` says what cut the run short.
    partial: bool = False
    error: Optional[str] = None


def measure_downlink_dispersion(
    handle: EndpointHandle,
    sender_node: Node,
    pair_count: int = 8,
    payload_size: int = 1000,
    pair_spacing: float = 0.2,
    listen_port: int = 9750,
    sktid: int = 0,
) -> Generator:
    """Estimate the endpoint's downlink bottleneck bandwidth.

    ``sender_node`` (typically the controller host) fires back-to-back UDP
    pairs at the endpoint while the experiment reads their arrival
    timestamps from capture records. The per-pair dispersion at the
    bottleneck yields the bandwidth estimate; the median over pairs
    rejects cross-traffic noise.
    """
    error: Optional[str] = None
    sent = 0
    arrivals: dict[tuple[int, int], int] = {}
    try:
        status = yield from handle.nopen_udp(sktid, locport=listen_port)
        handle.expect_ok(status, "nopen(udp)")
        endpoint_addr = yield from handle.mread(8, 4)  # OFF_ADDR_IP
        endpoint_ip = int.from_bytes(endpoint_addr, "big")
        sock = sender_node.udp.bind(0)
        payload = b"P" * payload_size
        for pair in range(pair_count):
            for half in range(2):
                sock.sendto(
                    bytes([pair, half]) + payload, endpoint_ip, listen_port
                )
            sent = pair + 1
            yield pair_spacing
        # Collect arrival timestamps.
        deadline = (yield from handle.read_clock()) + int(3 * NANOSECONDS)
        while len(arrivals) < 2 * pair_count:
            poll = yield from handle.npoll(deadline)
            for record in poll.records:
                if record.sktid != sktid or len(record.data) < 2:
                    continue
                key = (record.data[0], record.data[1])
                arrivals.setdefault(key, record.timestamp)
            if not poll.records:
                now = yield from handle.read_clock()
                if now >= deadline:
                    break
    except _RECOVERABLE as exc:
        # Partial result: whatever pairs were timestamped still count.
        error = f"{type(exc).__name__}: {exc}"
    try:
        if not handle.closed:
            yield from handle.nclose(sktid)
    except _RECOVERABLE:
        pass
    wire_bits = (
        payload_size + 2 + UDP_HEADER_LEN + IP_HEADER_LEN + LINK_OVERHEAD_BYTES
    ) * 8
    dispersions = []
    for pair in range(pair_count):
        first = arrivals.get((pair, 0))
        second = arrivals.get((pair, 1))
        if first is None or second is None or second <= first:
            continue
        dispersions.append((second - first) / NANOSECONDS)
    if not dispersions:
        return DispersionResult(
            estimated_bps=0.0, pairs_sent=sent,
            partial=error is not None, error=error,
        )
    dispersions.sort()
    median = dispersions[len(dispersions) // 2]
    return DispersionResult(
        estimated_bps=wire_bits / median,
        pair_dispersions=dispersions,
        pairs_received=len(dispersions),
        pairs_sent=sent,
        partial=error is not None,
        error=error,
    )
