"""Passive capture: PacketLab as a network telescope (§3.1).

"The mirror option is useful because it allows PacketLab to be used as a
passive packet capture interface, for example, to capture packets at a
network telescope." A mirror filter captures copies of traffic without
disturbing the endpoint's normal packet processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.controller.client import EndpointHandle
from repro.filtervm import builtins
from repro.filtervm.program import FilterProgram
from repro.netsim.clock import NANOSECONDS
from repro.packet.ipv4 import IPv4Packet
from repro.util.byteio import DecodeError


@dataclass
class CapturedPacket:
    timestamp: int  # endpoint-clock ticks
    packet: IPv4Packet


@dataclass
class TelescopeResult:
    packets: list[CapturedPacket] = field(default_factory=list)
    dropped_packets: int = 0
    dropped_bytes: int = 0

    @property
    def count(self) -> int:
        return len(self.packets)

    def sources(self) -> set[int]:
        return {captured.packet.src for captured in self.packets}


def passive_capture(
    handle: EndpointHandle,
    duration: float,
    poll_interval: float = 0.5,
    filt: Optional[FilterProgram] = None,
    sktid: int = 0,
) -> Generator:
    """Mirror traffic at the endpoint for ``duration`` endpoint seconds.

    Uses a mirror-verdict filter so the endpoint's OS still sees every
    packet — the capture is invisible to the traffic being observed.
    """
    status = yield from handle.nopen_raw(sktid)
    handle.expect_ok(status, "nopen(raw)")
    t0 = yield from handle.read_clock()
    until = t0 + int(duration * NANOSECONDS)
    program = filt or builtins.mirror_all()
    status = yield from handle.ncap(sktid, until, program)
    handle.expect_ok(status, "ncap")

    result = TelescopeResult()
    while True:
        now = yield from handle.read_clock()
        if now >= until:
            break
        deadline = min(until, now + int(poll_interval * NANOSECONDS))
        poll = yield from handle.npoll(deadline)
        result.dropped_packets += poll.dropped_packets
        result.dropped_bytes += poll.dropped_bytes
        for record in poll.records:
            try:
                packet = IPv4Packet.decode(record.data, verify_checksum=False)
            except DecodeError:
                continue
            result.packets.append(
                CapturedPacket(timestamp=record.timestamp, packet=packet)
            )
    # Final drain.
    poll = yield from handle.npoll(0)
    for record in poll.records:
        try:
            packet = IPv4Packet.decode(record.data, verify_checksum=False)
        except DecodeError:
            continue
        result.packets.append(
            CapturedPacket(timestamp=record.timestamp, packet=packet)
        )
    result.dropped_packets += poll.dropped_packets
    result.dropped_bytes += poll.dropped_bytes
    yield from handle.nclose(sktid)
    return result
