"""HTTP GET over the PacketLab interface.

The censorship-measurement use case from the paper's introduction
(observing Internet censorship needs the right vantage point): fetch a URL
from the endpoint's network position using a native TCP socket, and report
what came back. Comparing the body/status across vantage points is exactly
the OONI/ICLab measurement pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.controller.client import EndpointHandle
from repro.netsim.clock import NANOSECONDS
from repro.proto.constants import ST_CONNECT_FAILED, ST_OK


@dataclass
class HttpResult:
    connected: bool
    status_line: Optional[str]
    headers: dict[str, str]
    body: bytes
    fetch_time: Optional[float]  # endpoint-clock seconds to full response


def http_get(
    handle: EndpointHandle,
    server: int,
    path: str = "/",
    port: int = 80,
    host_header: str = "example.org",
    timeout: float = 10.0,
    sktid: int = 0,
) -> Generator:
    """Fetch ``path`` from ``server`` through the endpoint."""
    status = yield from handle.nopen_tcp(sktid, remaddr=server, remport=port)
    if status == ST_CONNECT_FAILED:
        return HttpResult(connected=False, status_line=None, headers={},
                          body=b"", fetch_time=None)
    handle.expect_ok(status, "nopen(tcp)")
    request = (
        f"GET {path} HTTP/1.0\r\nHost: {host_header}\r\n\r\n".encode("ascii")
    )
    t0 = yield from handle.read_clock()
    status = yield from handle.nsend(sktid, 0, request)
    handle.expect_ok(status, "nsend")
    deadline = t0 + int(timeout * NANOSECONDS)
    raw = b""
    finished_at: Optional[int] = None
    while True:
        poll = yield from handle.npoll(deadline)
        for record in poll.records:
            raw += record.data
            finished_at = record.timestamp
        if _response_complete(raw):
            break
        now = yield from handle.read_clock()
        if now >= deadline:
            break
        if poll.records == () and now >= deadline:
            break
    yield from handle.nclose(sktid)
    status_line, headers, body = _parse_response(raw)
    return HttpResult(
        connected=True,
        status_line=status_line,
        headers=headers,
        body=body,
        fetch_time=((finished_at - t0) / NANOSECONDS) if finished_at else None,
    )


def _response_complete(raw: bytes) -> bool:
    if b"\r\n\r\n" not in raw:
        return False
    head, body = raw.split(b"\r\n\r\n", 1)
    for line in head.split(b"\r\n")[1:]:
        if line.lower().startswith(b"content-length:"):
            try:
                expected = int(line.split(b":", 1)[1].strip())
            except ValueError:
                return True
            return len(body) >= expected
    return True  # no content-length: treat header end as complete


def _parse_response(raw: bytes):
    if b"\r\n\r\n" not in raw:
        return None, {}, b""
    head, body = raw.split(b"\r\n\r\n", 1)
    lines = head.split(b"\r\n")
    status_line = lines[0].decode("ascii", "replace")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if b":" in line:
            key, _, value = line.partition(b":")
            headers[key.decode("ascii", "replace").strip().lower()] = (
                value.decode("ascii", "replace").strip()
            )
    return status_line, headers, body
