"""DNS measurement over the PacketLab interface.

RIPE Atlas's fixed measurement set (ping, traceroute, DNS, TLS, HTTP) is
the paper's example of a "conservative" platform; PacketLab expresses the
same measurements as controller logic over generic sockets. This module is
the DNS one: resolve a name at a target resolver from the endpoint's
vantage point and time the exchange on the endpoint clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.controller.client import EndpointHandle
from repro.netsim.clock import NANOSECONDS
from repro.packet.dns import DnsMessage, QTYPE_A
from repro.util.byteio import DecodeError


@dataclass
class DnsResult:
    name: str
    address: Optional[int]  # resolved A record, None on failure
    rcode: Optional[int]
    response_time: Optional[float]  # endpoint-clock seconds
    answered: bool


def dns_query(
    handle: EndpointHandle,
    resolver: int,
    name: str,
    ident: int = 0x6473,
    timeout: float = 3.0,
    sktid: int = 0,
    lead_time: float = 0.2,
) -> Generator:
    """Query ``name`` (A record) at ``resolver`` from the endpoint.

    ``lead_time`` schedules the query far enough in the future that the
    nsend command is at the endpoint before the send instant — otherwise
    the endpoint-clock response time includes command transit (§3.1).
    """
    status = yield from handle.nopen_udp(
        sktid, locport=0, remaddr=resolver, remport=53
    )
    handle.expect_ok(status, "nopen(udp)")
    query = DnsMessage.query(ident=ident, name=name)
    t0 = yield from handle.read_clock()
    t_snd = t0 + int(lead_time * NANOSECONDS)
    status = yield from handle.nsend(sktid, t_snd, query.encode())
    handle.expect_ok(status, "nsend")
    deadline = t_snd + int(timeout * NANOSECONDS)
    answer: Optional[DnsMessage] = None
    answer_time = 0
    while answer is None:
        poll = yield from handle.npoll(deadline)
        for record in poll.records:
            try:
                message = DnsMessage.decode(record.data)
            except DecodeError:
                continue
            if message.ident == ident and message.is_response:
                answer = message
                answer_time = record.timestamp
                break
        if answer is None:
            now = yield from handle.read_clock()
            if now >= deadline:
                break
    yield from handle.nclose(sktid)
    if answer is None:
        return DnsResult(name=name, address=None, rcode=None,
                         response_time=None, answered=False)
    address = None
    for record in answer.answers:
        if record.rtype == QTYPE_A:
            address = record.a_address
            break
    return DnsResult(
        name=name,
        address=address,
        rcode=answer.rcode,
        response_time=(answer_time - t_snd) / NANOSECONDS,
        answered=True,
    )
