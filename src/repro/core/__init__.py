"""High-level public API: testbed assembly and experiment running."""

from repro.core.testbed import (
    DEFAULT_CONTROLLER_PORT,
    DEFAULT_RENDEZVOUS_PORT,
    Testbed,
)

__all__ = ["DEFAULT_CONTROLLER_PORT", "DEFAULT_RENDEZVOUS_PORT", "Testbed"]
