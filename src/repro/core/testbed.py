"""One-stop PacketLab testbed assembly.

A :class:`Testbed` wires a full deployment on a simulated network: an
endpoint behind an access link, a controller host, a measurement target, an
endpoint operator key, and an experimenter with a delegation — the Figure 1
cast. Experiments, examples, and benchmarks all build on it.

Typical use::

    testbed = Testbed()
    def experiment(handle):
        ticks = yield from handle.read_clock()
        ...
        return result
    result = testbed.run_experiment(experiment)
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.controller.client import ControllerServer, EndpointHandle
from repro.controller.recovery import ResilientHandle
from repro.controller.session import Experimenter
from repro.crypto.certificate import Restrictions
from repro.crypto.keys import KeyPair
from repro.endpoint.config import EndpointConfig
from repro.endpoint.endpoint import Endpoint
from repro.netsim.faults import FaultPlan
from repro.netsim.kernel import SimError
from repro.netsim.node import Node
from repro.netsim.topology import Network, access_topology
from repro.obs import TelemetrySnapshot
from repro.rendezvous.descriptor import ExperimentDescriptor
from repro.rendezvous.server import RendezvousServer
from repro.util.retry import RetryPolicy

DEFAULT_CONTROLLER_PORT = 7000
DEFAULT_RENDEZVOUS_PORT = 7100


class Testbed:
    """A ready-to-run PacketLab deployment on a simulated access network."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        access_bandwidth_bps: float = 10e6,
        access_delay: float = 0.010,
        core_delay: float = 0.020,
        uplink_bandwidth_bps: Optional[float] = None,
        access_jitter: float = 0.0,
        endpoint_clock_offset: float = 0.0,
        endpoint_clock_skew: float = 0.0,
        capture_buffer_bytes: int = 64 * 1024,
        allow_raw: bool = True,
        network: Optional[Network] = None,
        endpoint_host: Optional[Node] = None,
        controller_host: Optional[Node] = None,
        target_host: Optional[Node] = None,
        endpoint_reconnect: bool = False,
        endpoint_reconnect_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.access_link = None
        if network is None:
            network, endpoint_host, controller_host, target_host = access_topology(
                access_bandwidth_bps=access_bandwidth_bps,
                access_delay=access_delay,
                core_delay=core_delay,
                uplink_bandwidth_bps=uplink_bandwidth_bps,
                access_jitter=access_jitter,
            )
            # gw--endpoint is the first link access_topology creates; the
            # natural place to inject faults between endpoint and the world.
            self.access_link = network.links[0]
        assert endpoint_host is not None
        assert controller_host is not None
        assert target_host is not None
        self.net = network
        self.sim = network.sim
        self.endpoint_host = endpoint_host
        self.controller_host = controller_host
        self.target_host = target_host
        # Endpoint clocks are deliberately imperfect (§3.1 Timekeeping).
        self.endpoint_host.clock.offset = endpoint_clock_offset
        self.endpoint_host.clock.skew = endpoint_clock_skew

        # Figure 1 cast.
        self.operator = KeyPair.from_name("endpoint-operator")
        self.rendezvous_operator = KeyPair.from_name("rendezvous-operator")
        self.experimenter = Experimenter("experimenter")
        self.experimenter.granted_endpoint_access(self.operator)
        self.experimenter.granted_publish_access(self.rendezvous_operator)

        self.endpoint_config = EndpointConfig(
            name="ep0",
            trusted_key_ids=[self.operator.key_id],
            capture_buffer_bytes=capture_buffer_bytes,
            allow_raw=allow_raw,
            reconnect=endpoint_reconnect,
        )
        if endpoint_reconnect_policy is not None:
            self.endpoint_config.reconnect_policy = endpoint_reconnect_policy
        self.endpoint = Endpoint(self.endpoint_host, self.endpoint_config)
        self.rendezvous: Optional[RendezvousServer] = None
        self.rendezvous_servers: list[RendezvousServer] = []
        self._next_port = DEFAULT_CONTROLLER_PORT
        # Ports already claimed on the controller host. Controllers
        # allocate upward from 7000 and rendezvous servers historically
        # sat at 7100, so the 101st controller used to collide with the
        # rendezvous listener; tracking reservations closes that hole.
        self._used_ports: set[int] = set()

    # -- component helpers --------------------------------------------------

    def allocate_port(self) -> int:
        while self._next_port in self._used_ports:
            self._next_port += 1
        port = self._next_port
        self._used_ports.add(port)
        self._next_port += 1
        return port

    def reserve_port(self, port: int) -> int:
        """Claim a specific controller-host port; raises if already taken."""
        if port in self._used_ports:
            raise RuntimeError(f"port {port} already in use on "
                               f"{self.controller_host.name}")
        self._used_ports.add(port)
        return port

    def make_controller(
        self,
        experiment_name: str = "experiment",
        priority: int = 0,
        port: Optional[int] = None,
        experiment_restrictions: Optional[Restrictions] = None,
        controller_host: Optional[Node] = None,
        experimenter: Optional[Experimenter] = None,
        rpc_timeout: Optional[float] = None,
    ) -> tuple[ControllerServer, ExperimentDescriptor]:
        """Start a ControllerServer for a named experiment."""
        host = controller_host or self.controller_host
        who = experimenter or self.experimenter
        if port is None:
            port = self.allocate_port()
        elif host is self.controller_host:
            self._used_ports.add(port)
        descriptor = who.make_descriptor(host, port, experiment_name)
        identity = who.identity(
            descriptor,
            priority=priority,
            experiment_restrictions=experiment_restrictions,
        )
        server = ControllerServer(
            host, port, identity, rpc_timeout=rpc_timeout
        ).start()
        return server, descriptor

    def start_rendezvous(self, port: Optional[int] = DEFAULT_RENDEZVOUS_PORT,
                         host: Optional[Node] = None) -> RendezvousServer:
        """Start a rendezvous server (on the controller host by default).

        ``port=None`` allocates a fresh port, so several rendezvous
        servers can coexist on the controller host alongside any number
        of controllers without listener collisions. Each server is
        recorded in ``rendezvous_servers``; ``self.rendezvous`` tracks
        the most recently started one.
        """
        node = host or self.controller_host
        if node is self.controller_host:
            port = self.allocate_port() if port is None \
                else self.reserve_port(port)
        elif port is None:
            port = DEFAULT_RENDEZVOUS_PORT
        self.rendezvous = RendezvousServer(
            node, port, trusted_publisher_key_ids=[self.rendezvous_operator.key_id]
        ).start()
        self.rendezvous_servers.append(self.rendezvous)
        return self.rendezvous

    def connect_endpoint(self, descriptor: ExperimentDescriptor):
        """Point the endpoint directly at a controller (no rendezvous)."""
        return self.endpoint.connect_to_controller(
            descriptor.controller_addr,
            descriptor.controller_port,
            descriptor.hash(),
        )

    @property
    def target_address(self) -> int:
        return self.target_host.primary_address()

    # -- experiment driving ----------------------------------------------------

    def enable_telemetry(self, ring_capacity: Optional[int] = None):
        """Switch on the observability layer for this testbed's simulator.

        Returns the in-memory ring sink that will collect structured
        events. Idempotent; ``run_experiment(collect_telemetry=True)``
        calls this automatically.
        """
        obs = self.sim.obs
        obs.enabled = True
        return obs.ensure_ring_sink(ring_capacity)

    def telemetry_snapshot(self) -> TelemetrySnapshot:
        """Bundle the current metrics + buffered events for export."""
        return self.sim.obs.telemetry_snapshot()

    def run_experiment(
        self,
        experiment: Callable[[EndpointHandle], Generator],
        experiment_name: str = "experiment",
        priority: int = 0,
        experiment_restrictions: Optional[Restrictions] = None,
        timeout: float = 600.0,
        send_bye: bool = True,
        collect_telemetry: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        resilient: bool = False,
        rpc_timeout: Optional[float] = None,
        recovery_policy: Optional[RetryPolicy] = None,
        recovery_seed: int = 0,
    ):
        """Run one experiment function against the testbed endpoint.

        ``experiment`` is a generator function taking an
        :class:`EndpointHandle`; its return value is returned here. The
        controller is started, the endpoint connects, the experiment runs,
        and the session is closed.

        With ``collect_telemetry=True`` the observability layer is enabled
        for the run and a ``(result, TelemetrySnapshot)`` pair is returned;
        the snapshot carries every layer's metrics plus the buffered event
        stream, ready for ``export_jsonl``.

        Fault tolerance: ``fault_plan`` arms a
        :class:`~repro.netsim.faults.FaultPlan` on this testbed's
        simulator before the run; ``resilient=True`` wraps the handle in
        a :class:`~repro.controller.recovery.ResilientHandle` (retry with
        backoff + reconnect + state replay); ``rpc_timeout`` bounds every
        command round trip so a dead session surfaces as
        :class:`RpcTimeout` instead of hanging until the run timeout.
        """
        if collect_telemetry:
            self.enable_telemetry()
        if fault_plan is not None:
            fault_plan.install(self.sim)
        obs = self.sim.obs
        span = (
            obs.span("core", "experiment", experiment=experiment_name)
            if obs.enabled else None
        )
        server, descriptor = self.make_controller(
            experiment_name,
            priority=priority,
            experiment_restrictions=experiment_restrictions,
            rpc_timeout=rpc_timeout,
        )
        self.connect_endpoint(descriptor)

        def driver() -> Generator:
            handle = yield server.wait_endpoint()
            if resilient:
                handle = ResilientHandle(
                    server,
                    handle,
                    policy=recovery_policy,
                    seed=recovery_seed,
                    controller_clock=self.controller_host.clock,
                )
            try:
                result = yield from experiment(handle)
            finally:
                if send_bye and not handle.closed:
                    handle.bye()
            return result

        try:
            result = self.sim.run_process(
                driver(), name=f"experiment-{experiment_name}", timeout=timeout
            )
        finally:
            if span is not None:
                span.end()
            server.stop()
        if collect_telemetry:
            return result, self.telemetry_snapshot()
        return result

    def run_campaign(
        self,
        jobs: list,
        campaign_name: str = "campaign",
        max_concurrency: int = 4,
        rate: Optional[float] = None,
        burst: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
        pool_policy: Optional[RetryPolicy] = None,
        priority: int = 0,
        rpc_timeout: Optional[float] = 5.0,
        max_concurrent_per_endpoint: int = 1,
        seed: int = 0,
        timeout: float = 3600.0,
    ):
        """Run a list of :class:`~repro.fleet.scheduler.CampaignJob`\\ s
        against this testbed's (single) endpoint.

        The fleet scheduler treats the one-endpoint testbed as a pool of
        size one: jobs queue up, sessions are reused, failures reschedule
        with backoff, and the returned
        :class:`~repro.fleet.scheduler.CampaignReport` carries the same
        deterministic rollups a full :class:`~repro.fleet.FleetTestbed`
        campaign produces. For many-endpoint campaigns use
        :class:`repro.fleet.FleetTestbed` directly.
        """
        # Imported lazily: repro.fleet builds on the controller layer,
        # which this module also feeds — a top-level import would cycle.
        from repro.fleet.aggregate import ResultAggregator
        from repro.fleet.pool import EndpointPool
        from repro.fleet.scheduler import CampaignContext, CampaignScheduler

        server, descriptor = self.make_controller(
            campaign_name, priority=priority, rpc_timeout=rpc_timeout
        )
        self.connect_endpoint(descriptor)
        pool = EndpointPool(
            server,
            policy=pool_policy,
            seed=seed,
            max_concurrent_per_endpoint=max_concurrent_per_endpoint,
        )
        context = CampaignContext(
            sim=self.sim,
            controller_host=self.controller_host,
            target_address=self.target_address,
            allocate_port=self.allocate_port,
        )
        scheduler = CampaignScheduler(
            pool,
            jobs,
            name=campaign_name,
            max_concurrency=max_concurrency,
            rate=rate,
            burst=burst,
            retry_policy=retry_policy,
            seed=seed,
            context=context,
            aggregator=ResultAggregator(campaign=campaign_name),
        )

        def driver() -> Generator:
            yield from pool.populate(1)
            report = yield from scheduler.run()
            return report

        try:
            report = self.sim.run_process(
                driver(), name=f"campaign-{campaign_name}", timeout=timeout
            )
        finally:
            pool.shutdown()
            server.stop()
        return report

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)
