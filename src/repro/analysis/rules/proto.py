"""PROTO rules: wire-protocol symmetry.

Protocol asymmetries have bitten this repo before (the MAX_FRAME
send/recv mismatch fixed in an earlier PR survived until fault-injection
testing).  These rules keep encoder/decoder pairs and frame-bound checks
structurally symmetric:

- PROTO001 — message class with ``encode_body`` but no ``decode_body``
  (or vice versa)
- PROTO002 — Message subclass defining a codec but never ``@register``ed,
  so ``decode_message`` cannot round-trip it
- PROTO003 — a module compares against MAX_FRAME on only one side of the
  wire (send xor recv)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import ModuleInfo, RepoModel
from repro.analysis.rules import Finding, Rule, register_rule


@register_rule
class CodecPairRule(Rule):
    id = "PROTO001"
    name = "codec-asymmetry"
    summary = ("class defines encode_body without decode_body (or vice "
               "versa); every wire message must round-trip")
    scope = "all"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        for cls in module.classes.values():
            methods = set(cls.methods)
            has_enc = "encode_body" in methods
            has_dec = "decode_body" in methods
            if has_enc == has_dec:
                continue
            missing = "decode_body" if has_enc else "encode_body"
            present = "encode_body" if has_enc else "decode_body"
            node = _class_node(module, cls.name)
            yield self.finding(
                module, node,
                f"class {cls.name} defines {present} but not {missing}; "
                f"wire messages must encode and decode symmetrically",
            )


@register_rule
class UnregisteredMessageRule(Rule):
    id = "PROTO002"
    name = "unregistered-message"
    summary = ("Message subclass with a codec but no @register decorator; "
               "decode_message() will reject its TYPE on the wire")
    scope = "all"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        for cls in module.classes.values():
            if "Message" not in cls.bases:
                continue
            methods = set(cls.methods)
            if "encode_body" not in methods and "decode_body" not in methods:
                continue
            if any(dec.split(".")[-1] == "register" for dec in cls.decorators):
                continue
            node = _class_node(module, cls.name)
            yield self.finding(
                module, node,
                f"Message subclass {cls.name} is never @register-ed; its "
                f"frames will decode as 'unknown message type'",
            )


@register_rule
class FrameBoundSymmetryRule(Rule):
    id = "PROTO003"
    name = "frame-bound-asymmetry"
    summary = ("MAX_FRAME compared on only one side of the wire in this "
               "module; bound checks must cover both send and recv")
    scope = "all"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        sites: list[ast.Compare] = []
        for node in module.walk():
            if isinstance(node, ast.Compare) and self._mentions_max_frame(node):
                sites.append(node)
        if len(sites) == 1:
            yield self.finding(
                module, sites[0],
                "module bounds-checks MAX_FRAME exactly once; the opposite "
                "direction (send vs recv) is unchecked — add the symmetric "
                "comparison or move the check to shared framing code",
            )

    @staticmethod
    def _mentions_max_frame(node: ast.Compare) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id == "MAX_FRAME":
                return True
            if isinstance(child, ast.Attribute) and child.attr == "MAX_FRAME":
                return True
        return False


def _class_node(module: ModuleInfo, name: str) -> ast.AST:
    for node in module.walk():
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return module.tree
