"""SIM rules: operations that break the simulation abstraction.

Kernel coroutines run in virtual time; anything that blocks the host
thread or spawns real concurrency stalls *every* simulated process and
desynchronizes virtual from wall time:

- SIM001 — ``time.sleep`` in simulated code (blocks the whole kernel)
- SIM002 — blocking host I/O (sockets, select, input, subprocess) in
  simulated code
- SIM003 — real-concurrency imports (threading/multiprocessing/asyncio)
  in sim-context modules
- SIM004 — mutating another module's ``__slots__`` hot structure through
  a private attribute
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import ModuleInfo, RepoModel
from repro.analysis.rules import Finding, Rule, dotted_name, register_rule

_BLOCKING_CALLS = {
    "socket": {"socket", "create_connection", "create_server"},
    "select": {"select", "poll", "epoll", "kqueue"},
    "subprocess": {"run", "Popen", "call", "check_call", "check_output"},
    "urllib.request": {"urlopen"},
    "requests": {"get", "post", "put", "delete", "head", "request"},
}

_CONCURRENCY_MODULES = {
    "threading", "multiprocessing", "concurrent.futures", "asyncio",
    "_thread", "queue",
}


@register_rule
class SleepRule(Rule):
    id = "SIM001"
    name = "host-sleep"
    summary = ("time.sleep in simulated code blocks the entire kernel; "
               "yield a delay to the simulator instead")
    scope = "sim"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            is_sleep = False
            if "." in name:
                root, _, attr = name.partition(".")
                is_sleep = attr == "sleep" and module.resolves_to_module(
                    root, "time"
                )
            elif name:
                imported = module.imported_name(name)
                is_sleep = imported == ("time", "sleep")
            if is_sleep and self.applies(module, model, node.lineno):
                yield self.finding(
                    module, node,
                    "time.sleep() blocks the host thread and every simulated "
                    "process; ``yield delay`` to the kernel instead",
                )


@register_rule
class BlockingIoRule(Rule):
    id = "SIM002"
    name = "blocking-io"
    summary = ("blocking host I/O (sockets/select/subprocess/input) inside "
               "simulated code; use the simulated stack")
    scope = "sim"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            label = self._blocking_label(module, node)
            if label and self.applies(module, model, node.lineno):
                yield self.finding(
                    module, node,
                    f"{label} performs blocking host I/O inside simulated "
                    f"code; route through the simulated network stack",
                )

    @staticmethod
    def _blocking_label(module: ModuleInfo, node: ast.Call) -> str:
        name = dotted_name(node.func)
        if name == "input" or (
            not name
            and isinstance(node.func, ast.Name)
            and node.func.id == "input"
        ):
            return "input()"
        if "." in name:
            root, _, attr = name.partition(".")
            for mod, calls in _BLOCKING_CALLS.items():
                if module.resolves_to_module(root, mod) and attr in calls:
                    return f"{mod}.{attr}()"
        elif name:
            imported = module.imported_name(name)
            if imported:
                src, orig = imported
                if orig in _BLOCKING_CALLS.get(src, ()):
                    return f"{src}.{orig}()"
        return ""


@register_rule
class ConcurrencyImportRule(Rule):
    id = "SIM003"
    name = "real-concurrency"
    summary = ("threading/multiprocessing/asyncio imported by a sim-context "
               "module; sim concurrency is generators in virtual time")
    scope = "sim"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        if not model.is_sim_module(module):
            return
        for node in module.walk():
            names: list[tuple[str, ast.AST]] = []
            if isinstance(node, ast.Import):
                names = [(alias.name, node) for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [(node.module, node)]
            for dotted, site in names:
                root = dotted.split(".")[0]
                if dotted in _CONCURRENCY_MODULES or root in (
                    "threading", "multiprocessing", "asyncio", "_thread",
                ):
                    yield self.finding(
                        module, site,
                        f"sim-context module imports {dotted}; real "
                        f"concurrency desynchronizes virtual time — model "
                        f"it as simulated processes",
                    )


@register_rule
class SlotsMutationRule(Rule):
    id = "SIM004"
    name = "foreign-slots-write"
    summary = ("write to a private __slots__ attribute of a class owned by "
               "another module; hot structures are mutated by their owner")
    scope = "sim"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        owners = model.slot_owners()
        local_slots = {
            slot for cls in module.classes.values() for slot in cls.slots
        }
        for node in module.walk():
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                attr = target.attr
                if not attr.startswith("_") or attr.startswith("__"):
                    continue
                if isinstance(target.value, ast.Name) and target.value.id in (
                    "self", "cls",
                ):
                    continue
                owning = owners.get(attr)
                if not owning or attr in local_slots or module.name in owning:
                    continue
                if not self.applies(module, model, node.lineno):
                    continue
                owner_list = ", ".join(sorted(owning))
                yield self.finding(
                    module, target,
                    f"writes private slot .{attr} of a __slots__ class owned "
                    f"by {owner_list}; mutate hot structures through their "
                    f"owner's methods",
                )
