"""LINT rules: hygiene of the suppression mechanism itself.

Suppressions are part of the audit trail — a bare ``ok[RULE]`` with no
justification defeats the point, and a stale suppression hides the fact
that the code beneath it changed:

- LINT001 — inline suppression without a reason string
- LINT002 — inline suppression that matches no finding (stale; emitted
  by the engine after rule evaluation)
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.model import ModuleInfo, RepoModel
from repro.analysis.rules import Finding, Rule, register_rule
from repro.analysis.suppress import parse_suppressions


@register_rule
class SuppressionReasonRule(Rule):
    id = "LINT001"
    name = "suppression-missing-reason"
    summary = ("inline ``# simlint: ok[RULE]`` without a reason string; "
               "every suppression must say why")
    scope = "all"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        for supp in parse_suppressions(module):
            if not supp.reason:
                yield Finding(
                    rule=self.id,
                    path=module.path,
                    line=supp.comment_line,
                    col=0,
                    message=(
                        f"suppression ok[{', '.join(sorted(supp.rules))}] "
                        f"has no reason; append one after the bracket"
                    ),
                )


@register_rule
class UnusedSuppressionRule(Rule):
    id = "LINT002"
    name = "unused-suppression"
    summary = ("inline suppression matched no finding; delete it or fix "
               "the rule id (emitted by the engine after matching)")
    scope = "all"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        # Matching requires the full finding set; the engine emits these.
        return iter(())
