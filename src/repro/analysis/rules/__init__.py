"""simlint rule registry.

A rule is a small class with an ``id`` (``DET001``), a ``name`` slug, a
one-line ``summary``, a ``scope`` (``"sim"`` rules only fire in
sim-context code; ``"all"`` rules fire everywhere), and a
``check_module(module, model)`` generator yielding :class:`Finding`s.

Adding a rule: subclass :class:`Rule` in one of the family modules (or a
new one), decorate it with :func:`register_rule`, and import the module
here.  That is the entire plumbing — the engine, reports, suppressions,
baseline, tests and CLI all iterate the registry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.model import ModuleInfo, RepoModel


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""             # enclosing function, when known
    suppressed: bool = False     # matched an inline ``ok[...]`` comment
    suppress_reason: str = ""
    baselined: bool = False      # matched a committed baseline entry

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.symbol:
            out["symbol"] = self.symbol
        if self.suppressed:
            out["suppressed"] = True
            out["suppress_reason"] = self.suppress_reason
        if self.baselined:
            out["baselined"] = True
        return out


class Rule:
    """Base class: subclass, set the class attributes, yield findings."""

    id: str = ""
    name: str = ""
    summary: str = ""
    scope: str = "sim"           # "sim" | "all"

    def check_module(
        self, module: ModuleInfo, model: RepoModel
    ) -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers shared by concrete rules -----------------------------------

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        info = module.enclosing_function(line)
        return Finding(
            rule=self.id,
            path=module.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=info.qualname if info else "",
        )

    def applies(self, module: ModuleInfo, model: RepoModel, line: int) -> bool:
        """Scope gate: sim rules skip offline modules and functions."""
        if self.scope == "all":
            return True
        if not model.is_sim_module(module):
            return False
        return not model.is_offline_function(module, line)


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def rule_registry() -> dict[str, Rule]:
    _load_builtin_rules()
    return dict(_REGISTRY)


def all_rules() -> list[Rule]:
    registry = rule_registry()
    return [registry[rule_id] for rule_id in sorted(registry)]


_loaded = False


def _load_builtin_rules() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True
    from repro.analysis.rules import det, meta, obs, proto, sim  # noqa: F401


@dataclass
class WalkContext:
    """Parent links for rules that need to look upward from a node."""

    parents: dict = field(default_factory=dict)

    @classmethod
    def for_module(cls, module: ModuleInfo) -> "WalkContext":
        return cls(parents=module.parent_map())

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
