"""DET rules: sources of run-to-run nondeterminism.

Same-seed byte-identical output is the repo's core contract (the
differential determinism suite asserts it dynamically; these rules
prove the obvious violations statically):

- DET001 — wall-clock reads in simulated code
- DET002 — process-global ``random.*`` calls (shared, unseedable state)
- DET003 — unseeded RNG construction / entropy reads outside crypto
- DET004 — iterating a ``set`` (unordered) where order can leak out
- DET005 — ``id()``/``hash()`` as an ordering or tie-breaking key
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import ModuleInfo, RepoModel
from repro.analysis.rules import (
    Finding,
    Rule,
    WalkContext,
    dotted_name,
    register_rule,
)

# Wall-clock entry points: module attribute -> offending call names.
_WALL_CLOCK = {
    "time": {"time", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "process_time", "time_ns"},
    "datetime": {"now", "utcnow", "today"},
}

# ``random`` module-level functions that use the hidden global RNG.
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "getrandbits", "randbytes", "gauss", "expovariate",
    "seed", "betavariate", "triangular", "vonmisesvariate",
}

# Modules allowed to touch real entropy: key generation is *supposed* to
# be unpredictable in production (tests inject a seeded rng instead).
CRYPTO_WHITELIST = ("repro.crypto",)


def _in_crypto_whitelist(module: ModuleInfo) -> bool:
    return any(
        module.name == prefix or module.name.startswith(prefix + ".")
        for prefix in CRYPTO_WHITELIST
    )


@register_rule
class WallClockRule(Rule):
    id = "DET001"
    name = "wall-clock"
    summary = ("wall-clock read (time.time/monotonic/perf_counter, "
               "datetime.now) in simulated code — use the simulator clock")
    scope = "sim"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name or "." not in name:
                # bare ``time()`` etc. via from-import
                imported = module.imported_name(name) if name else None
                if imported is None:
                    continue
                src, orig = imported
                if orig in _WALL_CLOCK.get(src, ()):
                    if self.applies(module, model, node.lineno):
                        yield self.finding(
                            module, node,
                            f"wall-clock call {src}.{orig}() in sim code; "
                            f"use sim.now / the simulator clock",
                        )
                continue
            head, _, attr = name.rpartition(".")
            root = head.split(".")[0]
            target = module.module_imports.get(root, root)
            base = target.split(".")[-1]
            if base in _WALL_CLOCK and attr in _WALL_CLOCK[base]:
                if self.applies(module, model, node.lineno):
                    yield self.finding(
                        module, node,
                        f"wall-clock call {base}.{attr}() in sim code; "
                        f"use sim.now / the simulator clock",
                    )


@register_rule
class GlobalRandomRule(Rule):
    id = "DET002"
    name = "global-random"
    summary = ("module-level random.* call uses the process-global RNG; "
               "thread a seeded random.Random from the owning config")
    scope = "all"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if "." in name:
                root, _, attr = name.partition(".")
                if (
                    module.resolves_to_module(root, "random")
                    and attr in _GLOBAL_RANDOM
                ):
                    yield self.finding(
                        module, node,
                        f"random.{attr}() draws from the process-global RNG; "
                        f"use a seeded random.Random threaded from config",
                    )
            elif name:
                imported = module.imported_name(name)
                if imported and imported[0] == "random" and imported[1] in _GLOBAL_RANDOM:
                    yield self.finding(
                        module, node,
                        f"{name}() is random.{imported[1]} — the process-global "
                        f"RNG; use a seeded random.Random threaded from config",
                    )


@register_rule
class UnseededRngRule(Rule):
    id = "DET003"
    name = "unseeded-rng"
    summary = ("unseeded random.Random()/SystemRandom/os.urandom outside the "
               "crypto whitelist — every RNG must take a seed from config")
    scope = "all"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        if _in_crypto_whitelist(module):
            return
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            target = self._rng_target(module, name)
            if target == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    module, node,
                    "random.Random() without a seed is nondeterministic; "
                    "pass a seed derived from the owning config/plan",
                )
            elif target == "SystemRandom":
                yield self.finding(
                    module, node,
                    "random.SystemRandom reads OS entropy; sim code must use "
                    "a seeded random.Random",
                )
            elif target == "urandom":
                yield self.finding(
                    module, node,
                    "os.urandom reads OS entropy outside the crypto "
                    "whitelist; thread a seeded source instead",
                )

    @staticmethod
    def _rng_target(module: ModuleInfo, name: str) -> str:
        if not name:
            return ""
        if "." in name:
            root, _, attr = name.partition(".")
            if module.resolves_to_module(root, "random") and attr in (
                "Random", "SystemRandom"
            ):
                return attr
            if module.resolves_to_module(root, "os") and attr == "urandom":
                return attr
            return ""
        imported = module.imported_name(name)
        if imported is None:
            return ""
        src, orig = imported
        if src == "random" and orig in ("Random", "SystemRandom"):
            return orig
        if src == "os" and orig == "urandom":
            return orig
        return ""


@register_rule
class SetIterationRule(Rule):
    id = "DET004"
    name = "set-iteration"
    summary = ("iteration over a set — element order is salted per process; "
               "sort first when the order can reach scheduling or output")
    scope = "sim"

    _SINK_OK = {"sorted", "len", "sum", "min", "max", "any", "all",
                "frozenset", "set"}

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        ctx = WalkContext.for_module(module)
        for node in module.walk():
            setish = self._setish(node)
            if not setish:
                continue
            consumer = self._order_sensitive_consumer(node, ctx)
            if consumer is None:
                continue
            if not self.applies(module, model, node.lineno):
                continue
            yield self.finding(
                module, node,
                f"{consumer} iterates a set ({setish}); set order is "
                f"arbitrary — wrap in sorted(...) before the order can "
                f"reach scheduling, frames, or reports",
            )

    @staticmethod
    def _setish(node: ast.AST) -> str:
        """A human label when ``node`` provably evaluates to a set."""
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return f"{node.func.id}(...)"
        return ""

    def _order_sensitive_consumer(self, node, ctx: WalkContext):
        """Where does the set's iteration order escape to, if anywhere?"""
        parent = ctx.parent(node)
        if isinstance(parent, ast.For) and parent.iter is node:
            return "for loop"
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            return "comprehension"
        if isinstance(parent, ast.Call) and node in parent.args:
            func = parent.func
            if isinstance(func, ast.Name):
                if func.id in ("list", "tuple", "iter", "enumerate", "zip"):
                    return f"{func.id}(...)"
                return None  # sorted(), len(), set()… are order-safe
            if isinstance(func, ast.Attribute) and func.attr in (
                "join", "extend", "update",
            ):
                return f".{func.attr}(...)"
        if isinstance(parent, ast.Starred):
            return "star-unpacking"
        return None


@register_rule
class IdentityOrderRule(Rule):
    id = "DET005"
    name = "identity-order"
    summary = ("id()/hash() used as a sort or tie-breaking key — object "
               "identity varies per run; key on stable fields instead")
    scope = "all"

    _ORDERING_CALLS = {"sorted", "sort", "min", "max", "insort", "insort_left",
                       "insort_right", "nsmallest", "nlargest"}

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name not in self._ORDERING_CALLS:
                continue
            for kw in node.keywords:
                if kw.arg == "key" and self._uses_identity(kw.value):
                    yield self.finding(
                        module, node,
                        f"{name}(key=...) keys on id()/hash(); object "
                        f"identity changes across runs — key on stable "
                        f"fields (name, seq, time) instead",
                    )

    @staticmethod
    def _uses_identity(node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id in ("id", "hash"):
            return True
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id in ("id", "hash")
            ):
                return True
        return False
