"""OBS rules: observability hot-path discipline.

The repo-wide contract (see ``repro/obs/__init__``): with observability
disabled, an instrumentation point costs one attribute load and one
branch.  That only holds when every counter/event/span call is guarded:

    if obs.enabled:
        obs.counter("links.delivered").inc()

- OBS001 — obs counter/event/span call on a simulated path without an
  ``.enabled`` guard
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import ModuleInfo, RepoModel
from repro.analysis.rules import (
    Finding,
    Rule,
    WalkContext,
    dotted_name,
    register_rule,
)

# Observability hub methods that allocate (label dicts, strings, metric
# lookups) and therefore must sit behind an ``enabled`` guard on hot
# paths.
_OBS_METHODS = {"counter", "gauge", "histogram", "emit", "span"}

# Receiver spellings that conventionally hold the Observability hub.
_OBS_RECEIVERS = {"obs", "_obs", "self.obs", "self._obs", "sim.obs",
                  "self.sim.obs"}


@register_rule
class UnguardedObsRule(Rule):
    id = "OBS001"
    name = "unguarded-obs"
    summary = ("obs counter/emit/span call without an ``obs.enabled`` guard "
               "on a simulated path; disabled runs must pay one branch only")
    scope = "sim"

    def check_module(self, module: ModuleInfo, model: RepoModel) -> Iterator[Finding]:
        if module.name.startswith("repro.obs"):
            return  # the hub's own internals are allowed to call themselves
        ctx = WalkContext.for_module(module)
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _OBS_METHODS:
                continue
            receiver = dotted_name(func.value)
            if receiver not in _OBS_RECEIVERS:
                continue
            if self._guarded(node, ctx):
                continue
            if not self.applies(module, model, node.lineno):
                continue
            yield self.finding(
                module, node,
                f"{receiver}.{func.attr}(...) is unguarded; wrap in "
                f"``if {receiver}.enabled:`` so disabled runs pay one "
                f"attribute load and a branch",
            )

    @staticmethod
    def _guarded(node: ast.Call, ctx: WalkContext) -> bool:
        """Is the call dominated by an ``.enabled`` test?

        Recognized shapes: an enclosing ``if`` whose test mentions
        ``enabled``, a conditional expression (``x if obs.enabled else
        None``), a ``while`` guard, or an enclosing boolean operation
        (``obs.enabled and obs.emit(...)``).
        """
        previous: ast.AST = node
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.If, ast.While)):
                if previous is not ancestor.test and _mentions_enabled(
                    ancestor.test
                ):
                    return True
            elif isinstance(ancestor, ast.IfExp):
                if previous is not ancestor.test and _mentions_enabled(
                    ancestor.test
                ):
                    return True
            elif isinstance(ancestor, ast.BoolOp) and isinstance(
                ancestor.op, ast.And
            ):
                if any(
                    value is not previous and _mentions_enabled(value)
                    for value in ancestor.values
                ):
                    return True
            elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Guards don't cross function boundaries; an early
                # ``if not obs.enabled: return`` still dominates though —
                # approximate by scanning the function's leading body.
                return _has_early_return_guard(ancestor, node)
            previous = ancestor
        return False


def _mentions_enabled(test: ast.AST) -> bool:
    for child in ast.walk(test):
        if isinstance(child, ast.Attribute) and child.attr == "enabled":
            return True
        if isinstance(child, ast.Name) and child.id == "enabled":
            return True
    return False


def _has_early_return_guard(func, call: ast.Call) -> bool:
    """``if not obs.enabled: return`` before the call dominates it."""
    for stmt in func.body:
        if stmt.lineno >= call.lineno:
            return False
        if (
            isinstance(stmt, ast.If)
            and isinstance(stmt.test, ast.UnaryOp)
            and isinstance(stmt.test.op, ast.Not)
            and _mentions_enabled(stmt.test.operand)
            and any(isinstance(s, ast.Return) for s in stmt.body)
        ):
            return True
    return False
