"""Whole-program model: per-module facts plus cross-module graphs.

Pass 1 parses each file into a :class:`ModuleInfo` (imports, functions,
classes, ``__slots__``, generator-ness).  Pass 2 builds a
:class:`RepoModel` over all of them:

- an **import graph** between the analyzed modules, used to classify each
  module as *sim-context* (it participates in the simulated world the
  kernel drives) or *offline tooling* (compilers, CLIs, report
  formatters);
- a best-effort **call graph**, used to separate functions that execute
  inside simulated processes (generators scheduled via
  ``Simulator.run_process``/``spawn`` and everything they call) from
  helpers only reachable from ``main``-style entry points.

Both classifications are deliberately conservative in the direction of
*more* findings: when simlint cannot prove code is offline, it treats it
as simulated.  Inline markers override the classifier per file::

    # simlint: sim-context     force this module into the sim set
    # simlint: offline         force this module out of it
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

# Module-name prefixes that are offline tooling even though sim modules
# import them (or they import sim modules): compilers, the analyzer
# itself, report formatting, and host-socket compatibility shims. Each
# entry carries the reason it is exempt — surfaced by ``--explain``.
OFFLINE_MODULE_PREFIXES: dict[str, str] = {
    "repro.analysis": "the analyzer itself runs on the host, not in sim",
    "repro.cpf": "Cpf compiler toolchain runs before any simulation",
    "repro.obs.report": "report formatting runs after the simulation ends",
    "repro.obs.sinks": "sink flush/export writes host files post-run",
    "repro.compat": "socket compatibility shim wraps *real* host sockets",
    "repro.baselines": "native-socket baselines measure the host on purpose",
    "repro.warehouse": "results warehouse persists campaign output to host "
                       "files (real I/O, wall-clock metadata) post-run",
    "repro.__main__": "CLI entry point",
}

# Call sites whose presence marks a module as a *driver* of the
# simulation: it constructs or schedules into the kernel, so everything
# it imports may execute in simulated time.
_SIM_DRIVER_CALLS = frozenset({"run_process", "spawn", "run", "Simulator"})

# The substrate module every simulated component ultimately imports.
_KERNEL_MODULE = "repro.netsim.kernel"

_MARKER_RE = re.compile(r"#\s*simlint:\s*(sim-context|offline)\b")


@dataclass
class FunctionInfo:
    """One function or method definition inside a module."""

    qualname: str                 # "func" or "Class.method"
    node: ast.AST
    lineno: int
    end_lineno: int
    is_generator: bool
    # Call targets seen in the body, as ("name", n) for ``n(...)``,
    # ("method", m) for ``<expr>.m(...)``, ("qual", "mod.attr") when the
    # receiver resolves to an imported module.
    calls: list[tuple] = field(default_factory=list)


@dataclass
class ClassInfo:
    name: str
    lineno: int
    slots: frozenset[str]
    bases: tuple[str, ...]
    decorators: tuple[str, ...]
    methods: tuple[str, ...]


class ModuleInfo:
    """Everything pass 1 learns about a single source file."""

    def __init__(self, path: str, name: str, source: str, tree: ast.Module):
        self.path = path
        self.name = name
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        # alias -> dotted module for ``import m [as a]``
        self.module_imports: dict[str, str] = {}
        # local name -> (module, original) for ``from m import x [as y]``
        self.from_imports: dict[str, tuple[str, str]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.forced_context: Optional[str] = None  # "sim" | "offline"
        # Lazy caches shared by every rule: one node list, one parent
        # map, one suppression parse per module instead of per rule.
        self._nodes: Optional[list[ast.AST]] = None
        self._parents: Optional[dict] = None
        self._suppressions = None
        self._collect()

    # -- pass-1 collection ---------------------------------------------------

    def _collect(self) -> None:
        for line in self.lines:
            marker = _MARKER_RE.search(line)
            if marker:
                self.forced_context = (
                    "sim" if marker.group(1) == "sim-context" else "offline"
                )
                break
        _Collector(self).visit(self.tree)

    # -- lookups used by rules ----------------------------------------------

    def walk(self) -> list[ast.AST]:
        """Every AST node, cached — rules iterate this, not ast.walk."""
        if self._nodes is None:
            self._nodes = list(ast.walk(self.tree))
        return self._nodes

    def parent_map(self) -> dict:
        """child node -> parent node, cached across rules."""
        if self._parents is None:
            parents: dict = {}
            for parent in self.walk():
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parents = parents
        return self._parents

    def resolves_to_module(self, alias: str, dotted: str) -> bool:
        """Does local name ``alias`` refer to module ``dotted``?"""
        target = self.module_imports.get(alias)
        return target == dotted or (target or "").endswith("." + dotted)

    def imported_name(self, local: str) -> Optional[tuple[str, str]]:
        """The ``(module, original)`` behind a ``from m import x`` name."""
        return self.from_imports.get(local)

    def enclosing_function(self, lineno: int) -> Optional[FunctionInfo]:
        """The innermost function definition containing ``lineno``."""
        best: Optional[FunctionInfo] = None
        for info in self.functions.values():
            if info.lineno <= lineno <= info.end_lineno:
                if best is None or info.lineno >= best.lineno:
                    best = info
        return best


class _Collector(ast.NodeVisitor):
    """Single AST walk filling in a :class:`ModuleInfo`."""

    def __init__(self, module: ModuleInfo):
        self.module = module
        self._stack: list[str] = []          # enclosing class/function names
        self._func_stack: list[FunctionInfo] = []

    # imports ---------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module.module_imports[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.module.from_imports[alias.asname or alias.name] = (
                    node.module, alias.name
                )
        self.generic_visit(node)

    # definitions -----------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        slots: set[str] = set()
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets
                )
                and isinstance(stmt.value, (ast.Tuple, ast.List, ast.Set))
            ):
                slots.update(
                    elt.value
                    for elt in stmt.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                )
        methods = tuple(
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        self.module.classes[node.name] = ClassInfo(
            name=node.name,
            lineno=node.lineno,
            slots=frozenset(slots),
            bases=tuple(_dotted(b) for b in node.bases),
            decorators=tuple(_dotted(d) for d in node.decorator_list),
            methods=methods,
        )
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)

    def _visit_func(self, node) -> None:
        qualname = ".".join(self._stack + [node.name])
        info = FunctionInfo(
            qualname=qualname,
            node=node,
            lineno=node.lineno,
            end_lineno=getattr(node, "end_lineno", node.lineno) or node.lineno,
            is_generator=_is_generator(node),
        )
        self.module.functions[qualname] = info
        self._stack.append(node.name)
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()
        self._stack.pop()

    # call-edge collection --------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._func_stack:
            target = node.func
            calls = self._func_stack[-1].calls
            if isinstance(target, ast.Name):
                calls.append(("name", target.id))
            elif isinstance(target, ast.Attribute):
                calls.append(("method", target.attr))
                if isinstance(target.value, ast.Name):
                    mod = self.module.module_imports.get(target.value.id)
                    if mod:
                        calls.append(("qual", f"{mod}.{target.attr}"))
        self.generic_visit(node)


def _is_generator(node) -> bool:
    """Does the function body contain a yield that belongs to *it*?

    Traversal prunes nested function definitions — their yields make
    *them* generators, not the enclosing function.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(child))
    return False


# ---------------------------------------------------------------------------
# Cross-module pass
# ---------------------------------------------------------------------------


class RepoModel:
    """The whole-program view rules consult.

    ``sim_modules`` is the set of module names classified as sim-context;
    ``offline_functions`` the set of ``module:qualname`` keys proven to be
    reachable only from offline entry points (CLI mains and offline
    modules) and never from a simulated process.
    """

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.modules: dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.import_graph: dict[str, set[str]] = {}
        self.sim_modules: set[str] = set()
        self.offline_functions: set[str] = set()
        self._slot_owners: Optional[dict[str, set[str]]] = None
        self._build_import_graph()
        self._classify_modules()
        self._build_call_graph()

    # -- import graph + module classification -------------------------------

    def _build_import_graph(self) -> None:
        known = set(self.modules)
        for name, module in self.modules.items():
            edges: set[str] = set()
            for dotted in module.module_imports.values():
                edges.update(self._resolve_known(dotted, known))
            for dotted, orig in module.from_imports.values():
                edges.update(self._resolve_known(dotted, known))
                # ``from pkg import name`` may import the submodule
                edges.update(self._resolve_known(f"{dotted}.{orig}", known))
            self.import_graph[name] = edges

    @staticmethod
    def _resolve_known(dotted: str, known: set[str]) -> set[str]:
        hits = set()
        if dotted in known:
            hits.add(dotted)
        # ``import repro.netsim.kernel`` also marks the packages
        parts = dotted.split(".")
        for i in range(1, len(parts)):
            prefix = ".".join(parts[:i])
            if prefix in known:
                hits.add(prefix)
        return hits

    def _classify_modules(self) -> None:
        """Sim-context classification, in two waves:

        1. every module whose import closure reaches the kernel (it
           *uses* the simulated substrate: endpoints, controllers,
           experiments, fleet, drivers), plus explicit ``sim-context``
           markers and modules that schedule processes;
        2. every module those import transitively (their support code —
           proto codecs, packet parsers, util — executes inside
           simulated processes too).

        The offline allowlist and per-file ``offline`` markers carve
        tooling back out.
        """
        closures: dict[str, set[str]] = {}

        def import_closure(name: str) -> set[str]:
            cached = closures.get(name)
            if cached is not None:
                return cached
            seen: set[str] = set()
            frontier = [name]
            while frontier:
                current = frontier.pop()
                if current in seen:
                    continue
                seen.add(current)
                frontier.extend(self.import_graph.get(current, ()))
            closures[name] = seen
            return seen

        kernels = {
            name for name in self.modules
            if name == _KERNEL_MODULE or name.endswith(".kernel")
        }
        wave1: set[str] = set()
        for name, module in self.modules.items():
            if module.forced_context == "sim":
                wave1.add(name)
            elif kernels & import_closure(name):
                wave1.add(name)
            elif self._drives_simulation(module):
                wave1.add(name)

        wave2: set[str] = set()
        for name in wave1:
            wave2.update(import_closure(name))

        for name in wave1 | wave2:
            module = self.modules[name]
            if module.forced_context == "offline":
                continue
            if module.forced_context != "sim" and self.is_offline_module(name):
                continue
            self.sim_modules.add(name)

    @staticmethod
    def is_offline_module(name: str) -> bool:
        return any(
            name == prefix or name.startswith(prefix + ".")
            for prefix in OFFLINE_MODULE_PREFIXES
        )

    def _drives_simulation(self, module: ModuleInfo) -> bool:
        for info in module.functions.values():
            for kind, *rest in info.calls:
                if kind in ("name", "method") and rest[0] in _SIM_DRIVER_CALLS:
                    return True
        # kernel imported at all ⇒ participates in the simulated world
        return any(
            dotted == _KERNEL_MODULE
            for dotted in module.module_imports.values()
        ) or any(
            mod == _KERNEL_MODULE
            for mod, _ in module.from_imports.values()
        )

    # -- call graph + offline-function carve-out ----------------------------

    def _build_call_graph(self) -> None:
        """Separate sim-executed functions from CLI-only helpers.

        Roots of the *sim* closure: every generator function in a
        sim-context module (processes scheduled via ``run_process`` /
        ``spawn`` are generators, as are their ``yield from`` helpers).
        Roots of the *offline* closure: ``main``-style functions and
        everything in offline modules.  A function reachable only from
        the offline side is exempt from sim-scoped rules.
        """
        # Name buckets for call resolution. Calling a class is calling
        # its __init__, so class names map there.
        by_module_name: dict[tuple[str, str], str] = {}
        by_method: dict[str, set[str]] = {}
        for mod_name, module in self.modules.items():
            for qual, info in module.functions.items():
                key = f"{mod_name}:{qual}"
                leaf = qual.rsplit(".", 1)[-1]
                by_module_name.setdefault((mod_name, leaf), key)
                by_module_name[(mod_name, qual)] = key
                by_method.setdefault(leaf, set()).add(key)
            for cls_name, cls in module.classes.items():
                init_key = f"{mod_name}:{cls_name}.__init__"
                if f"{cls_name}.__init__" in module.functions:
                    by_module_name[(mod_name, cls_name)] = init_key

        def resolve(module: ModuleInfo, mod_name: str, call: tuple,
                    with_methods: bool) -> set[str]:
            kind, name = call[0], call[1]
            hits: set[str] = set()
            if kind == "name":
                imported = module.from_imports.get(name)
                if imported:
                    src_mod, orig = imported
                    hit = by_module_name.get((src_mod, orig))
                    if hit:
                        hits.add(hit)
                else:
                    hit = by_module_name.get((mod_name, name))
                    if hit:
                        hits.add(hit)
            elif kind == "qual":
                dotted_mod, attr = name.rsplit(".", 1)
                hit = by_module_name.get((dotted_mod, attr))
                if hit:
                    hits.add(hit)
            elif kind == "method" and with_methods:
                # over-approximate: any same-named method anywhere
                hits.update(by_method.get(name, ()))
            return hits

        # Two edge sets: the *sim* closure uses generous (method-name)
        # resolution so anything a simulated process might call counts
        # as sim-executed; the *offline* closure uses only edges we can
        # resolve precisely, so it cannot swallow shared helpers.
        edges_wide: dict[str, set[str]] = {}
        edges_narrow: dict[str, set[str]] = {}
        for mod_name, module in self.modules.items():
            for qual, info in module.functions.items():
                key = f"{mod_name}:{qual}"
                wide: set[str] = set()
                narrow: set[str] = set()
                for call in info.calls:
                    wide.update(resolve(module, mod_name, call, True))
                    narrow.update(resolve(module, mod_name, call, False))
                edges_wide[key] = wide
                edges_narrow[key] = narrow

        def closure(roots: set[str], edges: dict[str, set[str]]) -> set[str]:
            seen: set[str] = set()
            frontier = list(roots)
            while frontier:
                key = frontier.pop()
                if key in seen:
                    continue
                seen.add(key)
                frontier.extend(edges.get(key, ()))
            return seen

        sim_roots: set[str] = set()
        offline_roots: set[str] = set()
        for mod_name, module in self.modules.items():
            if mod_name not in self.sim_modules:
                continue
            for qual, info in module.functions.items():
                key = f"{mod_name}:{qual}"
                leaf = qual.rsplit(".", 1)[-1]
                if leaf == "main" or leaf.endswith("_main"):
                    offline_roots.add(key)
                elif info.is_generator:
                    sim_roots.add(key)

        sim_closure = closure(sim_roots, edges_wide)
        offline_closure = closure(offline_roots, edges_narrow)
        # Offline wins only where the sim side never reaches.
        self.offline_functions = offline_closure - sim_closure

    # -- queries -------------------------------------------------------------

    def is_sim_module(self, module: ModuleInfo) -> bool:
        return module.name in self.sim_modules

    def is_offline_function(self, module: ModuleInfo, lineno: int) -> bool:
        """Is the code at ``lineno`` only reachable from offline entry
        points (and therefore exempt from sim-scoped rules)?"""
        info = module.enclosing_function(lineno)
        if info is None:
            # module level executes at import time, not in sim time
            return True
        return f"{module.name}:{info.qualname}" in self.offline_functions

    def slot_owners(self) -> dict[str, set[str]]:
        """slot attribute name -> module names defining a class with it."""
        if self._slot_owners is None:
            owners: dict[str, set[str]] = {}
            for mod_name, module in self.modules.items():
                for cls in module.classes.values():
                    for slot in cls.slots:
                        owners.setdefault(slot, set()).add(mod_name)
            self._slot_owners = owners
        return self._slot_owners


# ---------------------------------------------------------------------------
# Parsing helpers
# ---------------------------------------------------------------------------


def _dotted(node) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        return _dotted(node.func)
    return ".".join(reversed(parts))


def module_name_for(path: str, root: str) -> str:
    """Best-effort dotted module name for ``path`` relative to ``root``.

    Files under a ``src/`` layout get their real import name
    (``src/repro/netsim/kernel.py`` → ``repro.netsim.kernel``); anything
    else is named by its relative path so graph keys stay unique.
    """
    rel = os.path.relpath(path, root)
    parts = rel.split(os.sep)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or rel


def parse_module(path: str, root: str) -> Optional[ModuleInfo]:
    """Parse one file; ``None`` when it is not valid Python."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError, ValueError):
        return None
    return ModuleInfo(path, module_name_for(path, root), source, tree)
