"""simlint — whole-repo determinism & sim-safety static analysis.

Every guarantee this repository sells — byte-identical same-seed runs,
deterministic fault injection, differential scheduler equivalence —
depends on invariants that no unit test states directly: no wall-clock
reads on simulated paths, no process-global RNG, no iteration order
leaking from ``set``s into event scheduling, no blocking I/O inside
kernel coroutines. simlint turns those from tribal knowledge into a
machine-checked gate, the same bet PacketLab makes by statically
verifying monitor programs before running them.

Architecture (two passes over the whole program):

1. **Per-module pass** — every ``.py`` file is parsed once into a
   :class:`~repro.analysis.model.ModuleInfo`: imports, class/function
   inventory (with ``__slots__`` and generator-ness), and raw AST.
2. **Cross-module pass** — :class:`~repro.analysis.model.RepoModel`
   links the modules: an import graph classifies each module as
   *sim-context* (reachable from the simulator substrate that
   ``Simulator.run_process`` drives) or *offline tooling*, and a
   best-effort call graph separates functions that execute inside
   simulated processes from CLI/report helpers that merely live in the
   same file.

Rules (see :mod:`repro.analysis.rules`) then walk each module with the
whole-program model in hand.  Findings can be silenced two ways, both
auditable:

- inline: ``# simlint: ok[RULE-ID] reason`` on (or directly above) the
  offending line — the reason string is mandatory;
- baseline: a committed ``simlint.baseline.json`` grandfathers known
  findings so the CI gate can be enabled before the backlog is zero.

Run it with ``python -m repro analysis [paths]``.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.engine import AnalysisResult, analyze_paths
from repro.analysis.model import ModuleInfo, RepoModel
from repro.analysis.rules import Finding, Rule, all_rules, rule_registry

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "ModuleInfo",
    "RepoModel",
    "Rule",
    "all_rules",
    "analyze_paths",
    "rule_registry",
]
