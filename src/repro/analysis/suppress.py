"""Inline suppressions: ``# simlint: ok[RULE-ID] reason``.

A suppression silences findings of the named rule(s) on the line it
shares, or — when the comment stands alone — on the next source line.
The reason string after the bracket is mandatory (LINT001 enforces it)
and multiple rules may share one comment::

    x = random.random()  # simlint: ok[DET002] demo of the failure mode
    # simlint: ok[DET001,SIM001] measuring real install cost on purpose
    wall = time.perf_counter()

Suppressions that match no finding are themselves findings (LINT002), so
stale ``ok[...]`` comments cannot silently accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.model import ModuleInfo

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ok\[\s*([A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)\s*\]\s*(.*)$"
)


@dataclass
class Suppression:
    """One parsed ``ok[...]`` comment."""

    rules: frozenset[str]
    reason: str
    comment_line: int           # where the comment itself lives
    target_line: int            # the source line it silences
    used: bool = field(default=False, compare=False)

    def matches(self, rule: str, line: int) -> bool:
        return line == self.target_line and rule in self.rules


def parse_suppressions(module: ModuleInfo) -> list[Suppression]:
    """All suppressions in a module, in line order.

    Comments are found with :mod:`tokenize`, not a line regex, so
    ``ok[...]`` examples inside docstrings are not treated as live
    suppressions.  The parse is cached on the module — both the engine
    and the LINT rules ask for it.
    """
    if module._suppressions is not None:
        return module._suppressions
    out: list[Suppression] = []
    module._suppressions = out
    try:
        tokens = tokenize.generate_tokens(io.StringIO(module.source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for idx, text in comments:
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        rules = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        reason = match.group(2).strip()
        # A comment alone on its line targets the next line of code.
        line_text = module.lines[idx - 1] if idx <= len(module.lines) else ""
        standalone = line_text.lstrip().startswith("#")
        target = idx + 1 if standalone else idx
        out.append(
            Suppression(
                rules=rules,
                reason=reason,
                comment_line=idx,
                target_line=target,
            )
        )
    return out
