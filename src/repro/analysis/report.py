"""Text and JSON renderings of an :class:`AnalysisResult`.

The text form is for humans and CI logs; the JSON form (stable key
order, schema-versioned) is what CI publishes as an artifact and what
the golden tests pin.
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult

REPORT_VERSION = 1


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """Human-readable report: one line per gate finding, then a summary."""
    lines: list[str] = []
    for finding in result.gate_findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} {finding.message}"
        )
    if verbose:
        for finding in result.suppressed_findings:
            lines.append(
                f"{finding.path}:{finding.line}: {finding.rule} suppressed "
                f"({finding.suppress_reason or 'no reason'})"
            )
        for finding in result.baselined_findings:
            lines.append(
                f"{finding.path}:{finding.line}: {finding.rule} baselined"
            )
    counts = result.counts_by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}×{n}" for rule, n in counts.items())
        lines.append(
            f"simlint: {len(result.gate_findings)} finding(s) [{per_rule}] "
            f"({len(result.suppressed_findings)} suppressed, "
            f"{len(result.baselined_findings)} baselined) "
            f"in {len(result.files)} files"
        )
    else:
        lines.append(
            f"simlint: clean — 0 findings "
            f"({len(result.suppressed_findings)} suppressed, "
            f"{len(result.baselined_findings)} baselined) "
            f"in {len(result.files)} files"
        )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report with a stable schema and key order."""
    payload = {
        "version": REPORT_VERSION,
        "tool": "simlint",
        "files_scanned": len(result.files),
        "files_skipped": sorted(result.skipped),
        "counts_by_rule": result.counts_by_rule(),
        "gate_findings": len(result.gate_findings),
        "suppressed": len(result.suppressed_findings),
        "baselined": len(result.baselined_findings),
        "findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
