"""``python -m repro analysis`` — the simlint command line.

Exit codes: 0 clean (every finding suppressed or baselined), 1 gate
findings present, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    finding_fingerprint,
)
from repro.analysis.engine import analyze_paths
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import all_rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro analysis",
        description=(
            "simlint: determinism & sim-safety static analysis over the "
            "whole repository"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the JSON report instead of text",
    )
    parser.add_argument(
        "--report", metavar="PATH",
        help="also write the JSON report to PATH (CI artifact)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline with the current gate findings and exit 0",
    )
    parser.add_argument(
        "--rule", action="append", metavar="ID", dest="rule_ids",
        help="restrict the scan to the given rule id (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list suppressed and baselined findings",
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  [{rule.scope:3s}]  {rule.name}: {rule.summary}")
        return 0

    if args.rule_ids:
        known = {rule.id for rule in rules}
        unknown = [rid for rid in args.rule_ids if rid not in known]
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.id in set(args.rule_ids)]

    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE_NAME
    baseline = None
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"error: cannot load baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    result = analyze_paths(args.paths, rules=rules, baseline=baseline)

    if args.update_baseline:
        pairs = [(f, result.line_text(f)) for f in result.gate_findings]
        updated = Baseline.from_findings(pairs, path=baseline_path)
        updated.save()
        print(
            f"baseline updated: {len(updated.entries)} finding(s) recorded "
            f"in {baseline_path}"
        )
        return 0

    output = render_json(result) if args.json else render_text(
        result, verbose=args.verbose
    )
    print(output, end="" if args.json else "\n")

    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(render_json(result))

    return 1 if result.gate_findings else 0


# re-exported for tests that want to fingerprint findings the CLI's way
__all__ = ["main", "finding_fingerprint"]


if __name__ == "__main__":
    sys.exit(main())
