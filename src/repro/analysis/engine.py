"""simlint driver: collect files → two analysis passes → findings.

``analyze_paths`` is the single entry point used by the CLI, the test
suite, and the benchmark.  It returns an :class:`AnalysisResult` whose
``gate_findings`` (neither suppressed nor baselined) decide the exit
code — an empty list is a green gate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.analysis.baseline import Baseline, finding_fingerprint
from repro.analysis.model import ModuleInfo, RepoModel, parse_module
from repro.analysis.rules import Finding, Rule, all_rules
from repro.analysis.suppress import parse_suppressions

_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache",
              ".hypothesis", "node_modules"}


def collect_files(paths: Sequence[str]) -> list[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: set[str] = set()
    for path in paths:
        if os.path.isfile(path) and path.endswith(".py"):
            files.add(os.path.abspath(path))
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in _SKIP_DIRS
            )
            for filename in filenames:
                if filename.endswith(".py"):
                    files.add(os.path.abspath(os.path.join(dirpath, filename)))
    return sorted(files)


@dataclass
class AnalysisResult:
    """Everything one scan produced."""

    root: str
    files: list[str]
    findings: list[Finding] = field(default_factory=list)
    model: Optional[RepoModel] = None
    skipped: list[str] = field(default_factory=list)  # unparseable files

    @property
    def gate_findings(self) -> list[Finding]:
        """Findings that fail the gate (not suppressed, not baselined)."""
        return [
            f for f in self.findings if not f.suppressed and not f.baselined
        ]

    @property
    def suppressed_findings(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined_findings(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.gate_findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def line_text(self, finding: Finding) -> str:
        module = self._module_for(finding.path)
        if module and 1 <= finding.line <= len(module.lines):
            return module.lines[finding.line - 1]
        return ""

    def _module_for(self, path: str) -> Optional[ModuleInfo]:
        if self.model is None:
            return None
        for module in self.model.modules.values():
            if module.path == path or _relpath(module.path, self.root) == path:
                return module
        return None


def analyze_paths(
    paths: Sequence[str],
    root: Optional[str] = None,
    rules: Optional[Iterable[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> AnalysisResult:
    """Run the full two-pass analysis over ``paths``.

    ``root`` anchors module-name derivation (defaults to the common
    parent of ``paths``); ``rules`` defaults to the full registry;
    ``baseline`` marks grandfathered findings instead of gating on them.
    """
    if root is None:
        root = os.path.commonpath([os.path.abspath(p) for p in paths])
        if os.path.isfile(root):
            root = os.path.dirname(root)
        # anchor at the repo root when handed e.g. ``src/repro``
        while os.path.basename(root) in ("repro", "src"):
            root = os.path.dirname(root)

    files = collect_files(paths)
    result = AnalysisResult(root=root, files=files)

    # Pass 1: parse every file.
    modules: list[ModuleInfo] = []
    for path in files:
        module = parse_module(path, root)
        if module is None:
            result.skipped.append(path)
        else:
            modules.append(module)

    # Pass 2: cross-module graphs, then rules.
    model = RepoModel(modules)
    result.model = model

    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    per_module: dict[str, list[Finding]] = {}
    for module in modules:
        bucket: list[Finding] = []
        for rule in active:
            bucket.extend(rule.check_module(module, model))
        per_module[module.name] = bucket
        findings.extend(bucket)

    # Suppression matching (and LINT002 for the stale ones).
    lint002 = next((r for r in active if r.id == "LINT002"), None)
    for module in modules:
        suppressions = parse_suppressions(module)
        if not suppressions:
            continue
        for finding in per_module.get(module.name, ()):
            for supp in suppressions:
                if supp.matches(finding.rule, finding.line):
                    finding.suppressed = True
                    finding.suppress_reason = supp.reason
                    supp.used = True
        if lint002 is not None:
            for supp in suppressions:
                if not supp.used and "LINT002" not in supp.rules:
                    findings.append(
                        Finding(
                            rule="LINT002",
                            path=module.path,
                            line=supp.comment_line,
                            col=0,
                            message=(
                                f"suppression ok"
                                f"[{', '.join(sorted(supp.rules))}] matched "
                                f"no finding; delete it or fix the rule id"
                            ),
                        )
                    )

    # Baseline matching.
    if baseline is not None and baseline.entries:
        by_path = {m.path: m for m in modules}
        for finding in findings:
            if finding.suppressed:
                continue
            module = by_path.get(finding.path)
            line_text = ""
            if module and 1 <= finding.line <= len(module.lines):
                line_text = module.lines[finding.line - 1]
            rel = _relpath(finding.path, root)
            fp = finding_fingerprint(_with_path(finding, rel), line_text)
            if baseline.contains(fp):
                finding.baselined = True

    # Report paths relative to the root: stable across machines.
    for finding in findings:
        finding.path = _relpath(finding.path, root)

    findings.sort(key=Finding.sort_key)
    result.findings = findings
    return result


def _relpath(path: str, root: str) -> str:
    try:
        rel = os.path.relpath(path, root)
    except ValueError:
        return path
    return rel.replace(os.sep, "/") if not rel.startswith("..") else path


def _with_path(finding: Finding, path: str) -> Finding:
    if finding.path == path:
        return finding
    clone = Finding(**{**finding.__dict__, "path": path})
    return clone
