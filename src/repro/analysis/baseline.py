"""Committed baseline: grandfathered findings the gate tolerates.

The baseline lets the CI gate be turned on *before* every historical
finding is fixed: known findings are recorded (keyed by rule, path and a
content fingerprint of the offending line, so unrelated edits shifting
line numbers do not invalidate them) and anything not in the file fails
the build.  Policy: the baseline only ever shrinks — new findings are
fixed or inline-suppressed with a reason, never baselined, and
``--update-baseline`` exists for the initial adoption and for deleting
entries as the backlog burns down.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable, Optional

from repro.analysis.rules import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "simlint.baseline.json"


def finding_fingerprint(finding: Finding, line_text: str) -> str:
    """Stable identity for a finding: rule + path + offending line text.

    Line *content* (whitespace-normalized), not line *number*, so edits
    elsewhere in the file do not churn the baseline.
    """
    normalized = " ".join(line_text.split())
    payload = f"{finding.rule}|{finding.path}|{normalized}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class Baseline:
    """The committed set of grandfathered finding fingerprints."""

    def __init__(self, entries: Optional[dict[str, dict]] = None,
                 path: Optional[str] = None):
        self.entries: dict[str, dict] = dict(entries or {})
        self.path = path

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls(path=path)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}"
            )
        entries = {
            entry["fingerprint"]: entry for entry in data.get("findings", [])
        }
        return cls(entries, path=path)

    def contains(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    @classmethod
    def from_findings(
        cls, findings: Iterable[tuple[Finding, str]], path: Optional[str] = None
    ) -> "Baseline":
        """Build a baseline from ``(finding, line_text)`` pairs."""
        entries: dict[str, dict] = {}
        for finding, line_text in findings:
            fp = finding_fingerprint(finding, line_text)
            entries[fp] = {
                "fingerprint": fp,
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,           # informational only
                "message": finding.message,
            }
        return cls(entries, path=path)

    def save(self, path: Optional[str] = None) -> str:
        target = path or self.path
        if target is None:
            raise ValueError("baseline has no path")
        payload = {
            "version": BASELINE_VERSION,
            "findings": sorted(
                self.entries.values(),
                key=lambda e: (e["path"], e["rule"], e["fingerprint"]),
            ),
        }
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target
