"""On-endpoint baselines (the PlanetLab/Scriptroute model) used as
comparators for PacketLab's reactive-latency limitation (§3.5)."""

from repro.baselines.native import (
    ChallengeServer,
    PacedServer,
    native_challenge_client,
    native_paced_client,
    native_ping,
    packetlab_challenge_client,
    packetlab_paced_client,
)

__all__ = [
    "ChallengeServer",
    "PacedServer",
    "native_challenge_client",
    "native_paced_client",
    "native_ping",
    "packetlab_challenge_client",
    "packetlab_paced_client",
]
