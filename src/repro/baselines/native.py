"""The on-endpoint baseline: today's PlanetLab/Scriptroute model.

"Most measurement platforms today follow the PlanetLab model, where
experiments run on the endpoint rather than on a separate controller"
(§3.5). These baselines run measurement logic *directly on the endpoint
host*, with no controller round trips, and serve as the comparator for the
paper's admitted limitation: reactive experiments under PacketLab pay the
endpoint-controller RTT per reaction.

The canonical reactive workload is a challenge/response exchange: the
target issues an unpredictable nonce that the client must echo back. The
response *depends on* received data, so a PacketLab controller must see
the nonce before it can command the reply — one controller round trip the
native client never pays. The paper's rebuttal is also here: when the
exchange does not depend on received data, the PacketLab controller
pre-schedules everything and matches the native client.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.controller.client import EndpointHandle
from repro.netsim.clock import NANOSECONDS
from repro.netsim.node import Node
from repro.packet.icmp import ICMP_ECHO_REPLY, IcmpMessage

CHALLENGE_HELLO = b"HELLO"
CHALLENGE_DONE = b"DONE"


@dataclass
class ChallengeServer:
    """UDP challenge/response server measuring client reaction time.

    Protocol: client sends ``HELLO``; server replies with an 8-byte nonce;
    client echoes the nonce back; server replies ``DONE``. The server
    records, per transaction, the time between issuing the nonce and
    receiving its echo — the client's reaction latency.
    """

    node: Node
    port: int
    seed: int = 0
    reaction_times: list[float] = field(default_factory=list)
    transactions: int = 0

    def start(self) -> "ChallengeServer":
        rng = Random(self.seed)

        def server() -> Generator:
            sock = self.node.udp.bind(self.port)
            outstanding: dict[tuple[int, int], tuple[bytes, float]] = {}
            while True:
                payload, src_ip, src_port, _ = yield sock.recvfrom()
                key = (src_ip, src_port)
                if payload == CHALLENGE_HELLO:
                    nonce = rng.getrandbits(64).to_bytes(8, "big")
                    outstanding[key] = (nonce, self.node.sim.now)
                    sock.sendto(nonce, src_ip, src_port)
                elif key in outstanding and payload == outstanding[key][0]:
                    _, issued = outstanding.pop(key)
                    self.reaction_times.append(self.node.sim.now - issued)
                    self.transactions += 1
                    sock.sendto(CHALLENGE_DONE, src_ip, src_port)

        self.node.spawn(server(), name=f"challenge:{self.port}")
        return self


def native_challenge_client(
    node: Node, server_addr: int, server_port: int
) -> Generator:
    """On-endpoint client: react to the nonce locally (no controller).

    Returns the client-observed completion time (sim seconds).
    """
    sock = node.udp.bind(0)
    start = node.sim.now
    sock.sendto(CHALLENGE_HELLO, server_addr, server_port)
    nonce, src_ip, src_port, _ = yield sock.recvfrom()
    sock.sendto(nonce, src_ip, src_port)
    done, _, _, _ = yield sock.recvfrom()
    sock.close()
    return node.sim.now - start


def packetlab_challenge_client(
    handle: EndpointHandle,
    server_addr: int,
    server_port: int,
    sktid: int = 0,
    timeout: float = 10.0,
) -> Generator:
    """PacketLab client: the nonce must travel to the controller before
    the echo can be commanded — the §3.5 reactive-latency cost."""
    status = yield from handle.nopen_udp(
        sktid, locport=0, remaddr=server_addr, remport=server_port
    )
    handle.expect_ok(status, "nopen")
    t0 = yield from handle.read_clock()
    deadline = t0 + int(timeout * NANOSECONDS)
    yield from handle.nsend(sktid, 0, CHALLENGE_HELLO)
    nonce: Optional[bytes] = None
    while nonce is None:
        poll = yield from handle.npoll(deadline)
        for record in poll.records:
            if len(record.data) == 8:
                nonce = record.data
                break
        if poll.records == () and (yield from handle.read_clock()) >= deadline:
            break
    if nonce is None:
        yield from handle.nclose(sktid)
        raise RuntimeError("challenge nonce never arrived")
    yield from handle.nsend(sktid, 0, nonce)
    done = None
    while done is None:
        poll = yield from handle.npoll(deadline)
        for record in poll.records:
            if record.data == CHALLENGE_DONE:
                done = record
                break
        if poll.records == () and (yield from handle.read_clock()) >= deadline:
            break
    yield from handle.nclose(sktid)
    return done is not None


@dataclass
class PacedServer:
    """Non-reactive counterpart: the server just expects two packets a
    fixed interval apart (no data dependency), and records the interval
    accuracy. A PacketLab controller pre-schedules both sends."""

    node: Node
    port: int
    intervals: list[float] = field(default_factory=list)

    def start(self) -> "PacedServer":
        def server() -> Generator:
            sock = self.node.udp.bind(self.port)
            last: dict[tuple[int, int], float] = {}
            while True:
                payload, src_ip, src_port, _ = yield sock.recvfrom()
                key = (src_ip, src_port)
                now = self.node.sim.now
                if key in last:
                    self.intervals.append(now - last.pop(key))
                else:
                    last[key] = now

        self.node.spawn(server(), name=f"paced:{self.port}")
        return self


def native_paced_client(
    node: Node, server_addr: int, server_port: int, gap: float
) -> Generator:
    """On-endpoint client sending two packets ``gap`` seconds apart."""
    sock = node.udp.bind(0)
    sock.sendto(b"first", server_addr, server_port)
    yield gap
    sock.sendto(b"second", server_addr, server_port)
    sock.close()
    return None


def packetlab_paced_client(
    handle: EndpointHandle,
    server_addr: int,
    server_port: int,
    gap: float,
    sktid: int = 0,
    lead: float = 0.5,
) -> Generator:
    """PacketLab client: both sends pre-scheduled with nsend times — no
    dependency on received data, so no reactive penalty (§3.5)."""
    status = yield from handle.nopen_udp(
        sktid, locport=0, remaddr=server_addr, remport=server_port
    )
    handle.expect_ok(status, "nopen")
    t0 = yield from handle.read_clock()
    first = t0 + int(lead * NANOSECONDS)
    second = first + int(gap * NANOSECONDS)
    yield from handle.nsend(sktid, first, b"first")
    yield from handle.nsend(sktid, second, b"second")
    yield lead + gap + 1.0
    yield from handle.nclose(sktid)
    return None


def native_ping(
    node: Node, destination: int, count: int = 4, interval: float = 0.2,
    timeout: float = 2.0,
) -> Generator:
    """On-endpoint ping using the host stack directly (baseline for E2)."""
    ident = 0x6E70  # "np"
    send_times: dict[int, float] = {}
    rtts: dict[int, float] = {}

    def listener(packet, message: IcmpMessage) -> None:
        if (
            message.icmp_type == ICMP_ECHO_REPLY
            and message.echo_ident == ident
            and message.echo_seq in send_times
            and message.echo_seq not in rtts
        ):
            rtts[message.echo_seq] = node.sim.now - send_times[message.echo_seq]

    node.icmp.add_listener(listener)
    for seq in range(1, count + 1):
        send_times[seq] = node.sim.now
        node.icmp.send_echo_request(destination, ident, seq)
        yield interval
    yield timeout
    node.icmp.remove_listener(listener)
    return [rtts.get(seq) for seq in range(1, count + 1)]
