"""``python -m repro`` — a self-contained demonstration run.

Builds the default testbed and runs the paper's two §4 experiments plus a
clock-sync pass, printing what a first-time user should see. The richer
scenarios live in ``examples/``.

Subcommands:

- ``python -m repro`` — the demo run below.
- ``python -m repro observability [--export PATH | JSONL_PATH]`` — run a
  short instrumented experiment and print the per-layer telemetry
  report; or format an existing JSONL export without running anything.
- ``python -m repro fleet [--endpoints N] [--shards K] [...]`` — run a
  fleet ping campaign over sharded rendezvous and print the aggregate
  report.
- ``python -m repro analysis [paths ...]`` — run the simlint
  determinism & sim-safety static analyzer and print its report
  (exit 1 on any unsuppressed, non-baselined finding).
- ``python -m repro warehouse {ls,ingest,query,rollup,compact} ...`` —
  operate the durable results warehouse (persisted campaign output:
  columnar segments, materialized rollups, zone-map-pruned queries).
"""

from __future__ import annotations

import sys


def observability_main(argv: list[str]) -> int:
    """Run an instrumented experiment (or format an existing JSONL export)
    and print the per-layer telemetry report."""
    from repro.obs.report import format_report
    from repro.obs.sinks import read_jsonl

    export_path = None
    jsonl_path = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--export":
            if not args:
                print("error: --export requires a path", file=sys.stderr)
                return 2
            export_path = args.pop(0)
        elif arg in ("-h", "--help"):
            print("usage: python -m repro observability "
                  "[--export PATH | JSONL_PATH]")
            return 0
        else:
            jsonl_path = arg

    if jsonl_path is not None:
        try:
            records = read_jsonl(jsonl_path)
        except OSError as exc:
            print(f"error: cannot read {jsonl_path}: {exc}", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"error: {jsonl_path} is not valid JSONL: {exc}",
                  file=sys.stderr)
            return 1
        print(format_report(records, title=f"Telemetry report ({jsonl_path})"))
        return 0

    from repro.controller.clocksync import estimate_clock
    from repro.core import Testbed
    from repro.experiments import ping

    testbed = Testbed(endpoint_clock_offset=7.5)

    def experiment(handle):
        yield from estimate_clock(
            handle, testbed.controller_host.clock, probes=4
        )
        yield from ping(handle, testbed.target_address, count=3)
        return None

    _, snapshot = testbed.run_experiment(
        experiment, "observability-demo", collect_telemetry=True
    )
    if export_path:
        snapshot.export_jsonl(export_path)
        print(f"exported {len(snapshot.to_jsonl_lines())} records "
              f"to {export_path}\n")
    print(format_report(snapshot, title="Telemetry report (demo experiment)"))
    return 0


def fleet_main(argv: list[str]) -> int:
    """Run a ping campaign over a generated fleet and print the report."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Run a measurement campaign over a simulated fleet.",
    )
    parser.add_argument("--endpoints", type=int, default=20,
                        help="fleet size (default 20)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="campaign jobs (default: one per endpoint)")
    parser.add_argument("--shards", type=int, default=2,
                        help="rendezvous shard count (default 2)")
    parser.add_argument("--operators", type=int, default=4,
                        help="endpoint operator keys (default 4)")
    parser.add_argument("--topology", default="star",
                        choices=("star", "tree", "mesh"))
    parser.add_argument("--concurrency", type=int, default=16,
                        help="max concurrent sessions (default 16)")
    parser.add_argument("--rate", type=float, default=None,
                        help="session starts per simulated second "
                             "(default unlimited)")
    parser.add_argument("--count", type=int, default=3,
                        help="probes per ping job (default 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--export", metavar="PATH", default=None,
                        help="write per-endpoint rollups as JSONL")
    parser.add_argument("--json", action="store_true",
                        help="print the canonical JSON report instead of "
                             "the summary")
    parser.add_argument("--warehouse", metavar="DIR", default=None,
                        help="persist the campaign (per-job rows, raw "
                             "samples, rollups) into this warehouse")
    args = parser.parse_args(argv)

    from repro.experiments.campaign import ping_job
    from repro.fleet import FleetTestbed

    fleet = FleetTestbed(
        endpoint_count=args.endpoints,
        topology=args.topology,
        shards=args.shards,
        operator_count=args.operators,
        seed=args.seed,
    )
    job_count = args.jobs or args.endpoints
    jobs = [ping_job(f"ping-{index}", count=args.count)
            for index in range(job_count)]
    report = fleet.run_campaign(
        jobs,
        campaign_name="fleet-demo",
        max_concurrency=args.concurrency,
        rate=args.rate,
        warehouse=args.warehouse,
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
        print(f"  rendezvous: {args.shards} shard(s), "
              f"{fleet.rendezvous.experiments_delivered} offers delivered")
    if args.export:
        lines = report.export_jsonl(args.export)
        print(f"  exported {lines} rollup records to {args.export}")
    if args.warehouse:
        print(f"  persisted campaign 'fleet-demo' to {args.warehouse} "
              f"(try: python -m repro warehouse --root {args.warehouse} ls)")
    return 0


def main() -> int:
    from repro.controller.clocksync import estimate_clock
    from repro.core import Testbed
    from repro.experiments import measure_uplink_bandwidth, ping, traceroute
    from repro.util.inet import format_ip

    print("PacketLab reproduction demo")
    print("===========================")
    testbed = Testbed(
        uplink_bandwidth_bps=4e6,
        endpoint_clock_offset=42.0,
        endpoint_clock_skew=80e-6,
    )
    print("testbed: endpoint behind a 10/4 Mbps access link; its clock is")
    print("         42 s off and 80 ppm fast (the controller won't mind)\n")

    def experiment(handle):
        estimate = yield from estimate_clock(
            handle, testbed.controller_host.clock, probes=6
        )
        print(f"clock sync: endpoint offset {estimate.offset:+.3f} s, "
              f"skew {estimate.skew * 1e6:+.0f} ppm "
              f"(min RTT {estimate.rtt_min * 1000:.1f} ms)")

        pings = yield from ping(handle, testbed.target_address, count=3)
        print(f"ping:       {pings.received}/{pings.sent} replies, "
              f"min RTT {pings.rtt_min * 1000:.2f} ms")

        route = yield from traceroute(handle, testbed.target_address, sktid=1)
        hops = " -> ".join(
            format_ip(hop.responder) if hop.responder else "*"
            for hop in route.hops
        )
        print(f"traceroute: {hops}")

        bandwidth = yield from measure_uplink_bandwidth(
            handle, testbed.controller_host, packet_count=40, sktid=2
        )
        print(f"uplink:     measured {bandwidth.measured_bps / 1e6:.2f} Mbps "
              f"(configured 4.00 Mbps)")
        return None

    testbed.run_experiment(experiment, "demo")
    print("\nall experiment logic ran on the controller; the endpoint only")
    print("executed nopen/ncap/nsend/npoll/mread commands (Table 1).")
    return 0


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "observability":
        sys.exit(observability_main(sys.argv[2:]))
    if len(sys.argv) > 1 and sys.argv[1] == "fleet":
        sys.exit(fleet_main(sys.argv[2:]))
    if len(sys.argv) > 1 and sys.argv[1] == "analysis":
        from repro.analysis.cli import main as analysis_main

        sys.exit(analysis_main(sys.argv[2:]))
    if len(sys.argv) > 1 and sys.argv[1] == "warehouse":
        from repro.warehouse.cli import main as warehouse_main

        sys.exit(warehouse_main(sys.argv[2:]))
    sys.exit(main())
