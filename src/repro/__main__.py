"""``python -m repro`` — a self-contained demonstration run.

Builds the default testbed and runs the paper's two §4 experiments plus a
clock-sync pass, printing what a first-time user should see. The richer
scenarios live in ``examples/``.
"""

from __future__ import annotations

import sys


def main() -> int:
    from repro.controller.clocksync import estimate_clock
    from repro.core import Testbed
    from repro.experiments import measure_uplink_bandwidth, ping, traceroute
    from repro.util.inet import format_ip

    print("PacketLab reproduction demo")
    print("===========================")
    testbed = Testbed(
        uplink_bandwidth_bps=4e6,
        endpoint_clock_offset=42.0,
        endpoint_clock_skew=80e-6,
    )
    print("testbed: endpoint behind a 10/4 Mbps access link; its clock is")
    print("         42 s off and 80 ppm fast (the controller won't mind)\n")

    def experiment(handle):
        estimate = yield from estimate_clock(
            handle, testbed.controller_host.clock, probes=6
        )
        print(f"clock sync: endpoint offset {estimate.offset:+.3f} s, "
              f"skew {estimate.skew * 1e6:+.0f} ppm "
              f"(min RTT {estimate.rtt_min * 1000:.1f} ms)")

        pings = yield from ping(handle, testbed.target_address, count=3)
        print(f"ping:       {pings.received}/{pings.sent} replies, "
              f"min RTT {pings.rtt_min * 1000:.2f} ms")

        route = yield from traceroute(handle, testbed.target_address, sktid=1)
        hops = " -> ".join(
            format_ip(hop.responder) if hop.responder else "*"
            for hop in route.hops
        )
        print(f"traceroute: {hops}")

        bandwidth = yield from measure_uplink_bandwidth(
            handle, testbed.controller_host, packet_count=40, sktid=2
        )
        print(f"uplink:     measured {bandwidth.measured_bps / 1e6:.2f} Mbps "
              f"(configured 4.00 Mbps)")
        return None

    testbed.run_experiment(experiment, "demo")
    print("\nall experiment logic ran on the controller; the endpoint only")
    print("executed nopen/ncap/nsend/npoll/mread commands (Table 1).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
