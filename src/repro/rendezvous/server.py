"""The rendezvous server (§3.2): publish/subscribe experiment dissemination.

"Rendezvous servers are persistent. They constitute the only permanent
infrastructure required by PacketLab." The server accepts publications
signed (directly or through delegation) by one of its trusted publisher
keys, and broadcasts each experiment to every subscribed endpoint whose
channels intersect the keys appearing in the experiment's delivery chains.

Channels are key hashes (§3.3): an endpoint subscribes to the hashes of
the keys it trusts to sign experiment certificates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.crypto.chain import CertificateChain, ChainError
from repro.netsim.kernel import Queue
from repro.netsim.node import Node
from repro.netsim.stack.tcp import TcpError
from repro.proto.framing import FramingError, MessageStream
from repro.proto.messages import (
    RdzExperiment,
    RdzHeartbeat,
    RdzPublish,
    RdzPublishResult,
    RdzSubscribe,
)
from repro.rendezvous.descriptor import ExperimentDescriptor
from repro.util.byteio import DecodeError


@dataclass
class StoredExperiment:
    experiment_id: bytes  # descriptor hash — the stable identity
    descriptor_bytes: bytes
    delivery_chains: tuple[bytes, ...]
    channels: frozenset[bytes]  # key ids appearing in delivery chains


@dataclass
class Subscriber:
    stream: MessageStream
    channels: frozenset[bytes]
    outbox: Queue
    ident: int = 0  # subscriber address, stable across reconnects
    alive: bool = True


@dataclass
class HeartbeatRecord:
    """Last-known liveness of one endpoint, as seen by this shard."""

    endpoint_name: str
    seq: int = 0
    last_seen: float = 0.0  # simulator time of the latest beacon
    beats: int = 0  # total beacons observed (across restarts)
    restarts: int = 0  # seq regressions observed (endpoint lost memory)


class RendezvousServer:
    """A persistent publish/subscribe server for experiment descriptors."""

    def __init__(self, node: Node, port: int,
                 trusted_publisher_key_ids: Optional[list[bytes]] = None) -> None:
        self.node = node
        self.port = port
        self._obs = node.sim.obs
        self.trusted_publisher_key_ids = list(trusted_publisher_key_ids or [])
        self.experiments: list[StoredExperiment] = []
        self.subscribers: list[Subscriber] = []
        # (subscriber address, experiment id) pairs already offered.
        # Survives stop()/restart() like the experiment store does, so a
        # resubscribing endpoint is not re-offered experiments it already
        # received (idempotent delivery).
        self._delivered: set[tuple[int, bytes]] = set()
        # Liveness registry: endpoint name -> last-known heartbeat.
        # Survives stop()/restart() like the experiment store — records
        # simply go stale during downtime and refresh once endpoints
        # resubscribe and beacon again.
        self.heartbeats: dict[str, HeartbeatRecord] = {}
        self.offers_deduplicated = 0
        self.publications_accepted = 0
        self.publications_rejected = 0
        self.experiments_delivered = 0
        self.restarts = 0
        self.running = False
        self._listener = None
        self._accept_proc = None

    def start(self) -> "RendezvousServer":
        self._listener = self.node.tcp.listen(self.port)
        self._accept_proc = self.node.spawn(self._accept_loop(), name="rdz-accept")
        self.running = True
        return self

    def stop(self) -> None:
        """Go down hard: sever every subscriber, stop accepting.

        Stored experiments survive — the rendezvous server is the
        persistent infrastructure (§3.2), and a restart replays them to
        resubscribing endpoints.
        """
        if not self.running:
            return
        self.running = False
        if self._accept_proc is not None:
            self._accept_proc.kill()
            self._accept_proc = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for subscriber in list(self.subscribers):
            subscriber.alive = False
            subscriber.outbox.put(None)
            subscriber.stream.conn.abort()
        self.subscribers.clear()
        if self._obs.enabled:
            self._obs.gauge("rendezvous.subscribers").set(0)
            self._obs.emit("rendezvous", "stopped", port=self.port)

    def restart(self) -> "RendezvousServer":
        """Come back up on the same port with stored experiments intact."""
        if self.running:
            return self
        self.restarts += 1
        if self._obs.enabled:
            self._obs.counter("rendezvous.restarts").inc()
            self._obs.emit("rendezvous", "restarted", port=self.port,
                           experiments=len(self.experiments))
        return self.start()

    def _accept_loop(self) -> Generator:
        while True:
            conn = yield self._listener.accept()
            self.node.spawn(self._serve(conn), name="rdz-serve")

    def _serve(self, conn) -> Generator:
        stream = MessageStream(conn)
        try:
            message = yield from stream.recv()
        except (TcpError, FramingError):
            conn.close()
            return
        if isinstance(message, RdzPublish):
            yield from self._handle_publish(stream, message)
            conn.close()
        elif isinstance(message, RdzSubscribe):
            yield from self._handle_subscribe(stream, message)
        else:
            conn.close()

    # -- publication ----------------------------------------------------------

    def _handle_publish(self, stream: MessageStream,
                        message: RdzPublish) -> Generator:
        ok, reason = self._validate_publish(message)
        yield from stream.send(RdzPublishResult(ok=ok, reason=reason))
        obs = self._obs
        if not ok:
            self.publications_rejected += 1
            if obs.enabled:
                obs.counter("rendezvous.publish_rejected").inc()
                obs.emit("rendezvous", "publish-rejected", reason=reason)
            return
        self.publications_accepted += 1
        if obs.enabled:
            obs.counter("rendezvous.publish_accepted").inc()
            obs.emit("rendezvous", "publish-accepted",
                     subscribers=len(self.subscribers))
        channels = self._chain_channels(message.delivery_chains)
        # The descriptor decoded during validation; its hash is the
        # experiment's stable identity. A republish of the same
        # experiment replaces the stored entry instead of duplicating it.
        experiment_id = ExperimentDescriptor.decode(message.descriptor).hash()
        stored = StoredExperiment(
            experiment_id=experiment_id,
            descriptor_bytes=message.descriptor,
            delivery_chains=message.delivery_chains,
            channels=channels,
        )
        for index, existing in enumerate(self.experiments):
            if existing.experiment_id == experiment_id:
                self.experiments[index] = stored
                break
        else:
            self.experiments.append(stored)
        for subscriber in list(self.subscribers):
            self._offer(subscriber, stored)

    def _validate_publish(self, message: RdzPublish) -> tuple[bool, str]:
        """Check the descriptor decodes and the publish chain is anchored
        in a trusted publisher key. "The reason a certificate is required
        at all is to protect the rendezvous server against anonymous
        abuse" (§3.3) — so acceptance is deliberately liberal beyond
        that."""
        try:
            descriptor = ExperimentDescriptor.decode(message.descriptor)
        except DecodeError as exc:
            return False, f"bad descriptor: {exc}"
        try:
            chain = CertificateChain.decode(message.chain)
        except DecodeError as exc:
            return False, f"bad chain: {exc}"
        try:
            chain.verify(
                self.trusted_publisher_key_ids,
                descriptor.hash(),
                self.node.sim.now,
            )
        except ChainError as exc:
            return False, f"publish not authorized: {exc}"
        return True, ""

    @staticmethod
    def _chain_channels(delivery_chains: tuple[bytes, ...]) -> frozenset[bytes]:
        """Every key id appearing in any delivery chain is a channel the
        experiment is broadcast on."""
        channels: set[bytes] = set()
        for chain_bytes in delivery_chains:
            try:
                chain = CertificateChain.decode(chain_bytes)
            except DecodeError:
                continue
            for cert in chain.certificates:
                channels.add(cert.signer_key_id)
                channels.add(cert.subject_hash)
        return frozenset(channels)

    # -- subscription ------------------------------------------------------------

    def _handle_subscribe(self, stream: MessageStream,
                          message: RdzSubscribe) -> Generator:
        subscriber = Subscriber(
            stream=stream,
            channels=frozenset(message.channels),
            outbox=self.node.sim.queue(name="rdz-sub-outbox"),
            ident=stream.conn.remote_ip,
        )
        self.subscribers.append(subscriber)
        if self._obs.enabled:
            self._obs.counter("rendezvous.subscriptions").inc()
            self._obs.gauge("rendezvous.subscribers").set(len(self.subscribers))
        self.node.spawn(self._subscriber_writer(subscriber), name="rdz-sub-writer")
        # Replay stored experiments matching the subscription.
        for stored in self.experiments:
            self._offer(subscriber, stored)
        # Keep the connection open; detect close by reading. Heartbeats
        # arrive on this same stream (liveness costs no extra
        # connection).
        try:
            while True:
                message = yield from stream.recv()
                if message is None:
                    break
                if isinstance(message, RdzHeartbeat):
                    self._record_heartbeat(message)
        except (TcpError, FramingError):
            pass
        subscriber.alive = False
        subscriber.outbox.put(None)
        try:
            self.subscribers.remove(subscriber)
        except ValueError:
            pass
        if self._obs.enabled:
            self._obs.gauge("rendezvous.subscribers").set(len(self.subscribers))

    def _record_heartbeat(self, beacon: RdzHeartbeat) -> None:
        record = self.heartbeats.get(beacon.endpoint_name)
        if record is None:
            record = HeartbeatRecord(endpoint_name=beacon.endpoint_name)
            self.heartbeats[beacon.endpoint_name] = record
        if beacon.seq < record.seq:
            # The counter went backwards: the endpoint restarted (lost
            # its memory) since its previous beacon.
            record.restarts += 1
        record.seq = beacon.seq
        record.last_seen = self.node.sim.now
        record.beats += 1
        if self._obs.enabled:
            self._obs.counter("fleet.heartbeats").inc()

    def _subscriber_writer(self, subscriber: Subscriber) -> Generator:
        while True:
            item = yield subscriber.outbox.get()
            if item is None or not subscriber.alive:
                return
            try:
                yield from subscriber.stream.send(item)
            except TcpError:
                subscriber.alive = False
                return

    def _offer(self, subscriber: Subscriber, stored: StoredExperiment) -> None:
        if not subscriber.alive:
            return
        if not (subscriber.channels & stored.channels):
            return
        key = (subscriber.ident, stored.experiment_id)
        if key in self._delivered:
            # Idempotent delivery: this subscriber already received this
            # experiment (before a restart, or on a previous
            # subscription) — replays must not double-offer it.
            self.offers_deduplicated += 1
            if self._obs.enabled:
                self._obs.counter("rendezvous.offers_deduplicated").inc()
            return
        self._delivered.add(key)
        chain = stored.delivery_chains[0] if stored.delivery_chains else b""
        self.experiments_delivered += 1
        if self._obs.enabled:
            self._obs.counter("rendezvous.delivered").inc()
        subscriber.outbox.put(
            RdzExperiment(descriptor=stored.descriptor_bytes, chain=chain)
        )
