"""Experiment descriptors (§3.2).

"Experimenters publish their experiments to a rendezvous server by sending
the rendezvous server an experiment descriptor, which contains the address
of the experiment controller, the experiment name, and a URL describing
the experiment." The descriptor's hash is what experiment certificates
sign; it deliberately does *not* contain the experiment's commands —
experiments are interactive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import object_hash
from repro.util.byteio import ByteReader, ByteWriter, DecodeError

_DESCRIPTOR_MAGIC = 0x5844  # "XD"


@dataclass(frozen=True)
class ExperimentDescriptor:
    name: str
    controller_addr: int  # IPv4 of the experiment controller
    controller_port: int
    url: str  # human-readable description of the experiment
    experimenter_key_id: bytes  # hash of the key that signs the experiment

    def encode(self) -> bytes:
        writer = ByteWriter()
        writer.u16(_DESCRIPTOR_MAGIC)
        writer.str_u16(self.name)
        writer.u32(self.controller_addr)
        writer.u16(self.controller_port)
        writer.str_u16(self.url)
        writer.bytes_u16(self.experimenter_key_id)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "ExperimentDescriptor":
        reader = ByteReader(data)
        magic = reader.u16()
        if magic != _DESCRIPTOR_MAGIC:
            raise DecodeError(f"bad descriptor magic {magic:#x}")
        descriptor = cls(
            name=reader.str_u16(),
            controller_addr=reader.u32(),
            controller_port=reader.u16(),
            url=reader.str_u16(),
            experimenter_key_id=reader.bytes_u16(),
        )
        reader.expect_end()
        return descriptor

    def hash(self) -> bytes:
        """The hash that experiment certificates sign."""
        return object_hash(self.encode())
