"""Rendezvous: publish/subscribe experiment dissemination (§3.2)."""

from repro.rendezvous.descriptor import ExperimentDescriptor
from repro.rendezvous.server import RendezvousServer, StoredExperiment

__all__ = ["ExperimentDescriptor", "RendezvousServer", "StoredExperiment"]
