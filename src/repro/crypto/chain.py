"""Certificate chain verification (the Figure 1 authorization flow).

A chain is an ordered list of certificates plus the public keys needed to
check their signatures ("the experimenter includes the full certificate
chain and corresponding public keys", §3.3). Verification establishes:

1. the first certificate is signed by a key the verifier trusts,
2. every non-final certificate is a delegation whose subject is the key
   signing the next certificate,
3. the final certificate is an experiment certificate whose subject is the
   hash of the object being authorized (the experiment descriptor),
4. every certificate is currently valid,

and yields the effective restrictions: the tightest merge of every
certificate's limits, plus the list of *all* monitors in the chain (each of
which the endpoint enforces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.crypto.certificate import (
    CERT_EXPERIMENT,
    Certificate,
    Restrictions,
)
from repro.crypto.keys import KeyPair, key_id
from repro.util.byteio import ByteReader, ByteWriter, DecodeError


class ChainError(Exception):
    """Raised when a certificate chain fails verification."""


@dataclass(frozen=True)
class ChainResult:
    """Outcome of a successful chain verification."""

    restrictions: Restrictions
    monitors: tuple[bytes, ...]
    trust_anchor: bytes  # key id of the trusted root that anchored the chain
    depth: int


@dataclass
class CertificateChain:
    """Certificates (root first) plus the public keys they reference."""

    certificates: list[Certificate] = field(default_factory=list)
    public_keys: dict[bytes, bytes] = field(default_factory=dict)

    def add_key(self, public_key: bytes) -> None:
        self.public_keys[key_id(public_key)] = public_key

    def append(self, certificate: Certificate, signer_public_key: bytes) -> None:
        self.add_key(signer_public_key)
        self.certificates.append(certificate)

    # -- verification -------------------------------------------------------

    def verify(
        self,
        trusted_key_ids: Iterable[bytes],
        object_hash: bytes,
        now: float,
    ) -> ChainResult:
        """Verify the chain authorizes ``object_hash``; raises ChainError."""
        trusted = set(trusted_key_ids)
        if not self.certificates:
            raise ChainError("empty certificate chain")
        first = self.certificates[0]
        if first.signer_key_id not in trusted:
            raise ChainError("chain is not anchored in a trusted key")
        expected_signer = first.signer_key_id
        monitors: list[bytes] = []
        effective = Restrictions()
        for index, cert in enumerate(self.certificates):
            is_last = index == len(self.certificates) - 1
            if cert.signer_key_id != expected_signer:
                raise ChainError(
                    f"certificate {index} signed by unexpected key "
                    f"{cert.signer_key_id.hex()[:12]}"
                )
            public_key = self.public_keys.get(cert.signer_key_id)
            if public_key is None:
                raise ChainError(
                    f"missing public key for signer {cert.signer_key_id.hex()[:12]}"
                )
            if not cert.verify_with(public_key):
                raise ChainError(f"bad signature on certificate {index}")
            if not cert.restrictions.valid_at(now):
                raise ChainError(f"certificate {index} expired or not yet valid")
            if cert.restrictions.monitor is not None:
                monitors.append(cert.restrictions.monitor)
            effective = effective.merged_with(cert.restrictions)
            if is_last:
                if not cert.is_experiment:
                    raise ChainError("final certificate must be an experiment certificate")
                if cert.subject_hash != object_hash:
                    raise ChainError("final certificate does not sign this object")
            else:
                if not cert.is_delegation:
                    raise ChainError(
                        f"certificate {index} must be a delegation certificate"
                    )
                expected_signer = cert.subject_hash
        return ChainResult(
            restrictions=effective,
            monitors=tuple(monitors),
            trust_anchor=first.signer_key_id,
            depth=len(self.certificates),
        )

    # -- wire encoding -------------------------------------------------------

    def encode(self) -> bytes:
        writer = ByteWriter()
        writer.u8(len(self.certificates))
        for cert in self.certificates:
            writer.bytes_u32(cert.encode())
        writer.u8(len(self.public_keys))
        for public_key in self.public_keys.values():
            writer.bytes_u16(public_key)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "CertificateChain":
        reader = ByteReader(data)
        chain = cls()
        cert_count = reader.u8()
        for _ in range(cert_count):
            chain.certificates.append(Certificate.decode(reader.bytes_u32()))
        key_count = reader.u8()
        for _ in range(key_count):
            public_key = reader.bytes_u16()
            if len(public_key) != 32:
                raise DecodeError("bad public key length in chain")
            chain.add_key(public_key)
        reader.expect_end()
        return chain


def build_delegated_chain(
    operator: KeyPair,
    experimenter: KeyPair,
    descriptor_hash: bytes,
    delegation_restrictions: Optional[Restrictions] = None,
    experiment_restrictions: Optional[Restrictions] = None,
) -> CertificateChain:
    """The common two-link chain from Figure 1.

    The endpoint operator delegates to the experimenter's key (➌); the
    experimenter then signs an experiment certificate for the descriptor
    (➍). The resulting chain convinces any endpoint trusting ``operator``.
    """
    chain = CertificateChain()
    delegation = Certificate.delegate(
        operator, experimenter.public_key, delegation_restrictions
    )
    chain.append(delegation, operator.public_key)
    experiment = Certificate.issue(
        experimenter, CERT_EXPERIMENT, descriptor_hash, experiment_restrictions
    )
    chain.append(experiment, experimenter.public_key)
    return chain
