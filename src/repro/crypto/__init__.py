"""Certificates and delegation: PacketLab's access control (§3.3).

Built on a from-scratch pure-Python Ed25519 (RFC 8032). Public keys are
identified by their SHA-256 hash; certificates chain from an operator's
trusted key down to a specific experiment descriptor, carrying restrictions
(validity, monitors, buffer limits, priority caps) that endpoints enforce.
"""

from repro.crypto.certificate import (
    CERT_DELEGATION,
    CERT_EXPERIMENT,
    Certificate,
    CertificateError,
    Restrictions,
)
from repro.crypto.chain import (
    CertificateChain,
    ChainError,
    ChainResult,
    build_delegated_chain,
)
from repro.crypto.keys import KeyPair, key_id, object_hash, verify_signature

__all__ = [
    "CERT_DELEGATION",
    "CERT_EXPERIMENT",
    "Certificate",
    "CertificateChain",
    "CertificateError",
    "ChainError",
    "ChainResult",
    "KeyPair",
    "Restrictions",
    "build_delegated_chain",
    "key_id",
    "object_hash",
    "verify_signature",
]
