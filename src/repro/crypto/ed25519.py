"""Pure-Python Ed25519 (RFC 8032).

PacketLab's access control needs a digital signature scheme; the paper
specifies certificate *structure* (X.509-like, chainable) but not the
primitive. This is a from-scratch Ed25519 implementation over extended
twisted-Edwards coordinates — no external crypto packages.

Performance note: scalar multiplication uses a fixed 4-bit window; signing
a message takes ~1 ms of CPU in CPython, which is ample for certificate
workloads (see ``benchmarks/bench_m2_crypto.py``).
"""

from __future__ import annotations

import hashlib

# Field prime and group order.
Q = 2**255 - 19
L = 2**252 + 27742317777372353535851937790883648493

# Curve constant d = -121665/121666 mod q.
D = (-121665 * pow(121666, Q - 2, Q)) % Q

# sqrt(-1) mod q, used during point decompression.
SQRT_M1 = pow(2, (Q - 1) // 4, Q)

# Base point B (extended coordinates X, Y, Z, T).
_BY = (4 * pow(5, Q - 2, Q)) % Q
_BX = None  # computed below

SIGNATURE_SIZE = 64
PUBLIC_KEY_SIZE = 32
SEED_SIZE = 32


class SignatureError(Exception):
    """Raised when signature verification fails structurally."""


def _sha512(*parts: bytes) -> bytes:
    digest = hashlib.sha512()
    for part in parts:
        digest.update(part)
    return digest.digest()


def _recover_x(y: int, sign: int) -> int:
    """Solve x^2 = (y^2 - 1) / (d y^2 + 1) for x with the given sign bit."""
    if y >= Q:
        raise SignatureError("y coordinate out of range")
    x2 = (y * y - 1) * pow(D * y * y + 1, Q - 2, Q) % Q
    if x2 == 0:
        if sign:
            raise SignatureError("invalid point encoding")
        return 0
    x = pow(x2, (Q + 3) // 8, Q)
    if (x * x - x2) % Q != 0:
        x = x * SQRT_M1 % Q
    if (x * x - x2) % Q != 0:
        raise SignatureError("not a valid curve point")
    if (x & 1) != sign:
        x = Q - x
    return x


_BX = _recover_x(_BY, 0)

# Extended coordinates: (X, Y, Z, T) with x = X/Z, y = Y/Z, T = XY/Z.
_BASE = (_BX, _BY, 1, (_BX * _BY) % Q)
_IDENTITY = (0, 1, 1, 0)


def _point_add(p: tuple, q: tuple) -> tuple:
    """Add two points in extended coordinates (RFC 8032 formulas)."""
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % Q
    b = (y1 + x1) * (y2 + x2) % Q
    c = 2 * t1 * t2 * D % Q
    dd = 2 * z1 * z2 % Q
    e = b - a
    f = dd - c
    g = dd + c
    h = b + a
    return (e * f % Q, g * h % Q, f * g % Q, e * h % Q)


def _point_double(p: tuple) -> tuple:
    return _point_add(p, p)


def _scalar_mult(scalar: int, point: tuple) -> tuple:
    """Fixed 4-bit-window scalar multiplication."""
    scalar %= L
    if scalar == 0:
        return _IDENTITY
    # Precompute 0..15 multiples.
    table = [_IDENTITY, point]
    for _ in range(14):
        table.append(_point_add(table[-1], point))
    result = _IDENTITY
    started = False
    for shift in range((scalar.bit_length() + 3) // 4 * 4 - 4, -4, -4):
        if started:
            result = _point_double(result)
            result = _point_double(result)
            result = _point_double(result)
            result = _point_double(result)
        nibble = (scalar >> shift) & 0xF
        if nibble:
            result = _point_add(result, table[nibble])
            started = True
        elif started:
            pass
        else:
            continue
    return result


def _point_compress(p: tuple) -> bytes:
    x, y, z, _t = p
    zinv = pow(z, Q - 2, Q)
    x = x * zinv % Q
    y = y * zinv % Q
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _point_decompress(data: bytes) -> tuple:
    if len(data) != 32:
        raise SignatureError("point encoding must be 32 bytes")
    value = int.from_bytes(data, "little")
    sign = value >> 255
    y = value & ((1 << 255) - 1)
    x = _recover_x(y, sign)
    return (x, y, 1, (x * y) % Q)


def _points_equal(p: tuple, q: tuple) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % Q == 0 and (y1 * z2 - y2 * z1) % Q == 0


def _clamp(scalar_bytes: bytes) -> int:
    value = int.from_bytes(scalar_bytes, "little")
    value &= (1 << 254) - 8
    value |= 1 << 254
    return value


def public_key_from_seed(seed: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    if len(seed) != SEED_SIZE:
        raise ValueError(f"seed must be {SEED_SIZE} bytes, got {len(seed)}")
    h = _sha512(seed)
    a = _clamp(h[:32])
    return _point_compress(_scalar_mult(a, _BASE))


def sign(seed: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature."""
    if len(seed) != SEED_SIZE:
        raise ValueError(f"seed must be {SEED_SIZE} bytes, got {len(seed)}")
    h = _sha512(seed)
    a = _clamp(h[:32])
    prefix = h[32:]
    public = _point_compress(_scalar_mult(a, _BASE))
    r = int.from_bytes(_sha512(prefix, message), "little") % L
    big_r = _point_compress(_scalar_mult(r, _BASE))
    k = int.from_bytes(_sha512(big_r, public, message), "little") % L
    s = (r + k * a) % L
    return big_r + s.to_bytes(32, "little")


def verify(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Check an Ed25519 signature; returns False on any mismatch."""
    if len(public_key) != PUBLIC_KEY_SIZE or len(signature) != SIGNATURE_SIZE:
        return False
    try:
        a_point = _point_decompress(public_key)
        r_point = _point_decompress(signature[:32])
    except SignatureError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    k = int.from_bytes(_sha512(signature[:32], public_key, message), "little") % L
    # Check s*B == R + k*A.
    left = _scalar_mult(s, _BASE)
    right = _point_add(r_point, _scalar_mult(k, a_point))
    return _points_equal(left, right)
