"""PacketLab certificates.

Per §3.3: a certificate consists of a cryptographic hash of the signer
public key, a cryptographic hash of the signed object, an optional list of
restrictions, and a digital signature of the above. There are two kinds
sharing one format:

- **delegation certificates** sign another public key (its :func:`key_id`),
- **experiment certificates** sign an experiment descriptor (its hash).

Restrictions (all optional): validity period, experiment monitor (a
compiled filter-VM program), capture buffer space limit, and maximum
experiment priority.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.crypto import ed25519
from repro.crypto.keys import KEY_ID_SIZE, KeyPair, key_id, verify_signature
from repro.util.byteio import ByteReader, ByteWriter, DecodeError

CERT_DELEGATION = 1
CERT_EXPERIMENT = 2

_CERT_MAGIC = 0x504C  # "PL"
_CERT_VERSION = 1

# Restriction TLV tags.
_R_NOT_BEFORE = 1
_R_NOT_AFTER = 2
_R_MONITOR = 3
_R_BUFFER_LIMIT = 4
_R_MAX_PRIORITY = 5


class CertificateError(Exception):
    """Raised for malformed or invalid certificates."""


@dataclass(frozen=True)
class Restrictions:
    """Optional limits attached to a certificate (§3.3).

    ``not_before``/``not_after`` are wall-clock seconds (simulator time in
    this reproduction). ``monitor`` is a serialized filter-VM program
    enforced by the endpoint during the experiment. ``buffer_limit`` caps
    the endpoint capture buffer in bytes. ``max_priority`` caps the
    priority at which the experiment may run (contention, §3.3).
    """

    not_before: Optional[float] = None
    not_after: Optional[float] = None
    monitor: Optional[bytes] = None
    buffer_limit: Optional[int] = None
    max_priority: Optional[int] = None

    def is_empty(self) -> bool:
        return all(
            value is None
            for value in (
                self.not_before,
                self.not_after,
                self.monitor,
                self.buffer_limit,
                self.max_priority,
            )
        )

    def valid_at(self, now: float) -> bool:
        """Whether ``now`` falls inside the validity window.

        The window is ``[not_before, not_after)`` — inclusive start,
        exclusive end — so abutting certificates (one expiring exactly
        when the next begins) hand over without a shared valid instant
        or a gap, and the same rule applies at every link of a chain
        (:meth:`repro.crypto.chain.CertificateChain.verify`).
        """
        if self.not_before is not None and now < self.not_before:
            return False
        if self.not_after is not None and now >= self.not_after:
            return False
        return True

    def encode(self) -> bytes:
        writer = ByteWriter()
        entries: list[tuple[int, bytes]] = []
        if self.not_before is not None:
            entries.append((_R_NOT_BEFORE, ByteWriter().f64(self.not_before).getvalue()))
        if self.not_after is not None:
            entries.append((_R_NOT_AFTER, ByteWriter().f64(self.not_after).getvalue()))
        if self.monitor is not None:
            entries.append((_R_MONITOR, self.monitor))
        if self.buffer_limit is not None:
            entries.append((_R_BUFFER_LIMIT, ByteWriter().u64(self.buffer_limit).getvalue()))
        if self.max_priority is not None:
            entries.append((_R_MAX_PRIORITY, ByteWriter().u8(self.max_priority).getvalue()))
        writer.u8(len(entries))
        for tag, payload in entries:
            writer.u8(tag)
            writer.bytes_u32(payload)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> "Restrictions":
        count = reader.u8()
        values: dict[str, object] = {}
        for _ in range(count):
            tag = reader.u8()
            payload = reader.bytes_u32()
            sub = ByteReader(payload)
            if tag == _R_NOT_BEFORE:
                values["not_before"] = sub.f64()
            elif tag == _R_NOT_AFTER:
                values["not_after"] = sub.f64()
            elif tag == _R_MONITOR:
                values["monitor"] = payload
            elif tag == _R_BUFFER_LIMIT:
                values["buffer_limit"] = sub.u64()
            elif tag == _R_MAX_PRIORITY:
                values["max_priority"] = sub.u8()
            else:
                raise DecodeError(f"unknown restriction tag {tag}")
        return cls(**values)  # type: ignore[arg-type]

    def merged_with(self, other: "Restrictions") -> "Restrictions":
        """Combine two restriction sets, keeping the tightest of each.

        Monitors are *not* merged here — a chain can impose several
        monitors and the endpoint enforces all of them (see
        :class:`repro.crypto.chain.ChainResult`).
        """

        def tighter_min(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        def tighter_max(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return max(a, b)

        return Restrictions(
            not_before=tighter_max(self.not_before, other.not_before),
            not_after=tighter_min(self.not_after, other.not_after),
            monitor=None,
            buffer_limit=tighter_min(self.buffer_limit, other.buffer_limit),
            max_priority=tighter_min(self.max_priority, other.max_priority),
        )


@dataclass(frozen=True)
class Certificate:
    """A signed statement: "signer authorizes subject (with restrictions)"."""

    cert_type: int
    signer_key_id: bytes
    subject_hash: bytes
    restrictions: Restrictions
    signature: bytes

    def signing_payload(self) -> bytes:
        writer = ByteWriter()
        writer.u16(_CERT_MAGIC)
        writer.u8(_CERT_VERSION)
        writer.u8(self.cert_type)
        writer.raw(self.signer_key_id)
        writer.raw(self.subject_hash)
        writer.raw(self.restrictions.encode())
        return writer.getvalue()

    def encode(self) -> bytes:
        return self.signing_payload() + self.signature

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        reader = ByteReader(data)
        magic = reader.u16()
        if magic != _CERT_MAGIC:
            raise DecodeError(f"bad certificate magic {magic:#x}")
        version = reader.u8()
        if version != _CERT_VERSION:
            raise DecodeError(f"unsupported certificate version {version}")
        cert_type = reader.u8()
        if cert_type not in (CERT_DELEGATION, CERT_EXPERIMENT):
            raise DecodeError(f"unknown certificate type {cert_type}")
        signer_key_id = reader.raw(KEY_ID_SIZE)
        subject_hash = reader.raw(KEY_ID_SIZE)
        restrictions = Restrictions.decode(reader)
        signature = reader.raw(ed25519.SIGNATURE_SIZE)
        reader.expect_end()
        return cls(
            cert_type=cert_type,
            signer_key_id=signer_key_id,
            subject_hash=subject_hash,
            restrictions=restrictions,
            signature=signature,
        )

    @classmethod
    def issue(
        cls,
        signer: KeyPair,
        cert_type: int,
        subject_hash: bytes,
        restrictions: Optional[Restrictions] = None,
    ) -> "Certificate":
        """Create and sign a certificate."""
        if cert_type not in (CERT_DELEGATION, CERT_EXPERIMENT):
            raise CertificateError(f"unknown certificate type {cert_type}")
        if len(subject_hash) != KEY_ID_SIZE:
            raise CertificateError(
                f"subject hash must be {KEY_ID_SIZE} bytes, got {len(subject_hash)}"
            )
        unsigned = cls(
            cert_type=cert_type,
            signer_key_id=signer.key_id,
            subject_hash=subject_hash,
            restrictions=restrictions or Restrictions(),
            signature=b"\x00" * ed25519.SIGNATURE_SIZE,
        )
        signature = signer.sign(unsigned.signing_payload())
        return replace(unsigned, signature=signature)

    @classmethod
    def delegate(
        cls,
        signer: KeyPair,
        delegate_public_key: bytes,
        restrictions: Optional[Restrictions] = None,
    ) -> "Certificate":
        """Delegation certificate: the signed object is another public key."""
        return cls.issue(
            signer, CERT_DELEGATION, key_id(delegate_public_key), restrictions
        )

    def verify_with(self, public_key: bytes) -> bool:
        """Check the signature and that the key matches ``signer_key_id``."""
        if key_id(public_key) != self.signer_key_id:
            return False
        return verify_signature(public_key, self.signing_payload(), self.signature)

    @property
    def is_delegation(self) -> bool:
        return self.cert_type == CERT_DELEGATION

    @property
    def is_experiment(self) -> bool:
        return self.cert_type == CERT_EXPERIMENT
