"""Key pairs and key identity.

Following the paper (§3.3): "Public keys are identified by their hash
value." A :class:`KeyId` is the SHA-256 hash of the 32-byte public key, and
it is what appears in certificates, rendezvous channels, and endpoint trust
stores.
"""

from __future__ import annotations

import hashlib
import os
from random import Random
from typing import Optional

from repro.crypto import ed25519

KEY_ID_SIZE = 32


def key_id(public_key: bytes) -> bytes:
    """The identity of a public key: SHA-256 of its encoding."""
    if len(public_key) != ed25519.PUBLIC_KEY_SIZE:
        raise ValueError(f"public key must be {ed25519.PUBLIC_KEY_SIZE} bytes")
    return hashlib.sha256(public_key).digest()


def object_hash(data: bytes) -> bytes:
    """The hash used to identify signed objects (descriptors, keys)."""
    return hashlib.sha256(data).digest()


class KeyPair:
    """An Ed25519 key pair with its derived identity."""

    def __init__(self, seed: bytes) -> None:
        if len(seed) != ed25519.SEED_SIZE:
            raise ValueError(f"seed must be {ed25519.SEED_SIZE} bytes")
        self._seed = seed
        self.public_key = ed25519.public_key_from_seed(seed)
        self.key_id = key_id(self.public_key)

    @classmethod
    def generate(cls, rng: Optional[Random] = None) -> "KeyPair":
        """Mint a fresh key pair.

        Production keygen draws real OS entropy (keys must be
        unpredictable; this module is simlint's crypto whitelist for
        exactly that reason). Tests and benchmarks pass a seeded
        ``random.Random`` instead so same-seed fleets mint identical
        key ids.
        """
        if rng is not None:
            return cls(rng.randbytes(ed25519.SEED_SIZE))
        return cls(os.urandom(ed25519.SEED_SIZE))

    @classmethod
    def from_name(cls, name: str) -> "KeyPair":
        """Deterministic key pair derived from a label (tests, examples).

        Not for real-world use — convenient for reproducible scenarios.
        """
        return cls(hashlib.sha256(b"packetlab-repro-key:" + name.encode()).digest())

    def sign(self, message: bytes) -> bytes:
        return ed25519.sign(self._seed, message)

    def __repr__(self) -> str:
        return f"<KeyPair {self.key_id.hex()[:12]}>"


# Verification outcomes memoized by digest of (key, message, signature).
# Pure-Python ed25519 verification costs milliseconds, and fleet campaigns
# verify the *same* experimenter certificate chain once per endpoint —
# 10k endpoints would otherwise redo identical big-integer math 10k times.
# Keyed by hash (not the raw triple) to keep entries small; bounded so
# adversarial fuzz inputs cannot grow it without limit.
_VERIFY_CACHE: dict[bytes, bool] = {}
_VERIFY_CACHE_MAX = 4096


def verify_signature(public_key: bytes, message: bytes, signature: bytes) -> bool:
    digest = hashlib.sha256(
        b"%d:%d:" % (len(public_key), len(message))
        + public_key + message + signature
    ).digest()
    cached = _VERIFY_CACHE.get(digest)
    if cached is not None:
        return cached
    result = ed25519.verify(public_key, message, signature)
    if len(_VERIFY_CACHE) >= _VERIFY_CACHE_MAX:
        _VERIFY_CACHE.clear()
    _VERIFY_CACHE[digest] = result
    return result
