"""Heartbeat liveness: drain churning endpoints before RPCs fail on them.

Endpoints beacon :class:`~repro.proto.messages.RdzHeartbeat` frames on
their open rendezvous subscription stream (one small frame per interval,
no extra connection — the shard is infrastructure the endpoint already
talks to, §3.2). Each shard keeps a
:class:`~repro.rendezvous.server.HeartbeatRecord` per endpoint;
:meth:`~repro.fleet.shard.ShardedRendezvous.liveness` merges them.

The controller side closes the loop: a :class:`HeartbeatMonitor` sweeps
the merged registry every ``interval`` simulated seconds and compares
each pooled endpoint's freshness (time since its latest beacon, or since
adoption if it never beaconed) against two thresholds:

- ``stale_after``: the endpoint is presumed churning — the pool drains
  it (no new work; in-flight jobs finish or fail on their own). If a
  fresh beacon arrives later, the endpoint is undrained and takes work
  again.
- ``depart_after``: the endpoint is presumed gone — the pool removes it,
  pinned jobs targeting it fail fast (``ENDPOINT_DEPARTED``), and a
  rejoin is handled as a fresh adoption.

Sweeps iterate endpoints in sorted name order and all timing comes from
the simulator clock, so monitored campaigns stay byte-identical across
same-seed runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Protocol

if TYPE_CHECKING:
    from repro.fleet.pool import EndpointPool


class LivenessSource(Protocol):
    """Anything exposing a merged name -> HeartbeatRecord view."""

    def liveness(self) -> dict: ...


class HeartbeatMonitor:
    """Sweeps shard liveness into pool drain/undrain/remove decisions."""

    def __init__(
        self,
        pool: "EndpointPool",
        source: LivenessSource,
        interval: float = 5.0,
        stale_after: float = 15.0,
        depart_after: float = 60.0,
    ) -> None:
        if stale_after <= 0 or depart_after <= stale_after:
            raise ValueError(
                "need 0 < stale_after < depart_after "
                f"(got {stale_after=} {depart_after=})"
            )
        self.pool = pool
        self.source = source
        self.interval = interval
        self.stale_after = stale_after
        self.depart_after = depart_after
        self.sim = pool.sim
        self._obs = pool.sim.obs
        self._proc = None
        self.sweeps = 0
        self.drained = 0
        self.undrained = 0
        self.removed = 0

    # -- process plumbing -----------------------------------------------------

    def start(self) -> "HeartbeatMonitor":
        if self._proc is None:
            self._proc = self.sim.spawn(
                self._sweep_loop(), name="heartbeat-monitor"
            )
        return self

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def _sweep_loop(self) -> Generator:
        while True:
            yield self.interval
            self.sweep()

    # -- the decision procedure -----------------------------------------------

    @staticmethod
    def _freshness_base(pooled, record) -> float:
        """Latest proof of life: newest beacon, else adoption time."""
        if record is None:
            return pooled.adopted_at
        # An endpoint adopted after its last beacon (e.g. rejoined while
        # the registry still holds the pre-crash record) is as fresh as
        # its adoption.
        return max(record.last_seen, pooled.adopted_at)

    def sweep(self, records: Optional[dict] = None) -> None:
        """One pass: drain the stale, undrain the fresh, remove the gone."""
        from repro.fleet.pool import ACTIVE, DRAINING

        self.sweeps += 1
        now = self.sim.now
        if records is None:
            records = self.source.liveness()
        # Sorted for determinism; list() because removal mutates the dict.
        for name in sorted(self.pool.endpoints):
            pooled = self.pool.endpoints.get(name)
            if pooled is None:
                continue
            age = now - self._freshness_base(pooled, records.get(name))
            if age > self.depart_after:
                if self.pool.remove(name, reason="heartbeat-departed"):
                    self.removed += 1
            elif age > self.stale_after:
                if pooled.state == ACTIVE and self.pool.drain(
                    name, reason="stale-heartbeat"
                ):
                    self.drained += 1
            elif pooled.state == DRAINING:
                if self.pool.undrain(name, reason="heartbeat-fresh"):
                    self.undrained += 1
        if self._obs.enabled:
            self._obs.counter("fleet.heartbeat_sweeps").inc()

    def describe(self) -> str:
        return (
            f"heartbeat-monitor: sweeps={self.sweeps} drained={self.drained} "
            f"undrained={self.undrained} removed={self.removed} "
            f"(interval={self.interval:g}s stale>{self.stale_after:g}s "
            f"depart>{self.depart_after:g}s)"
        )
