"""Fleet testbed: a campaign-scale PacketLab deployment in one object.

Where :class:`repro.core.testbed.Testbed` wires the paper's Figure 1
cast once (one endpoint, one controller), a :class:`FleetTestbed` wires
it at fleet scale:

- a :func:`~repro.netsim.topology.fleet_topology` network with N
  endpoint hosts (star/tree/mesh),
- K operator keys with endpoints partitioned among them (so channel
  sharding has real structure),
- a :class:`~repro.fleet.shard.ShardedRendezvous` of one or more
  rendezvous servers,
- one controller host running the campaign's
  :class:`~repro.controller.client.ControllerServer`,
- an :class:`~repro.fleet.pool.EndpointPool` +
  :class:`~repro.fleet.scheduler.CampaignScheduler` to drive jobs.

``run_campaign`` performs the whole Figure 1 workflow end to end:
publish to every shard, subscribe every endpoint at its shard, wait for
the pool to populate from inbound sessions, schedule the jobs, and tear
everything down — returning a deterministic
:class:`~repro.fleet.scheduler.CampaignReport`.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.controller.client import ControllerServer, SessionBudget
from repro.controller.session import Experimenter
from repro.crypto.certificate import Restrictions
from repro.crypto.keys import KeyPair
from repro.endpoint.config import EndpointConfig
from repro.endpoint.endpoint import Endpoint
from repro.fleet.aggregate import ResultAggregator
from repro.fleet.heartbeat import HeartbeatMonitor
from repro.fleet.pool import EndpointPool, MisbehaviorPolicy
from repro.fleet.scheduler import (
    CampaignContext,
    CampaignJob,
    CampaignReport,
    CampaignScheduler,
    CrossValidation,
)
from repro.fleet.shard import ShardedRendezvous, subscribe_endpoint
from repro.netsim.kernel import EventScheduler, Simulator
from repro.netsim.topology import Network, fleet_topology
from repro.rendezvous.descriptor import ExperimentDescriptor
from repro.rendezvous.server import RendezvousServer
from repro.util.retry import RetryPolicy

DEFAULT_FLEET_PORT = 7000


class FleetTestbed:
    """N endpoints, K rendezvous shards, one campaign controller."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        endpoint_count: int = 20,
        topology: str = "star",
        shards: int = 1,
        operator_count: int = 1,
        seed: int = 0,
        fanout: int = 8,
        access_bandwidth_bps: float = 10e6,
        access_delay: float = 0.010,
        access_delay_spread: float = 0.5,
        allow_raw: bool = True,
        capture_buffer_bytes: int = 64 * 1024,
        endpoint_reconnect: bool = True,
        scheduler: "str | EventScheduler | None" = None,
        heartbeat_interval: float = 0.0,
    ) -> None:
        if operator_count < 1 or operator_count > endpoint_count:
            operator_count = max(1, min(operator_count, endpoint_count))
        self.seed = seed
        net, endpoint_hosts, controller_host, target_host = fleet_topology(
            endpoint_count,
            kind=topology,
            fanout=fanout,
            access_bandwidth_bps=access_bandwidth_bps,
            access_delay=access_delay,
            access_delay_spread=access_delay_spread,
            seed=seed,
            network=Network(Simulator(scheduler=scheduler)),
        )
        self.net = net
        self.sim = net.sim
        self.endpoint_hosts = endpoint_hosts
        self.controller_host = controller_host
        self.target_host = target_host

        # Figure 1 cast, pluralized.
        self.operators = [
            KeyPair.from_name(f"fleet-operator-{index}")
            for index in range(operator_count)
        ]
        self.rendezvous_operator = KeyPair.from_name("fleet-rdz-operator")
        self.experimenter = Experimenter("fleet-experimenter")
        for operator in self.operators:
            self.experimenter.granted_endpoint_access(operator)
        self.experimenter.granted_publish_access(self.rendezvous_operator)

        self.heartbeat_interval = heartbeat_interval
        self.endpoints: list[Endpoint] = []
        for index, host in enumerate(endpoint_hosts):
            operator = self.operators[index % operator_count]
            config = EndpointConfig(
                name=f"ep{index}",
                trusted_key_ids=[operator.key_id],
                capture_buffer_bytes=capture_buffer_bytes,
                allow_raw=allow_raw,
                reconnect=endpoint_reconnect,
                heartbeat_interval=heartbeat_interval,
            )
            self.endpoints.append(Endpoint(host, config))

        self._used_ports: set[tuple[str, int]] = set()
        self._next_port = DEFAULT_FLEET_PORT
        self.rendezvous = ShardedRendezvous([
            RendezvousServer(
                controller_host,
                self.allocate_port(),
                trusted_publisher_key_ids=[self.rendezvous_operator.key_id],
            )
            for _ in range(max(1, shards))
        ])

    # -- ports ---------------------------------------------------------------

    def allocate_port(self, host: Optional[object] = None) -> int:
        """Next unused port on the controller host (collision-free even
        with many controllers and rendezvous shards coexisting)."""
        name = getattr(host, "name", None) or self.controller_host.name
        while (name, self._next_port) in self._used_ports:
            self._next_port += 1
        port = self._next_port
        self._used_ports.add((name, port))
        self._next_port += 1
        return port

    # -- components ----------------------------------------------------------

    @property
    def target_address(self) -> int:
        return self.target_host.primary_address()

    def enable_telemetry(self, ring_capacity: Optional[int] = None):
        obs = self.sim.obs
        obs.enabled = True
        return obs.ensure_ring_sink(ring_capacity)

    def make_controller(
        self,
        experiment_name: str = "campaign",
        priority: int = 0,
        port: Optional[int] = None,
        experiment_restrictions: Optional[Restrictions] = None,
        experimenter: Optional[Experimenter] = None,
        rpc_timeout: Optional[float] = None,
        session_budget: Optional[SessionBudget] = None,
    ) -> tuple[ControllerServer, ExperimentDescriptor]:
        who = experimenter or self.experimenter
        port = port or self.allocate_port()
        descriptor = who.make_descriptor(
            self.controller_host, port, experiment_name
        )
        identity = who.identity(
            descriptor,
            priority=priority,
            experiment_restrictions=experiment_restrictions,
        )
        server = ControllerServer(
            self.controller_host, port, identity, rpc_timeout=rpc_timeout,
            budget=session_budget,
        ).start()
        return server, descriptor

    def subscribe_fleet(self) -> None:
        """Point every endpoint at its rendezvous shard(s)."""
        for endpoint in self.endpoints:
            subscribe_endpoint(endpoint, self.rendezvous)

    # -- the campaign driver ---------------------------------------------------

    def run_campaign(
        self,
        jobs: list[CampaignJob],
        campaign_name: str = "campaign",
        max_concurrency: int = 16,
        rate: Optional[float] = None,
        burst: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
        pool_policy: Optional[RetryPolicy] = None,
        priority: int = 0,
        rpc_timeout: Optional[float] = 5.0,
        max_concurrent_per_endpoint: int = 1,
        quarantine_after: Optional[int] = None,
        quarantine_backoff: Optional[RetryPolicy] = None,
        reacquire_timeout: float = 30.0,
        populate_count: Optional[int] = None,
        populate_timeout: float = 120.0,
        timeout: float = 3600.0,
        experiment_restrictions: Optional[Restrictions] = None,
        heartbeat_stale_after: Optional[float] = None,
        heartbeat_depart_after: Optional[float] = None,
        heartbeat_sweep_interval: Optional[float] = None,
        session_budget: Optional[SessionBudget] = None,
        misbehavior: Optional[MisbehaviorPolicy] = None,
        cross_validate: Optional[CrossValidation] = None,
        warehouse: Optional[object] = None,
        warehouse_events: bool = False,
        warehouse_segment_rows: Optional[int] = None,
    ) -> CampaignReport:
        """Publish, subscribe, populate, schedule, tear down — one call.

        Deterministic: the same constructor seed and job list yield an
        identical schedule and a byte-identical ``report.to_json()``.

        When the fleet was built with ``heartbeat_interval`` > 0, a
        :class:`~repro.fleet.heartbeat.HeartbeatMonitor` runs alongside
        the scheduler: stale endpoints are drained before RPCs fail on
        them (default threshold 3 beacon intervals) and long-silent ones
        are removed (default 10 intervals).

        Byzantine containment is opt-in: ``session_budget`` arms
        per-session resource budgets on every handle, ``misbehavior``
        turns endpoint-level scoring/quarantine/departure on, and
        ``cross_validate`` re-runs a seeded sample of jobs redundantly
        to catch fabricated results.

        Persistence is opt-in too: pass ``warehouse`` (a
        :class:`~repro.warehouse.segments.Warehouse` or a directory
        path) and every job completion is teed — per-job ``results``
        rows, raw ``samples`` values, the campaign summary, and
        materialized rollups — into an immutable columnar campaign,
        committed atomically after the run. ``warehouse_events=True``
        additionally captures the obs event stream (enabling telemetry
        if needed) into the ``events`` table. All persisted bytes are a
        pure function of the seed: same-seed campaigns produce
        byte-identical segments.
        """
        store = None
        aggregator = ResultAggregator(campaign=campaign_name)
        if warehouse is not None:
            from repro.warehouse import RecordingAggregator, Warehouse

            store = (warehouse if isinstance(warehouse, Warehouse)
                     else Warehouse(str(warehouse)))
            aggregator = RecordingAggregator(
                campaign=campaign_name, time_fn=lambda: self.sim.now
            )
        event_ring = None
        if store is not None and warehouse_events:
            event_ring = self.enable_telemetry()
        self.rendezvous.start()
        server, descriptor = self.make_controller(
            campaign_name,
            priority=priority,
            rpc_timeout=rpc_timeout,
            experiment_restrictions=experiment_restrictions,
            session_budget=session_budget,
        )
        pool = EndpointPool(
            server,
            policy=pool_policy,
            seed=self.seed,
            max_concurrent_per_endpoint=max_concurrent_per_endpoint,
            quarantine_after=quarantine_after,
            quarantine_backoff=quarantine_backoff,
            reacquire_timeout=reacquire_timeout,
            misbehavior=misbehavior,
        )
        if misbehavior is not None:
            server.on_auth_fail = (
                lambda name, reason: pool.report_misbehavior(
                    name, "auth-failure", detail=reason
                )
            )
        monitor: Optional[HeartbeatMonitor] = None
        if self.heartbeat_interval > 0:
            beat = self.heartbeat_interval
            monitor = HeartbeatMonitor(
                pool,
                self.rendezvous,
                interval=heartbeat_sweep_interval or beat,
                stale_after=heartbeat_stale_after or 3.0 * beat,
                depart_after=heartbeat_depart_after or 10.0 * beat,
            )
        context = CampaignContext(
            sim=self.sim,
            controller_host=self.controller_host,
            target_address=self.target_address,
            allocate_port=self.allocate_port,
        )
        scheduler = CampaignScheduler(
            pool,
            jobs,
            name=campaign_name,
            max_concurrency=max_concurrency,
            rate=rate,
            burst=burst,
            retry_policy=retry_policy,
            seed=self.seed,
            context=context,
            aggregator=aggregator,
            cross_validate=cross_validate,
        )
        want = populate_count if populate_count is not None \
            else len(self.endpoints)

        def driver() -> Generator:
            results = yield from self.rendezvous.publish(
                self.experimenter, self.controller_host, descriptor,
                experiment_restrictions=experiment_restrictions,
            )
            rejected = {idx: reason for idx, (ok, reason) in results.items()
                        if not ok}
            if rejected:
                raise RuntimeError(f"publish rejected by shards: {rejected}")
            self.subscribe_fleet()
            yield from pool.populate(want, timeout=populate_timeout)
            if monitor is not None:
                monitor.start()
            report = yield from scheduler.run()
            return report

        try:
            report = self.sim.run_process(
                driver(), name=f"campaign-{campaign_name}", timeout=timeout,
                # Heartbeat publishers never drain the event queue; stop
                # the run when the campaign driver itself completes.
                halt_on_completion=True,
            )
        finally:
            if monitor is not None:
                monitor.stop()
            pool.shutdown()
            server.stop()
            self.rendezvous.stop()
        if store is not None:
            from repro.warehouse import persist_campaign

            persist_kwargs = {}
            if warehouse_segment_rows is not None:
                persist_kwargs["segment_rows"] = warehouse_segment_rows
            persist_campaign(
                store, report,
                events=(event_ring.events() if event_ring is not None
                        else None),
                **persist_kwargs,
            )
        return report

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)
