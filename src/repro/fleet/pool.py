"""Endpoint pool: the fleet-side view of accepted controller sessions.

A campaign runs one :class:`~repro.controller.client.ControllerServer`;
endpoints discovered through (sharded) rendezvous dial in and land on
the server's accepted queue. The pool's router drains that queue and
keys each session by endpoint name:

- the first session from an endpoint is adopted into a
  :class:`PooledEndpoint` and wrapped in a
  :class:`~repro.controller.recovery.ResilientHandle` whose reconnect
  source is the endpoint's *own* per-name queue — with hundreds of
  endpoints sharing one server, a recovering handle must never adopt
  some other endpoint's fresh session;
- later sessions from the same endpoint are routed to that queue, where
  the resilient handle's reacquire loop finds them.

Handles are reused across jobs (sessions are expensive: TCP + Hello/Auth
+ chain verification), so a 200-job campaign over 200 endpoints performs
exactly 200 handshakes, not 400.

Lifecycle: real fleets churn, so pooled endpoints move through an
explicit state machine instead of a pair of one-way booleans::

          adopt                    readmit (backoff timer)
    (new) -----> ACTIVE <---------------------------- QUARANTINED
                 |  ^                                     ^
           drain |  | undrain (fresh heartbeat)           | repeated
                 v  |                                     | job failures
              DRAINING                                ACTIVE
                 |
                 | departed / handle gone / removed
                 v
              DEPARTED (popped from the pool; rejoining re-adopts)

- **ACTIVE** endpoints take work subject to their concurrency cap.
- **DRAINING** endpoints take no *new* work (in-flight jobs finish or
  fail on their own); a :class:`~repro.fleet.heartbeat.HeartbeatMonitor`
  drains endpoints whose liveness beacons go stale — before an RPC ever
  has to time out on them — and undrains them if beacons resume.
- **QUARANTINED** endpoints failed too many jobs; readmission is
  automatic after an exponential backoff (each quarantine doubles the
  penalty), so a transient fault burst no longer starves the fleet
  forever.
- **DEPARTED** endpoints are removed from the pool entirely. A pinned
  job targeting one fails fast (``can_ever_run`` is False); an endpoint
  that rejoins later is adopted from scratch.

Every transition is deterministic (backoff jitter comes from a seeded
RNG, timing from the simulator clock) and reported through ``on_change``
so a blocked scheduler wakes the moment dispatchability shifts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Callable, Generator, Optional
from zlib import crc32

from repro.controller.recovery import ResilientHandle
from repro.netsim.kernel import Queue, any_of
from repro.util.retry import RetryPolicy

if TYPE_CHECKING:
    from repro.controller.client import ControllerServer, EndpointHandle

# PooledEndpoint lifecycle states.
ACTIVE = "active"
DRAINING = "draining"
QUARANTINED = "quarantined"
DEPARTED = "departed"

# Default readmission schedule: 5 s after the first quarantine, doubling
# per repeat, capped at 5 minutes. ``max_attempts`` is irrelevant here —
# readmission always happens — but RetryPolicy validates it, so give it
# a value documenting "the schedule stops growing after 8 doublings".
DEFAULT_QUARANTINE_BACKOFF = RetryPolicy(
    max_attempts=8, base_delay=5.0, max_delay=300.0, multiplier=2.0,
    jitter=0.1,
)

# Default offence weights: how strongly each misbehavior kind moves an
# endpoint's score. Kinds are the statemachine/budget vocabulary plus
# the fleet-level detectors (result-mismatch, auth-failure, job-failure).
DEFAULT_MISBEHAVIOR_WEIGHTS: dict[str, float] = {
    "sequence-violation": 1.0,
    "decode-error": 1.0,
    "stream-overflow": 3.0,
    "rpc-stalled": 3.0,
    "violation-budget": 3.0,
    "decode-budget": 3.0,
    "budget-exhausted": 3.0,
    "silent-abandon": 1.0,
    "result-mismatch": 4.0,
    "auth-failure": 2.0,
    "job-failure": 0.5,
    # One unanswered command. Callers often absorb RpcTimeout into a
    # partial result the job still completes with, so timeouts are
    # harvested from the handle directly — otherwise a stall adversary
    # that only eats probes mid-run leaves no scored evidence at all.
    "rpc-timeout": 0.5,
}


@dataclass
class MisbehaviorPolicy:
    """Scoring rules turning per-session evidence into pool consequences.

    Scores decay exponentially with simulated time (``half_life``), so a
    burst of old offences is eventually forgiven, while an endpoint that
    keeps offending ratchets upward.  Crossing ``quarantine_score``
    sends an ACTIVE endpoint through the existing quarantine/backoff
    machinery (repeat offenders back off harder, exactly like repeat
    job-failers); crossing ``depart_score`` removes it permanently.
    """

    weights: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_MISBEHAVIOR_WEIGHTS)
    )
    default_weight: float = 1.0
    half_life: float = 60.0
    quarantine_score: float = 5.0
    depart_score: float = 20.0


class PoolError(Exception):
    """Raised when the pool cannot satisfy a population/acquire request."""


class PooledEndpoint:
    """One fleet endpoint: its resilient handle plus scheduling state."""

    __slots__ = (
        "name", "handle", "queue", "max_concurrent", "inflight",
        "jobs_completed", "failures", "state", "quarantines", "drains",
        "adopted_at", "deferred_reported", "_avail_queued",
        "_readmit_timer", "score", "score_at", "violations_reported",
        "exhaustions_reported", "abandons_reported", "timeouts_reported",
    )

    def __init__(self, name: str, queue: Queue,
                 max_concurrent: int = 1) -> None:
        self.name = name
        self.handle: Optional[ResilientHandle] = None
        self.queue = queue
        self.max_concurrent = max_concurrent
        self.inflight = 0
        self.jobs_completed = 0
        self.failures = 0
        self.state = ACTIVE
        self.quarantines = 0  # lifetime count; drives the backoff exponent
        self.drains = 0
        self.adopted_at = 0.0  # liveness baseline until the first beacon
        # How many of handle.deferred_errors have already been folded
        # into campaign results (late nsend_nowait failures).
        self.deferred_reported = 0
        # True while this endpoint's name sits in the pool's availability
        # heap (entries are invalidated lazily, not removed).
        self._avail_queued = False
        # Armed while quarantined: the pending readmission timer.
        self._readmit_timer = None
        # Misbehavior scoring state: current decayed score and the sim
        # time it was last decayed to.
        self.score = 0.0
        self.score_at = 0.0
        # High-water marks of handle evidence already folded into
        # scoring (violations / budget exhaustions / silent abandons),
        # so each offence is scored exactly once.
        self.violations_reported = 0
        self.exhaustions_reported = 0
        self.abandons_reported = 0
        self.timeouts_reported = 0

    @property
    def quarantined(self) -> bool:
        return self.state == QUARANTINED

    @property
    def available(self) -> bool:
        return (
            self.handle is not None
            and self.state == ACTIVE
            and self.inflight < self.max_concurrent
        )


class EndpointPool:
    """Routes accepted sessions into named, reusable endpoint slots."""

    def __init__(
        self,
        server: "ControllerServer",
        policy: Optional["RetryPolicy"] = None,
        seed: int = 0,
        max_concurrent_per_endpoint: int = 1,
        quarantine_after: Optional[int] = None,
        quarantine_backoff: Optional["RetryPolicy"] = None,
        reacquire_timeout: float = 30.0,
        misbehavior: Optional[MisbehaviorPolicy] = None,
    ) -> None:
        self.server = server
        self.sim = server.node.sim
        self.policy = policy
        self.seed = seed
        self.max_concurrent_per_endpoint = max_concurrent_per_endpoint
        # How long a handle waits for its endpoint to re-dial before
        # giving up (-> removal). Churn-heavy campaigns set this low so
        # stuck jobs fail over to alternates instead of riding out the
        # endpoint's downtime; the endpoint is re-adopted when it
        # rejoins.
        self.reacquire_timeout = reacquire_timeout
        # After this many job failures an endpoint stops receiving
        # unpinned work (None = never quarantine) — until the backoff
        # readmission timer returns it to service.
        self.quarantine_after = quarantine_after
        self.quarantine_backoff = quarantine_backoff or \
            DEFAULT_QUARANTINE_BACKOFF
        # None disables misbehavior scoring entirely (the default —
        # honest-but-faulty fleets should not be penalized for churn).
        self.misbehavior = misbehavior
        # Lifetime evidence, surviving departure/readoption: undecayed
        # score totals and per-kind offence counts per endpoint name.
        self.misbehavior_totals: dict[str, float] = {}
        self.offense_log: dict[str, dict[str, int]] = {}
        # Names removed for crossing depart_score (chronic offenders).
        # `banned` makes the departure permanent: unlike ordinary churn
        # departure, a banned endpoint re-dialing is turned away at
        # adoption instead of rejoining with a clean slate.
        self.misbehavior_departed: list[str] = []
        self.banned: set[str] = set()
        self.endpoints: dict[str, PooledEndpoint] = {}
        # Names removed from the pool (crashed with no return, handle
        # gave up, operator withdrew). A rejoining endpoint is adopted
        # fresh and leaves this set again.
        self.departed: set[str] = set()
        # Min-heap of names with (possibly stale) free capacity: popping
        # the smallest name reproduces the old sorted-scan dispatch order
        # without an O(N log N) sort per acquire. Entries are checked
        # against the live `available` flag on pop.
        self._avail: list[str] = []
        # Endpoints currently eligible for unpinned work (ACTIVE state) —
        # keeps the common can_ever_run(None) probe O(1). Symmetric
        # across every transition: adopt/readmit/undrain increment,
        # quarantine/drain/remove decrement.
        self._usable = 0
        self._draining = 0
        self._pending_readmissions = 0
        # Seeded independently of the per-endpoint handles so backoff
        # jitter never perturbs their recovery schedules.
        self._rng = Random((seed << 1) ^ 0x9E3779B9)
        # Fired (no args) whenever dispatchability may have changed:
        # adoption, readmission, undrain, drain, removal. A scheduler
        # blocked on its wake queue hooks this to re-examine the pool.
        self.on_change: Optional[Callable[[], None]] = None
        self._obs = self.sim.obs
        self._router_proc = None
        self._population_event = None
        self._population_target = 0

    # -- adoption -------------------------------------------------------------

    def start(self) -> "EndpointPool":
        if self._router_proc is None:
            self._router_proc = self.sim.spawn(
                self._router(), name="pool-router"
            )
        return self

    def _router(self) -> Generator:
        while True:
            handle = yield self.server.wait_endpoint()
            self._adopt(handle)

    def _adopt(self, raw: "EndpointHandle") -> None:
        name = raw.endpoint_name
        if name in self.banned:
            # Departed for chronic misbehavior: permanently unwelcome.
            raw.bye()
            if self._obs.enabled:
                self._obs.counter("fleet.banned_rejected").inc()
                self._obs.emit("fleet", "banned-rejected", endpoint=name)
            return
        pooled = self.endpoints.get(name)
        if pooled is None:
            pooled = PooledEndpoint(
                name,
                self.sim.queue(name=f"pool-{name}"),
                max_concurrent=self.max_concurrent_per_endpoint,
            )
            pooled.handle = ResilientHandle(
                self.server,
                raw,
                policy=self.policy,
                seed=(self.seed << 16) ^ crc32(name.encode()),
                reacquire_timeout=self.reacquire_timeout,
                endpoints_queue=pooled.queue,
            )
            pooled.handle.on_gone = self._handle_gone
            pooled.adopted_at = self.sim.now
            self.endpoints[name] = pooled
            self.departed.discard(name)
            self._usable += 1
            self._mark_available(pooled)
            if self._obs.enabled:
                self._obs.counter("fleet.endpoints_adopted").inc()
                self._obs.gauge("fleet.pool_size").set(len(self.endpoints))
                self._obs.emit("fleet", "endpoint-adopted", endpoint=name)
            if (
                self._population_event is not None
                and not self._population_event.fired
                and len(self.endpoints) >= self._population_target
            ):
                self._population_event.fire(len(self.endpoints))
            self._notify()
        else:
            # A reconnecting endpoint: hand the fresh session to its
            # resilient handle's reacquire loop.
            pooled.queue.put(raw)
            if self._obs.enabled:
                self._obs.counter("fleet.sessions_rerouted").inc()

    def populate(self, count: int, timeout: float = 60.0) -> Generator:
        """Wait until ``count`` distinct endpoints joined the pool.

        Generator — ``yield from pool.populate(n)``. Raises
        :class:`PoolError` if the fleet does not materialize in time.
        """
        self.start()
        if len(self.endpoints) >= count:
            return len(self.endpoints)
        self._population_target = count
        self._population_event = self.sim.event(name="pool-populated")
        timeout_event = self.sim.event(name="pool-populate-timeout")
        timer = self.sim.schedule(timeout, timeout_event.fire)
        try:
            index, _ = yield any_of(
                self.sim, [self._population_event, timeout_event]
            )
            if index == 1:
                raise PoolError(
                    f"pool reached {len(self.endpoints)}/{count} endpoints "
                    f"within {timeout:g}s"
                )
        finally:
            # Disarm on every exit path: a leftover event would fire on
            # some later adoption with nobody awaiting it, and a stale
            # target would race the next populate() call.
            timer.cancel()
            self._population_event = None
            self._population_target = 0
        return len(self.endpoints)

    # -- scheduling support ---------------------------------------------------

    def _notify(self) -> None:
        callback = self.on_change
        if callback is not None:
            callback()

    def _mark_available(self, pooled: PooledEndpoint) -> None:
        """Enqueue an endpoint that (re)gained free capacity."""
        if not pooled._avail_queued and pooled.available:
            pooled._avail_queued = True
            heapq.heappush(self._avail, pooled.name)

    def has_available(self) -> bool:
        """True if any endpoint has free capacity right now (O(1) am.)."""
        avail = self._avail
        endpoints = self.endpoints
        while avail:
            pooled = endpoints.get(avail[0])
            if pooled is not None and pooled.available:
                return True
            # Stale entry (slot taken, state changed, or endpoint
            # removed since push): drop.
            heapq.heappop(avail)
            if pooled is not None:
                pooled._avail_queued = False
        return False

    def acquire(self, pinned: Optional[str] = None,
                avoid: Optional[str] = None,
                exclude=None) -> Optional[PooledEndpoint]:
        """Claim an endpoint slot, or None if nothing suitable is free.

        Deterministic: unpinned work goes to the first available
        endpoint in name order (stable across same-seed runs). ``avoid``
        steers a retried job away from the endpoint it just failed on —
        unless that endpoint is the only one available, in which case
        spinning on it beats stranding the job. ``exclude`` (a container
        of names) is a *hard* bar with no last resort: cross-validation
        replicas must land on distinct endpoints or their quorum proves
        nothing.
        """
        if pinned is not None:
            pooled = self.endpoints.get(pinned)
            if pooled is not None and pooled.available:
                pooled.inflight += 1
                return pooled
            return None
        avail = self._avail
        endpoints = self.endpoints
        deferred: Optional[PooledEndpoint] = None
        excluded: list[PooledEndpoint] = []
        chosen: Optional[PooledEndpoint] = None
        while avail:
            pooled = endpoints.get(heapq.heappop(avail))
            if pooled is None:
                continue  # removed since push
            pooled._avail_queued = False
            if not pooled.available:
                continue
            if exclude is not None and pooled.name in exclude:
                excluded.append(pooled)
                continue
            if avoid is not None and pooled.name == avoid \
                    and deferred is None:
                # Hold the avoided endpoint aside; keep looking for an
                # alternate.
                deferred = pooled
                continue
            chosen = pooled
            break
        if chosen is None and deferred is not None:
            # Nothing else free: last resort is the avoided endpoint.
            chosen, deferred = deferred, None
        # Put every held-aside endpoint back before returning.
        for held in excluded:
            self._mark_available(held)
        if deferred is not None:
            self._mark_available(deferred)
        if chosen is None:
            return None
        chosen.inflight += 1
        # Multi-slot endpoints stay in the heap while capacity remains.
        self._mark_available(chosen)
        return chosen

    def release(self, pooled: PooledEndpoint, failed: bool = False) -> None:
        pooled.inflight -= 1
        if failed:
            pooled.failures += 1
            if (
                self.quarantine_after is not None
                and pooled.failures >= self.quarantine_after
                and pooled.state == ACTIVE
            ):
                self._quarantine(pooled)
        else:
            pooled.jobs_completed += 1
        # Either branch can free a slot (non-ACTIVE states gate via
        # `available`, so _mark_available is a no-op there).
        self._mark_available(pooled)

    def can_ever_run(self, pinned: Optional[str] = None) -> bool:
        """Could a job with this pin ever be dispatched (ignoring load)?

        Quarantined and draining endpoints count: quarantine always has
        a readmission timer pending, and a draining endpoint either
        freshens (undrain) or departs (removal) — both transitions fire
        ``on_change`` so waiting schedulers re-check. Departed endpoints
        (and handles that gave up reacquiring) do not: pinned work on
        them must fail fast rather than spin until campaign timeout.
        """
        if pinned is not None:
            pooled = self.endpoints.get(pinned)
            if pooled is None or pooled.handle is None:
                return False
            return pooled.state != DEPARTED and not pooled.handle.gone
        return (
            self._usable > 0
            or self._pending_readmissions > 0
            or self._draining > 0
        )

    # -- misbehavior scoring ----------------------------------------------------

    def _decay_score(self, pooled: PooledEndpoint) -> None:
        policy = self.misbehavior
        if policy is None:
            return
        now = self.sim.now
        if pooled.score > 0.0 and policy.half_life > 0.0:
            elapsed = now - pooled.score_at
            if elapsed > 0.0:
                pooled.score *= 0.5 ** (elapsed / policy.half_life)
        pooled.score_at = now

    def misbehavior_score(self, name: str) -> float:
        """Current (decayed) score for a pooled endpoint; 0 if unknown."""
        pooled = self.endpoints.get(name)
        if pooled is None:
            return 0.0
        self._decay_score(pooled)
        return pooled.score

    def report_misbehavior(self, name: str, kind: str, count: int = 1,
                           weight: Optional[float] = None,
                           detail: str = "") -> float:
        """Score an offence against an endpoint; returns the new score.

        No-op unless the pool was built with a
        :class:`MisbehaviorPolicy`.  Crossing ``quarantine_score`` sends
        an ACTIVE offender through the quarantine/backoff machinery;
        crossing ``depart_score`` removes it permanently.  Evidence is
        also logged to ``misbehavior_totals``/``offense_log``, which
        survive departure so reports and benches can audit detection
        even after the offender is gone.
        """
        policy = self.misbehavior
        if policy is None:
            return 0.0
        if weight is None:
            weight = policy.weights.get(kind, policy.default_weight)
        added = weight * count
        self.misbehavior_totals[name] = (
            self.misbehavior_totals.get(name, 0.0) + added
        )
        log = self.offense_log.setdefault(name, {})
        log[kind] = log.get(kind, 0) + count
        if self._obs.enabled:
            self._obs.counter("pool.misbehavior_score", kind=kind).inc(count)
            self._obs.emit("pool", "misbehavior", endpoint=name, kind=kind,
                           count=count, detail=detail)
        pooled = self.endpoints.get(name)
        if pooled is None:
            return 0.0  # already departed; evidence logged above
        self._decay_score(pooled)
        pooled.score += added
        score = pooled.score
        if score >= policy.depart_score:
            self.banned.add(name)
            self.misbehavior_departed.append(name)
            self.remove(name, reason="chronic-misbehavior")
        elif score >= policy.quarantine_score and pooled.state == ACTIVE:
            self._quarantine(pooled, reason="misbehavior")
        return score

    def misbehavior_summary(self) -> dict:
        """Deterministic audit of all scored offences (for reports)."""
        return {
            "totals": {
                name: round(total, 6)
                for name, total in sorted(self.misbehavior_totals.items())
            },
            "offenses": {
                name: dict(sorted(kinds.items()))
                for name, kinds in sorted(self.offense_log.items())
            },
            "departed": sorted(self.misbehavior_departed),
        }

    # -- lifecycle transitions ------------------------------------------------

    def _quarantine(self, pooled: PooledEndpoint,
                    reason: str = "job-failures") -> None:
        """ACTIVE -> QUARANTINED, with readmission pre-scheduled."""
        pooled.state = QUARANTINED
        pooled.quarantines += 1
        self._usable -= 1
        delay = self.quarantine_backoff.delay_for(
            pooled.quarantines - 1, self._rng
        )
        self._pending_readmissions += 1
        pooled._readmit_timer = self.sim.schedule(
            delay, self._readmit, pooled.name
        )
        if self._obs.enabled:
            self._obs.counter("fleet.endpoints_quarantined").inc()
            self._obs.emit("fleet", "endpoint-quarantined",
                           endpoint=pooled.name,
                           failures=pooled.failures,
                           reason=reason,
                           readmit_in=delay)

    def _readmit(self, name: str) -> None:
        """QUARANTINED -> ACTIVE once the backoff penalty elapsed."""
        self._pending_readmissions -= 1
        pooled = self.endpoints.get(name)
        if pooled is None:
            return  # removed while quarantined
        pooled._readmit_timer = None
        if pooled.state != QUARANTINED:
            return
        pooled.state = ACTIVE
        # A fresh chance: the failure count restarts, but `quarantines`
        # keeps growing so a relapsing endpoint backs off harder.
        pooled.failures = 0
        self._usable += 1
        self._mark_available(pooled)
        if self._obs.enabled:
            self._obs.counter("fleet.readmissions").inc()
            self._obs.emit("fleet", "endpoint-readmitted",
                           endpoint=name, reason="quarantine-backoff",
                           quarantines=pooled.quarantines)
        self._notify()

    def drain(self, name: str, reason: str = "stale-heartbeat") -> bool:
        """ACTIVE -> DRAINING: stop offering new work, let in-flight
        jobs finish. Returns True if the transition happened."""
        pooled = self.endpoints.get(name)
        if pooled is None or pooled.state != ACTIVE:
            return False
        pooled.state = DRAINING
        pooled.drains += 1
        self._usable -= 1
        self._draining += 1
        if self._obs.enabled:
            self._obs.counter("fleet.endpoints_drained").inc()
            self._obs.emit("fleet", "endpoint-drained",
                           endpoint=name, reason=reason,
                           inflight=pooled.inflight)
        self._notify()
        return True

    def undrain(self, name: str, reason: str = "heartbeat-fresh") -> bool:
        """DRAINING -> ACTIVE: the endpoint proved it is alive again."""
        pooled = self.endpoints.get(name)
        if pooled is None or pooled.state != DRAINING:
            return False
        pooled.state = ACTIVE
        self._draining -= 1
        self._usable += 1
        self._mark_available(pooled)
        if self._obs.enabled:
            self._obs.counter("fleet.readmissions").inc()
            self._obs.emit("fleet", "endpoint-readmitted",
                           endpoint=name, reason=reason)
        self._notify()
        return True

    def remove(self, name: str, reason: str = "departed") -> bool:
        """Any state -> DEPARTED: drop the endpoint from the pool.

        ``can_ever_run`` turns False for pins on it immediately; a
        rejoining endpoint (same name, fresh sessions) is adopted from
        scratch. In-flight jobs keep their handle reference and fail or
        finish on their own.
        """
        pooled = self.endpoints.pop(name, None)
        if pooled is None:
            return False
        previous, pooled.state = pooled.state, DEPARTED
        if pooled._readmit_timer is not None:
            pooled._readmit_timer.cancel()
            pooled._readmit_timer = None
            self._pending_readmissions -= 1
        if previous == ACTIVE:
            self._usable -= 1
        elif previous == DRAINING:
            self._draining -= 1
        # QUARANTINED already left _usable when it was quarantined.
        self.departed.add(name)
        if self._obs.enabled:
            self._obs.counter("fleet.endpoints_removed").inc()
            self._obs.gauge("fleet.pool_size").set(len(self.endpoints))
            self._obs.emit("fleet", "endpoint-removed",
                           endpoint=name, reason=reason,
                           state=previous, inflight=pooled.inflight)
        self._notify()
        return True

    def _handle_gone(self, handle: ResilientHandle) -> None:
        """A resilient handle gave up reacquiring: its endpoint is gone."""
        name = handle.endpoint_name
        pooled = self.endpoints.get(name)
        if pooled is not None and pooled.handle is handle:
            self.remove(name, reason="handle-gone")

    def states(self) -> dict[str, int]:
        """Count of pooled endpoints per lifecycle state (for reports)."""
        counts: dict[str, int] = {}
        for pooled in self.endpoints.values():
            counts[pooled.state] = counts.get(pooled.state, 0) + 1
        return counts

    # -- teardown -------------------------------------------------------------

    def shutdown(self, bye: bool = True) -> None:
        """Stop routing; optionally wave goodbye to every live session."""
        if self._router_proc is not None:
            self._router_proc.kill()
            self._router_proc = None
        for pooled in self.endpoints.values():
            if pooled._readmit_timer is not None:
                pooled._readmit_timer.cancel()
                pooled._readmit_timer = None
        if bye:
            for name in sorted(self.endpoints):
                handle = self.endpoints[name].handle
                if handle is not None and not handle.closed:
                    handle.bye()
