"""Endpoint pool: the fleet-side view of accepted controller sessions.

A campaign runs one :class:`~repro.controller.client.ControllerServer`;
endpoints discovered through (sharded) rendezvous dial in and land on
the server's accepted queue. The pool's router drains that queue and
keys each session by endpoint name:

- the first session from an endpoint is adopted into a
  :class:`PooledEndpoint` and wrapped in a
  :class:`~repro.controller.recovery.ResilientHandle` whose reconnect
  source is the endpoint's *own* per-name queue — with hundreds of
  endpoints sharing one server, a recovering handle must never adopt
  some other endpoint's fresh session;
- later sessions from the same endpoint are routed to that queue, where
  the resilient handle's reacquire loop finds them.

Handles are reused across jobs (sessions are expensive: TCP + Hello/Auth
+ chain verification), so a 200-job campaign over 200 endpoints performs
exactly 200 handshakes, not 400.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Generator, Optional
from zlib import crc32

from repro.controller.recovery import ResilientHandle
from repro.netsim.kernel import Queue, any_of

if TYPE_CHECKING:
    from repro.controller.client import ControllerServer, EndpointHandle
    from repro.util.retry import RetryPolicy


class PoolError(Exception):
    """Raised when the pool cannot satisfy a population/acquire request."""


class PooledEndpoint:
    """One fleet endpoint: its resilient handle plus scheduling state."""

    __slots__ = (
        "name", "handle", "queue", "max_concurrent", "inflight",
        "jobs_completed", "failures", "quarantined", "deferred_reported",
        "_avail_queued",
    )

    def __init__(self, name: str, queue: Queue,
                 max_concurrent: int = 1) -> None:
        self.name = name
        self.handle: Optional[ResilientHandle] = None
        self.queue = queue
        self.max_concurrent = max_concurrent
        self.inflight = 0
        self.jobs_completed = 0
        self.failures = 0
        self.quarantined = False
        # How many of handle.deferred_errors have already been folded
        # into campaign results (late nsend_nowait failures).
        self.deferred_reported = 0
        # True while this endpoint's name sits in the pool's availability
        # heap (entries are invalidated lazily, not removed).
        self._avail_queued = False

    @property
    def available(self) -> bool:
        return (
            self.handle is not None
            and not self.quarantined
            and self.inflight < self.max_concurrent
        )


class EndpointPool:
    """Routes accepted sessions into named, reusable endpoint slots."""

    def __init__(
        self,
        server: "ControllerServer",
        policy: Optional["RetryPolicy"] = None,
        seed: int = 0,
        max_concurrent_per_endpoint: int = 1,
        quarantine_after: Optional[int] = None,
    ) -> None:
        self.server = server
        self.sim = server.node.sim
        self.policy = policy
        self.seed = seed
        self.max_concurrent_per_endpoint = max_concurrent_per_endpoint
        # After this many job failures an endpoint stops receiving
        # unpinned work (None = never quarantine).
        self.quarantine_after = quarantine_after
        self.endpoints: dict[str, PooledEndpoint] = {}
        # Min-heap of names with (possibly stale) free capacity: popping
        # the smallest name reproduces the old sorted-scan dispatch order
        # without an O(N log N) sort per acquire. Entries are checked
        # against the live `available` flag on pop.
        self._avail: list[str] = []
        # Endpoints that could ever take unpinned work (adopted and not
        # quarantined) — keeps can_ever_run(None) O(1).
        self._usable = 0
        self._obs = self.sim.obs
        self._router_proc = None
        self._population_event = None
        self._population_target = 0

    # -- adoption -------------------------------------------------------------

    def start(self) -> "EndpointPool":
        if self._router_proc is None:
            self._router_proc = self.sim.spawn(
                self._router(), name="pool-router"
            )
        return self

    def _router(self) -> Generator:
        while True:
            handle = yield self.server.wait_endpoint()
            self._adopt(handle)

    def _adopt(self, raw: "EndpointHandle") -> None:
        name = raw.endpoint_name
        pooled = self.endpoints.get(name)
        if pooled is None:
            pooled = PooledEndpoint(
                name,
                self.sim.queue(name=f"pool-{name}"),
                max_concurrent=self.max_concurrent_per_endpoint,
            )
            pooled.handle = ResilientHandle(
                self.server,
                raw,
                policy=self.policy,
                seed=(self.seed << 16) ^ crc32(name.encode()),
                endpoints_queue=pooled.queue,
            )
            self.endpoints[name] = pooled
            self._usable += 1
            self._mark_available(pooled)
            if self._obs.enabled:
                self._obs.counter("fleet.endpoints_adopted").inc()
                self._obs.gauge("fleet.pool_size").set(len(self.endpoints))
                self._obs.emit("fleet", "endpoint-adopted", endpoint=name)
            if (
                self._population_event is not None
                and not self._population_event.fired
                and len(self.endpoints) >= self._population_target
            ):
                self._population_event.fire(len(self.endpoints))
        else:
            # A reconnecting endpoint: hand the fresh session to its
            # resilient handle's reacquire loop.
            pooled.queue.put(raw)
            if self._obs.enabled:
                self._obs.counter("fleet.sessions_rerouted").inc()

    def populate(self, count: int, timeout: float = 60.0) -> Generator:
        """Wait until ``count`` distinct endpoints joined the pool.

        Generator — ``yield from pool.populate(n)``. Raises
        :class:`PoolError` if the fleet does not materialize in time.
        """
        self.start()
        if len(self.endpoints) >= count:
            return len(self.endpoints)
        self._population_target = count
        self._population_event = self.sim.event(name="pool-populated")
        timeout_event = self.sim.event(name="pool-populate-timeout")
        timer = self.sim.schedule(timeout, timeout_event.fire)
        index, _ = yield any_of(
            self.sim, [self._population_event, timeout_event]
        )
        if index == 1:
            raise PoolError(
                f"pool reached {len(self.endpoints)}/{count} endpoints "
                f"within {timeout:g}s"
            )
        timer.cancel()
        return len(self.endpoints)

    # -- scheduling support ---------------------------------------------------

    def _mark_available(self, pooled: PooledEndpoint) -> None:
        """Enqueue an endpoint that (re)gained free capacity."""
        if not pooled._avail_queued and pooled.available:
            pooled._avail_queued = True
            heapq.heappush(self._avail, pooled.name)

    def has_available(self) -> bool:
        """True if any endpoint has free capacity right now (O(1) am.)."""
        avail = self._avail
        endpoints = self.endpoints
        while avail:
            pooled = endpoints[avail[0]]
            if pooled.available:
                return True
            # Stale entry (slot taken or quarantined since push): drop.
            heapq.heappop(avail)
            pooled._avail_queued = False
        return False

    def acquire(self, pinned: Optional[str] = None) -> Optional[PooledEndpoint]:
        """Claim an endpoint slot, or None if nothing suitable is free.

        Deterministic: unpinned work goes to the first available
        endpoint in name order (stable across same-seed runs).
        """
        if pinned is not None:
            pooled = self.endpoints.get(pinned)
            if pooled is not None and pooled.available:
                pooled.inflight += 1
                return pooled
            return None
        avail = self._avail
        endpoints = self.endpoints
        while avail:
            pooled = endpoints[heapq.heappop(avail)]
            pooled._avail_queued = False
            if pooled.available:
                pooled.inflight += 1
                # Multi-slot endpoints stay in the heap while capacity
                # remains.
                self._mark_available(pooled)
                return pooled
        return None

    def release(self, pooled: PooledEndpoint, failed: bool = False) -> None:
        pooled.inflight -= 1
        if failed:
            pooled.failures += 1
            if (
                self.quarantine_after is not None
                and pooled.failures >= self.quarantine_after
                and not pooled.quarantined
            ):
                pooled.quarantined = True
                self._usable -= 1
                if self._obs.enabled:
                    self._obs.counter("fleet.endpoints_quarantined").inc()
                    self._obs.emit("fleet", "endpoint-quarantined",
                                   endpoint=pooled.name,
                                   failures=pooled.failures)
        else:
            pooled.jobs_completed += 1
        # Either branch can free a slot (quarantine gates via
        # `available`, so _mark_available is a no-op there).
        self._mark_available(pooled)

    def can_ever_run(self, pinned: Optional[str] = None) -> bool:
        """Could a job with this pin ever be dispatched (ignoring load)?"""
        if pinned is not None:
            pooled = self.endpoints.get(pinned)
            return pooled is not None and pooled.handle is not None \
                and not pooled.quarantined
        return self._usable > 0

    # -- teardown -------------------------------------------------------------

    def shutdown(self, bye: bool = True) -> None:
        """Stop routing; optionally wave goodbye to every live session."""
        if self._router_proc is not None:
            self._router_proc.kill()
            self._router_proc = None
        if bye:
            for name in sorted(self.endpoints):
                handle = self.endpoints[name].handle
                if handle is not None and not handle.closed:
                    handle.bye()
