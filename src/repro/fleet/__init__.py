"""Fleet orchestration: campaigns over pools of PacketLab endpoints.

The paper's promise is one interface driving *many* heterogeneous
endpoints; this package supplies the layer above per-session machinery
that makes that true at scale:

- :mod:`repro.fleet.shard` — multiple rendezvous servers with the
  channel space partitioned by hash, offer streams merged at the
  controller;
- :mod:`repro.fleet.pool` — accepted sessions keyed by endpoint name
  and wrapped in reusable, reconnect-aware handles;
- :mod:`repro.fleet.scheduler` — a work queue multiplexing N concurrent
  sessions with rate limiting and failure-aware rescheduling;
- :mod:`repro.fleet.heartbeat` — liveness sweeps over the shard-merged
  heartbeat registry, draining stale endpoints before RPCs fail on them
  and removing the departed;
- :mod:`repro.fleet.aggregate` — streaming mergeable rollups (counters
  + quantile sketches) so campaigns report without buffering raw
  results;
- :mod:`repro.fleet.testbed` — the whole deployment assembled on a
  generated star/tree/mesh fleet topology.

Everything is deterministic under the discrete-event kernel: one seed,
one schedule, one byte-identical report.
"""

from repro.fleet.aggregate import (
    CounterSet,
    QuantileSketch,
    ResultAggregator,
    Rollup,
)
from repro.fleet.heartbeat import HeartbeatMonitor
from repro.fleet.pool import (
    EndpointPool,
    MisbehaviorPolicy,
    PooledEndpoint,
    PoolError,
)
from repro.fleet.scheduler import (
    CampaignContext,
    CampaignJob,
    CampaignReport,
    CampaignScheduler,
    CrossValidation,
    TokenBucket,
)
from repro.fleet.shard import ShardedRendezvous, shard_for, subscribe_endpoint
from repro.fleet.testbed import FleetTestbed

__all__ = [
    "CampaignContext",
    "CampaignJob",
    "CampaignReport",
    "CampaignScheduler",
    "CounterSet",
    "CrossValidation",
    "EndpointPool",
    "FleetTestbed",
    "HeartbeatMonitor",
    "MisbehaviorPolicy",
    "PoolError",
    "PooledEndpoint",
    "QuantileSketch",
    "ResultAggregator",
    "Rollup",
    "ShardedRendezvous",
    "TokenBucket",
    "shard_for",
    "subscribe_endpoint",
]
