"""Sharded rendezvous: several servers, channels partitioned by hash.

One rendezvous server fans every publication out to every matching
subscriber; at fleet scale that single server becomes both a hotspot and
a single point of failure. A :class:`ShardedRendezvous` runs K
independent :class:`~repro.rendezvous.server.RendezvousServer` instances
and partitions the channel space (channels are key hashes, §3.3) by a
stable hash of the channel id:

- an endpoint subscribes at the shard owning its trusted operator key;
- a publication is split per shard: each shard receives only the
  delivery chains whose anchoring operator key lives on that shard, so
  every offer stream stays shard-local and the merged view (the
  controller's accepted-endpoint queue) covers the whole fleet.

Sharding is pure client-side arithmetic — the servers themselves are
unmodified, which is the point: the paper's persistent infrastructure
stays dumb.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.netsim.node import Node
from repro.rendezvous.descriptor import ExperimentDescriptor
from repro.rendezvous.server import RendezvousServer

if TYPE_CHECKING:
    from repro.controller.session import Experimenter, OperatorGrant


def shard_for(channel: bytes, shard_count: int) -> int:
    """Stable shard index for a channel (a key id)."""
    if shard_count <= 1:
        return 0
    return int.from_bytes(channel[:8], "big") % shard_count


class ShardedRendezvous:
    """K rendezvous servers with channel-hash partitioning."""

    def __init__(self, servers: list[RendezvousServer]) -> None:
        if not servers:
            raise ValueError("ShardedRendezvous needs at least one server")
        self.servers = list(servers)

    @property
    def shard_count(self) -> int:
        return len(self.servers)

    def shard_index(self, channel: bytes) -> int:
        return shard_for(channel, self.shard_count)

    def server_for(self, channel: bytes) -> RendezvousServer:
        return self.servers[self.shard_index(channel)]

    def start(self) -> "ShardedRendezvous":
        for server in self.servers:
            if not server.running:
                server.start()
        return self

    def stop(self) -> None:
        for server in self.servers:
            server.stop()

    # -- publication ----------------------------------------------------------

    def grants_by_shard(
        self, grants: list["OperatorGrant"]
    ) -> dict[int, list["OperatorGrant"]]:
        """Partition operator grants by the shard owning the operator key."""
        shards: dict[int, list["OperatorGrant"]] = {}
        for grant in grants:
            index = self.shard_index(grant.certificate.signer_key_id)
            shards.setdefault(index, []).append(grant)
        return shards

    def publish(
        self,
        experimenter: "Experimenter",
        node: Node,
        descriptor: ExperimentDescriptor,
        experiment_restrictions=None,
    ) -> Generator:
        """Publish a descriptor to every shard holding a delivery channel.

        Each shard receives only its own slice of delivery chains.
        Returns ``{shard_index: (ok, reason)}``; use as ``results = yield
        from sharded.publish(...)``.
        """
        results: dict[int, tuple[bool, str]] = {}
        for index, grants in sorted(
            self.grants_by_shard(experimenter.endpoint_grants).items()
        ):
            server = self.servers[index]
            ok, reason = yield from experimenter.publish(
                node,
                server.node.primary_address(),
                server.port,
                descriptor,
                experiment_restrictions=experiment_restrictions,
                grants=grants,
            )
            results[index] = (ok, reason)
        return results

    # -- merged liveness ------------------------------------------------------

    def liveness(self) -> dict:
        """Merged heartbeat registry across every shard.

        Endpoints normally beacon at exactly one shard (the one owning
        their operator key), but an endpoint trusting keys on several
        shards beacons at each — the freshest record wins.
        """
        merged: dict = {}
        for server in self.servers:
            for name, record in server.heartbeats.items():
                held = merged.get(name)
                if held is None or record.last_seen > held.last_seen:
                    merged[name] = record
        return merged

    @property
    def heartbeats_received(self) -> int:
        return sum(
            record.beats
            for server in self.servers
            for record in server.heartbeats.values()
        )

    # -- merged statistics ----------------------------------------------------

    @property
    def experiments_delivered(self) -> int:
        return sum(server.experiments_delivered for server in self.servers)

    @property
    def publications_accepted(self) -> int:
        return sum(server.publications_accepted for server in self.servers)

    @property
    def publications_rejected(self) -> int:
        return sum(server.publications_rejected for server in self.servers)

    @property
    def subscriber_count(self) -> int:
        return sum(len(server.subscribers) for server in self.servers)

    def describe(self) -> str:
        lines = []
        for index, server in enumerate(self.servers):
            lines.append(
                f"shard {index}: {server.node.name}:{server.port} "
                f"subs={len(server.subscribers)} "
                f"delivered={server.experiments_delivered}"
            )
        return "\n".join(lines)


def subscribe_endpoint(endpoint, sharded: ShardedRendezvous,
                       channels: Optional[list[bytes]] = None):
    """Point an endpoint's rendezvous subscription at its shard(s).

    An endpoint subscribes once per distinct shard owning one of its
    channels (its trusted key ids); most fleet endpoints trust exactly
    one operator and therefore hold exactly one subscription.
    """
    channels = channels if channels is not None else list(
        endpoint.config.trusted_key_ids
    )
    procs = []
    for index in sorted({sharded.shard_index(ch) for ch in channels}):
        server = sharded.servers[index]
        procs.append(endpoint.start_rendezvous(
            server.node.primary_address(), server.port
        ))
    return procs
