"""Campaign scheduler: N concurrent sessions inside one simulator.

The paper's controllers are ephemeral one-experiment processes; a
*campaign* is hundreds of such experiment runs multiplexed over a pool
of endpoints. The scheduler is a single simulated process owning:

- a FIFO **work queue** of :class:`CampaignJob`\\ s (optionally pinned to
  a named endpoint),
- a global **concurrency cap** plus the pool's per-endpoint caps,
- a **token bucket** gating session starts (admission/rate control, so a
  campaign can be throttled to e.g. 5 new sessions per simulated
  second),
- **failure-aware rescheduling**: a job that dies on a transport-level
  fault (or a command error) is requeued with the campaign's
  :class:`~repro.util.retry.RetryPolicy` backoff; an endpoint that keeps
  failing is quarantined by the pool.

Every decision consumes virtual time deterministically: with the same
seed, topology, and job list, two runs produce the identical dispatch
schedule and byte-identical aggregate reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Generator, Optional

from repro.controller.client import CommandError, RpcTimeout, SessionClosed
from repro.fleet.aggregate import ResultAggregator
from repro.fleet.pool import EndpointPool, PooledEndpoint
from repro.util.retry import RetryPolicy

# Outcomes that requeue a job rather than abort the campaign.
RESCHEDULABLE = (SessionClosed, RpcTimeout, CommandError)


@dataclass
class CampaignContext:
    """What a campaign job sees besides its endpoint handle."""

    sim: Any
    controller_host: Any = None
    target_address: int = 0
    allocate_port: Optional[Callable[[], int]] = None
    attempt: int = 0
    extras: dict = field(default_factory=dict)


@dataclass
class CampaignJob:
    """One schedulable unit: an experiment run over one endpoint session.

    ``run(handle, ctx)`` is a generator (simulated process body) whose
    return value is passed to ``metrics`` to extract the mergeable
    summary folded into the campaign rollups — the raw result itself is
    dropped, keeping aggregation streaming.
    """

    name: str
    run: Callable[[Any, CampaignContext], Generator]
    metrics: Optional[Callable[[Any], dict]] = None
    endpoint: Optional[str] = None  # pin to a named endpoint
    attempts: int = 0
    error: Optional[str] = None
    # Where the last attempt failed: a retried unpinned job is steered
    # to an alternate endpoint (retry-on-alternate, not spin-on-dead).
    last_endpoint: Optional[str] = None


class TokenBucket:
    """Deterministic token bucket over virtual time."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: Optional[float], burst: float, now: float) -> None:
        self.rate = rate  # tokens per simulated second; None = unlimited
        self.burst = max(1.0, burst)
        self.tokens = self.burst
        self.last = now

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        elapsed = now - self.last
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last = now

    def try_take(self, now: float) -> bool:
        if self.rate is None:
            return True
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def delay_until_token(self, now: float) -> float:
        """Virtual seconds until the next token exists (0 if one does)."""
        if self.rate is None:
            return 0.0
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        # Tiny epsilon so the wake-up lands strictly at/after the refill
        # instant despite float rounding.
        return (1.0 - self.tokens) / self.rate + 1e-9


class CampaignReport:
    """Scheduling statistics + the streamed aggregate rollups."""

    def __init__(self, name: str, seed: int, aggregator: ResultAggregator,
                 pool: EndpointPool) -> None:
        self.name = name
        self.seed = seed
        self.aggregator = aggregator
        self.jobs_total = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.retries = 0
        self.started = 0.0
        self.finished = 0.0
        self.max_concurrency = 0
        self.peak_inflight = 0
        self.endpoint_count = len(pool.endpoints)
        self.unschedulable: list[str] = []

    @property
    def makespan(self) -> float:
        return self.finished - self.started

    def to_dict(self) -> dict:
        return {
            "campaign": self.name,
            "seed": self.seed,
            "jobs": {
                "total": self.jobs_total,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "retries": self.retries,
                "unschedulable": sorted(self.unschedulable),
            },
            "schedule": {
                "started": self.started,
                "finished": self.finished,
                "makespan_s": self.makespan,
                "max_concurrency": self.max_concurrency,
                "peak_inflight": self.peak_inflight,
                "endpoints": self.endpoint_count,
            },
            "results": self.aggregator.report(),
        }

    def to_json(self) -> str:
        """Canonical byte-stable encoding (the determinism contract)."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def export_jsonl(self, path: str) -> int:
        return self.aggregator.export_jsonl(path)

    def summary(self) -> str:
        lines = [
            f"campaign {self.name!r}: {self.jobs_completed}/"
            f"{self.jobs_total} jobs ok, {self.jobs_failed} failed, "
            f"{self.retries} retries",
            f"  endpoints={self.endpoint_count} "
            f"peak_inflight={self.peak_inflight} "
            f"makespan={self.makespan:.3f}s (simulated)",
        ]
        for name, sketch in sorted(self.aggregator.total.sketches.items()):
            stats = sketch.to_dict()
            lines.append(
                f"  {name}: n={stats['count']} mean={stats['mean']:.6g} "
                f"p50={stats['p50']:.6g} p90={stats['p90']:.6g} "
                f"p99={stats['p99']:.6g}"
            )
        counters = self.aggregator.total.counters.to_dict()
        if counters:
            rendered = " ".join(f"{k}={v:g}" for k, v in counters.items())
            lines.append(f"  counters: {rendered}")
        return "\n".join(lines)


class CampaignScheduler:
    """Multiplexes campaign jobs over a populated endpoint pool."""

    def __init__(
        self,
        pool: EndpointPool,
        jobs: list[CampaignJob],
        name: str = "campaign",
        max_concurrency: int = 16,
        rate: Optional[float] = None,
        burst: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
        seed: int = 0,
        context: Optional[CampaignContext] = None,
        aggregator: Optional[ResultAggregator] = None,
    ) -> None:
        self.pool = pool
        self.sim = pool.sim
        self.name = name
        self.jobs = list(jobs)
        self.max_concurrency = max(1, max_concurrency)
        self.retry_policy = retry_policy or RetryPolicy()
        self.rng = Random(seed)
        self.seed = seed
        self.bucket = TokenBucket(rate, burst, self.sim.now)
        self.context = context or CampaignContext(sim=self.sim)
        self.aggregator = aggregator or ResultAggregator(campaign=name)
        self._obs = self.sim.obs

        self._queue: deque[CampaignJob] = deque()
        # Count of queued jobs pinned to a named endpoint; while zero the
        # dispatcher can pop the queue head without scanning.
        self._pinned_queued = 0
        self._wake = self.sim.queue(name=f"{name}-wake")
        self._inflight = 0
        self._outstanding = 0  # queued + inflight + pending requeues
        self._pending_requeues = 0  # backoff timers not yet fired
        self._token_timer_armed = False
        self.report = CampaignReport(name, seed, self.aggregator, pool)

    # -- main loop ------------------------------------------------------------

    def run(self) -> Generator:
        """The campaign process body; returns a :class:`CampaignReport`.

        Use as ``report = yield from scheduler.run()`` (or spawn it).
        """
        obs = self._obs
        span = (
            obs.span("fleet", "campaign", campaign=self.name,
                     jobs=len(self.jobs))
            if obs.enabled else None
        )
        self.report.jobs_total = len(self.jobs)
        self.report.max_concurrency = self.max_concurrency
        self.report.started = self.sim.now
        self._queue.extend(self.jobs)
        self._pinned_queued = sum(
            1 for job in self.jobs if job.endpoint is not None
        )
        self._outstanding = len(self.jobs)
        self._note_queue_depth()
        # Wake when pool dispatchability shifts underneath us: a churned
        # endpoint rejoining, a quarantine readmission, a drain/removal.
        # Without this a scheduler blocked on its wake queue with zero
        # in-flight jobs would sleep through the fleet coming back.
        self.pool.on_change = lambda: self._wake.put(("poke",))

        while self._outstanding > 0:
            dispatched = self._dispatch_ready()
            if self._outstanding == 0:
                break
            if (
                not dispatched
                and self._inflight == 0
                and self._pending_requeues == 0
                and not self._token_timer_armed
                and not self._any_dispatchable_later()
            ):
                # Nothing running, nothing will ever become runnable:
                # fail the stranded jobs instead of deadlocking.
                self._fail_stranded()
                continue
            item = yield self._wake.get()
            self._handle_wake(item)
            # Drain every wake already queued at this instant before
            # re-dispatching: N same-tick completions cost one dispatch
            # pass instead of N (handlers are synchronous, so batching
            # cannot change what each wake does).
            while True:
                item = self._wake.try_get()
                if item is None:
                    break
                self._handle_wake(item)

        self.pool.on_change = None
        self.report.finished = self.sim.now
        self.report.endpoint_count = len(self.pool.endpoints)
        if span is not None:
            span.end(completed=self.report.jobs_completed,
                     failed=self.report.jobs_failed,
                     retries=self.report.retries)
        if obs.enabled:
            obs.gauge("fleet.queue_depth").set(0)
            obs.gauge("fleet.inflight").set(0)
        return self.report

    # -- dispatch -------------------------------------------------------------

    def _dispatch_ready(self) -> bool:
        """Start every job that can start right now; True if any did."""
        dispatched = False
        while self._queue and self._inflight < self.max_concurrency:
            if not self.bucket.try_take(self.sim.now):
                self._arm_token_timer()
                break
            job = self._pop_dispatchable()
            if job is None:
                # Token not spent on anything: put it back.
                self.bucket.tokens = min(self.bucket.burst,
                                         self.bucket.tokens + 1.0)
                break
            pooled = self.pool.acquire(
                job.endpoint,
                avoid=job.last_endpoint if job.endpoint is None else None,
            )
            assert pooled is not None  # _pop_dispatchable checked
            self._inflight += 1
            self.report.peak_inflight = max(self.report.peak_inflight,
                                            self._inflight)
            dispatched = True
            if self._obs.enabled:
                self._obs.counter("fleet.jobs_dispatched").inc()
                self._obs.gauge("fleet.inflight").set(self._inflight)
            self._note_queue_depth()
            self.sim.spawn(
                self._worker(job, pooled),
                name=f"{self.name}-{job.name}",
            )
        return dispatched

    def _pop_dispatchable(self) -> Optional[CampaignJob]:
        """First queued job whose endpoint (pin or any) is free now."""
        has_free = self.pool.has_available()
        if self._pinned_queued == 0:
            # Fast path for the common all-unpinned campaign: the head
            # job is dispatchable iff anything is free.
            if not has_free:
                return None
            return self._queue.popleft()
        for index, job in enumerate(self._queue):
            if job.endpoint is not None:
                target = self.pool.endpoints.get(job.endpoint)
                if target is not None and target.available:
                    del self._queue[index]
                    self._pinned_queued -= 1
                    return job
            elif has_free:
                del self._queue[index]
                return job
        return None

    def _any_dispatchable_later(self) -> bool:
        """Could any queued job ever run (pool may still be unpopulated)?"""
        unpinned_ok = self.pool.can_ever_run(None)
        return any(
            unpinned_ok if job.endpoint is None
            else self.pool.can_ever_run(job.endpoint)
            for job in self._queue
        )

    def _fail_stranded(self) -> None:
        stranded, self._queue = list(self._queue), deque()
        self._pinned_queued = 0
        for job in stranded:
            if job.endpoint is not None and job.endpoint in self.pool.departed:
                # Distinguishable fast failure: the pinned endpoint left
                # the fleet (crash with no return, handle gave up).
                job.error = f"ENDPOINT_DEPARTED: {job.endpoint}"
            else:
                job.error = job.error or "no endpoint available"
            self.report.unschedulable.append(job.name)
            self._finish_job(job, None, failed=True, endpoint_name="")
        self._note_queue_depth()

    def _arm_token_timer(self) -> None:
        if self._token_timer_armed:
            return
        delay = self.bucket.delay_until_token(self.sim.now)
        if delay <= 0.0:
            return
        self._token_timer_armed = True
        self.sim.schedule(delay, self._wake.put, ("token",))

    # -- worker ---------------------------------------------------------------

    def _worker(self, job: CampaignJob, pooled: PooledEndpoint) -> Generator:
        handle = pooled.handle
        obs = self._obs
        started = self.sim.now
        ctx = CampaignContext(
            sim=self.context.sim,
            controller_host=self.context.controller_host,
            target_address=self.context.target_address,
            allocate_port=self.context.allocate_port,
            attempt=job.attempts,
            extras=self.context.extras,
        )
        try:
            result = yield from job.run(handle, ctx)
        except RESCHEDULABLE as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            yield from self._scrub_session(handle)
            if obs.enabled:
                obs.histogram("fleet.job_duration_s").observe(
                    self.sim.now - started
                )
            self._wake.put(("failed", job, pooled))
            return
        if obs.enabled:
            obs.histogram("fleet.job_duration_s").observe(
                self.sim.now - started
            )
        self._wake.put(("done", job, pooled, result))

    def _scrub_session(self, handle) -> Generator:
        """Best-effort socket cleanup after a failed job, so a retry (or
        the next job pooled onto this session) starts from a clean
        sktid namespace."""
        open_sockets = getattr(handle, "_open_sockets", None)
        if not open_sockets:
            return
        for sktid in sorted(open_sockets):
            try:
                yield from handle.nclose(sktid)
            except RESCHEDULABLE:
                return

    # -- completion handling --------------------------------------------------

    def _handle_wake(self, item: tuple) -> None:
        kind = item[0]
        if kind == "token":
            self._token_timer_armed = False
            return
        if kind == "poke":
            # Pool dispatchability changed (adoption, readmission,
            # drain, removal); the main loop re-dispatches after every
            # wake, so nothing to do here.
            return
        if kind == "requeue":
            job = item[1]
            self._pending_requeues -= 1
            self._queue.append(job)
            if job.endpoint is not None:
                self._pinned_queued += 1
            self._note_queue_depth()
            return
        if kind == "failed":
            job, pooled = item[1], item[2]
            self._inflight -= 1
            self.pool.release(pooled, failed=True)
            job.last_endpoint = pooled.name
            if self._obs.enabled:
                self._obs.gauge("fleet.inflight").set(self._inflight)
            if (
                job.endpoint is not None
                and not self.pool.can_ever_run(job.endpoint)
            ):
                # The pinned endpoint departed mid-campaign: fail fast
                # with a distinguishable result instead of burning the
                # retry budget spinning on a dead pin.
                job.error = f"ENDPOINT_DEPARTED: {job.endpoint} ({job.error})"
                self._harvest_deferred(pooled)
                self._finish_job(job, None, failed=True,
                                 endpoint_name=pooled.name)
                return
            if job.attempts < self.retry_policy.max_attempts:
                delay = self.retry_policy.delay_for(job.attempts, self.rng)
                job.attempts += 1
                self.report.retries += 1
                if self._obs.enabled:
                    self._obs.counter("fleet.jobs_retried").inc()
                    self._obs.emit("fleet", "job-retry", job=job.name,
                                   attempt=job.attempts, delay=delay,
                                   endpoint=pooled.name, error=job.error)
                self._pending_requeues += 1
                self.sim.schedule(delay, self._wake.put, ("requeue", job))
            else:
                self._harvest_deferred(pooled)
                self._finish_job(job, None, failed=True,
                                 endpoint_name=pooled.name)
            return
        # kind == "done"
        job, pooled, result = item[1], item[2], item[3]
        self._inflight -= 1
        self.pool.release(pooled, failed=False)
        if self._obs.enabled:
            self._obs.gauge("fleet.inflight").set(self._inflight)
        self._harvest_deferred(pooled)
        self._finish_job(job, result, failed=False,
                         endpoint_name=pooled.name)

    def _harvest_deferred(self, pooled: PooledEndpoint) -> None:
        """Fold newly observed late nsend_nowait failures into results."""
        handle = pooled.handle
        if handle is None:
            return
        errors = handle.deferred_errors
        fresh = len(errors) - pooled.deferred_reported
        if fresh <= 0:
            return
        pooled.deferred_reported = len(errors)
        self.aggregator.total.counters.add("deferred_send_errors", fresh)
        self.aggregator.endpoint(pooled.name).counters.add(
            "deferred_send_errors", fresh
        )
        if self._obs.enabled:
            self._obs.counter("fleet.deferred_send_errors").inc(fresh)
            self._obs.emit("fleet", "deferred-errors",
                           endpoint=pooled.name, fresh=fresh)

    def _finish_job(self, job: CampaignJob, result, failed: bool,
                    endpoint_name: str) -> None:
        self._outstanding -= 1
        metrics = None
        if not failed and job.metrics is not None:
            metrics = job.metrics(result)
        self.aggregator.observe(endpoint_name or "(none)", metrics,
                                failed=failed)
        if failed:
            self.report.jobs_failed += 1
            if self._obs.enabled:
                self._obs.counter("fleet.jobs_failed").inc()
                self._obs.emit("fleet", "job-failed", job=job.name,
                               endpoint=endpoint_name, error=job.error)
        else:
            self.report.jobs_completed += 1
            if self._obs.enabled:
                self._obs.counter("fleet.jobs_completed").inc()

    def _note_queue_depth(self) -> None:
        if self._obs.enabled:
            self._obs.gauge("fleet.queue_depth").set(len(self._queue))
