"""Campaign scheduler: N concurrent sessions inside one simulator.

The paper's controllers are ephemeral one-experiment processes; a
*campaign* is hundreds of such experiment runs multiplexed over a pool
of endpoints. The scheduler is a single simulated process owning:

- a FIFO **work queue** of :class:`CampaignJob`\\ s (optionally pinned to
  a named endpoint),
- a global **concurrency cap** plus the pool's per-endpoint caps,
- a **token bucket** gating session starts (admission/rate control, so a
  campaign can be throttled to e.g. 5 new sessions per simulated
  second),
- **failure-aware rescheduling**: a job that dies on a transport-level
  fault (or a command error) is requeued with the campaign's
  :class:`~repro.util.retry.RetryPolicy` backoff; an endpoint that keeps
  failing is quarantined by the pool.

Every decision consumes virtual time deterministically: with the same
seed, topology, and job list, two runs produce the identical dispatch
schedule and byte-identical aggregate reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Generator, Optional

from repro.controller.client import CommandError, RpcTimeout, SessionClosed
from repro.fleet.aggregate import (
    ResultAggregator,
    counters_fingerprint,
    majority_fingerprint,
)
from repro.fleet.pool import EndpointPool, PooledEndpoint
from repro.util.retry import RetryPolicy

# Outcomes that requeue a job rather than abort the campaign.
RESCHEDULABLE = (SessionClosed, RpcTimeout, CommandError)


@dataclass
class CampaignContext:
    """What a campaign job sees besides its endpoint handle."""

    sim: Any
    controller_host: Any = None
    target_address: int = 0
    allocate_port: Optional[Callable[[], int]] = None
    attempt: int = 0
    extras: dict = field(default_factory=dict)


@dataclass
class CampaignJob:
    """One schedulable unit: an experiment run over one endpoint session.

    ``run(handle, ctx)`` is a generator (simulated process body) whose
    return value is passed to ``metrics`` to extract the mergeable
    summary folded into the campaign rollups — the raw result itself is
    dropped, keeping aggregation streaming.
    """

    name: str
    run: Callable[[Any, CampaignContext], Generator]
    metrics: Optional[Callable[[Any], dict]] = None
    endpoint: Optional[str] = None  # pin to a named endpoint
    attempts: int = 0
    error: Optional[str] = None
    # Where the last attempt failed: a retried unpinned job is steered
    # to an alternate endpoint (retry-on-alternate, not spin-on-dead).
    last_endpoint: Optional[str] = None
    # Set by cross-validation replica expansion: the _ReplicaGroup this
    # job (original or clone) reports into for adjudication.
    group: Any = None


@dataclass
class CrossValidation:
    """Opt-in redundant dispatch for result integrity.

    A seeded sample of ``fraction`` of the unpinned jobs is cloned into
    ``k`` total replicas each.  When a replica group completes, the
    members' counter fingerprints are compared: with a ≥2-vote majority,
    any disagreeing member is an *outlier* — its metrics are discarded
    (kept out of the campaign rollups) and the endpoint that produced it
    is reported to the pool's misbehavior scoring as ``result-mismatch``.
    """

    fraction: float = 0.1
    k: int = 3
    # Optional override: metrics dict -> hashable fingerprint.  Default
    # compares canonical counter JSON (value streams like RTTs may
    # legitimately differ across vantage points).
    fingerprint: Optional[Callable[[dict], Any]] = None
    # Pinned jobs are audited deterministically (every one replicated,
    # ignoring ``fraction``): pinning names the endpoint you care about,
    # so a campaign can spot-check its whole fleet by pinning one audit
    # job per endpoint. The replicas themselves run unpinned elsewhere.
    audit_pinned: bool = True


class _ReplicaGroup:
    """Completion tracker for one cross-validated job's replicas."""

    __slots__ = ("name", "expect", "members", "used")

    def __init__(self, name: str, expect: int) -> None:
        self.name = name
        self.expect = expect
        # (endpoint_name, metrics_or_None, failed) in completion order.
        self.members: list[tuple[str, Optional[dict], bool]] = []
        # Endpoints any member has been dispatched to: siblings must run
        # elsewhere, or the "independent" votes share one liar.
        self.used: set[str] = set()


class TokenBucket:
    """Deterministic token bucket over virtual time."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: Optional[float], burst: float, now: float) -> None:
        self.rate = rate  # tokens per simulated second; None = unlimited
        self.burst = max(1.0, burst)
        self.tokens = self.burst
        self.last = now

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        elapsed = now - self.last
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last = now

    def try_take(self, now: float) -> bool:
        if self.rate is None:
            return True
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def delay_until_token(self, now: float) -> float:
        """Virtual seconds until the next token exists (0 if one does)."""
        if self.rate is None:
            return 0.0
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        # Tiny epsilon so the wake-up lands strictly at/after the refill
        # instant despite float rounding.
        return (1.0 - self.tokens) / self.rate + 1e-9


class CampaignReport:
    """Scheduling statistics + the streamed aggregate rollups."""

    def __init__(self, name: str, seed: int, aggregator: ResultAggregator,
                 pool: EndpointPool) -> None:
        self.name = name
        self.seed = seed
        self.aggregator = aggregator
        self.jobs_total = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.retries = 0
        self.started = 0.0
        self.finished = 0.0
        self.max_concurrency = 0
        self.peak_inflight = 0
        self.endpoint_count = len(pool.endpoints)
        self.unschedulable: list[str] = []
        # Filled at campaign end when the pool scores misbehavior (the
        # audit from EndpointPool.misbehavior_summary); None otherwise,
        # keeping reports byte-identical for campaigns without scoring.
        self.misbehavior: Optional[dict] = None

    @property
    def makespan(self) -> float:
        return self.finished - self.started

    def to_dict(self) -> dict:
        data = {
            "campaign": self.name,
            "seed": self.seed,
            "jobs": {
                "total": self.jobs_total,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "retries": self.retries,
                "unschedulable": sorted(self.unschedulable),
            },
            "schedule": {
                "started": self.started,
                "finished": self.finished,
                "makespan_s": self.makespan,
                "max_concurrency": self.max_concurrency,
                "peak_inflight": self.peak_inflight,
                "endpoints": self.endpoint_count,
            },
            "results": self.aggregator.report(),
        }
        if self.misbehavior is not None:
            data["misbehavior"] = self.misbehavior
        return data

    def to_json(self) -> str:
        """Canonical byte-stable encoding (the determinism contract)."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def export_jsonl(self, path: str) -> int:
        return self.aggregator.export_jsonl(path)

    def summary(self) -> str:
        lines = [
            f"campaign {self.name!r}: {self.jobs_completed}/"
            f"{self.jobs_total} jobs ok, {self.jobs_failed} failed, "
            f"{self.retries} retries",
            f"  endpoints={self.endpoint_count} "
            f"peak_inflight={self.peak_inflight} "
            f"makespan={self.makespan:.3f}s (simulated)",
        ]
        for name, sketch in sorted(self.aggregator.total.sketches.items()):
            stats = sketch.to_dict()
            lines.append(
                f"  {name}: n={stats['count']} mean={stats['mean']:.6g} "
                f"p50={stats['p50']:.6g} p90={stats['p90']:.6g} "
                f"p99={stats['p99']:.6g}"
            )
        counters = self.aggregator.total.counters.to_dict()
        if counters:
            rendered = " ".join(f"{k}={v:g}" for k, v in counters.items())
            lines.append(f"  counters: {rendered}")
        return "\n".join(lines)


class CampaignScheduler:
    """Multiplexes campaign jobs over a populated endpoint pool."""

    def __init__(
        self,
        pool: EndpointPool,
        jobs: list[CampaignJob],
        name: str = "campaign",
        max_concurrency: int = 16,
        rate: Optional[float] = None,
        burst: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
        seed: int = 0,
        context: Optional[CampaignContext] = None,
        aggregator: Optional[ResultAggregator] = None,
        cross_validate: Optional[CrossValidation] = None,
    ) -> None:
        self.pool = pool
        self.sim = pool.sim
        self.name = name
        self.jobs = list(jobs)
        self.cross_validate = cross_validate
        if cross_validate is not None:
            self._expand_replicas(cross_validate, seed)
        self.max_concurrency = max(1, max_concurrency)
        self.retry_policy = retry_policy or RetryPolicy()
        self.rng = Random(seed)
        self.seed = seed
        self.bucket = TokenBucket(rate, burst, self.sim.now)
        self.context = context or CampaignContext(sim=self.sim)
        self.aggregator = aggregator or ResultAggregator(campaign=name)
        self._obs = self.sim.obs

        self._queue: deque[CampaignJob] = deque()
        # Count of queued jobs pinned to a named endpoint; while zero the
        # dispatcher can pop the queue head without scanning.
        self._pinned_queued = 0
        self._wake = self.sim.queue(name=f"{name}-wake")
        self._inflight = 0
        self._outstanding = 0  # queued + inflight + pending requeues
        self._pending_requeues = 0  # backoff timers not yet fired
        self._token_timer_armed = False
        self.report = CampaignReport(name, seed, self.aggregator, pool)

    def _expand_replicas(self, config: CrossValidation, seed: int) -> None:
        """Clone a seeded sample of unpinned jobs into replica groups.

        Uses its own derived RNG so sampling never perturbs the retry
        RNG's draw order (same seed, same schedule with or without
        cross-validation of a disjoint job set).  Clones are inserted
        directly after their original, so a group's replicas dispatch
        adjacently and — with name-ordered acquire — land on distinct
        endpoints whenever the fleet has spare capacity.
        """
        rng = Random((seed << 3) ^ 0x51ED2701)
        expanded: list[CampaignJob] = []
        for job in self.jobs:
            expanded.append(job)
            if config.k < 2:
                continue
            if job.endpoint is not None:
                if not config.audit_pinned:
                    continue
            elif rng.random() >= config.fraction:
                continue
            group = _ReplicaGroup(job.name, expect=config.k)
            job.group = group
            if job.endpoint is not None:
                # Replicas of a pinned audit must run elsewhere even if
                # they reach the dispatcher before the original does.
                group.used.add(job.endpoint)
            for index in range(1, config.k):
                expanded.append(
                    CampaignJob(
                        name=f"{job.name}~r{index}",
                        run=job.run,
                        metrics=job.metrics,
                        group=group,
                    )
                )
        self.jobs = expanded

    # -- main loop ------------------------------------------------------------

    def run(self) -> Generator:
        """The campaign process body; returns a :class:`CampaignReport`.

        Use as ``report = yield from scheduler.run()`` (or spawn it).
        """
        obs = self._obs
        span = (
            obs.span("fleet", "campaign", campaign=self.name,
                     jobs=len(self.jobs))
            if obs.enabled else None
        )
        self.report.jobs_total = len(self.jobs)
        self.report.max_concurrency = self.max_concurrency
        self.report.started = self.sim.now
        self._queue.extend(self.jobs)
        self._pinned_queued = sum(
            1 for job in self.jobs if job.endpoint is not None
        )
        self._outstanding = len(self.jobs)
        self._note_queue_depth()
        # Wake when pool dispatchability shifts underneath us: a churned
        # endpoint rejoining, a quarantine readmission, a drain/removal.
        # Without this a scheduler blocked on its wake queue with zero
        # in-flight jobs would sleep through the fleet coming back.
        self.pool.on_change = lambda: self._wake.put(("poke",))

        while self._outstanding > 0:
            dispatched = self._dispatch_ready()
            if self._outstanding == 0:
                break
            if (
                not dispatched
                and self._inflight == 0
                and self._pending_requeues == 0
                and not self._token_timer_armed
                and not self._any_dispatchable_later()
            ):
                # Nothing running, nothing will ever become runnable:
                # fail the stranded jobs instead of deadlocking.
                self._fail_stranded()
                continue
            item = yield self._wake.get()
            self._handle_wake(item)
            # Drain every wake already queued at this instant before
            # re-dispatching: N same-tick completions cost one dispatch
            # pass instead of N (handlers are synchronous, so batching
            # cannot change what each wake does).
            while True:
                item = self._wake.try_get()
                if item is None:
                    break
                self._handle_wake(item)

        self.pool.on_change = None
        self.report.finished = self.sim.now
        self.report.endpoint_count = len(self.pool.endpoints)
        if self.pool.misbehavior is not None:
            # Final evidence sweep: a session that misbehaved while idle
            # (a flooder aborted between jobs, say) left its evidence on
            # the handle with no job completion to harvest it.
            for name in sorted(self.pool.endpoints):
                pooled = self.pool.endpoints.get(name)
                if pooled is not None:
                    self._harvest_misbehavior(pooled)
            self.report.misbehavior = self.pool.misbehavior_summary()
        if span is not None:
            span.end(completed=self.report.jobs_completed,
                     failed=self.report.jobs_failed,
                     retries=self.report.retries)
        if obs.enabled:
            obs.gauge("fleet.queue_depth").set(0)
            obs.gauge("fleet.inflight").set(0)
        return self.report

    # -- dispatch -------------------------------------------------------------

    def _dispatch_ready(self) -> bool:
        """Start every job that can start right now; True if any did."""
        dispatched = False
        while self._queue and self._inflight < self.max_concurrency:
            if not self.bucket.try_take(self.sim.now):
                self._arm_token_timer()
                break
            job = self._pop_dispatchable()
            if job is None:
                # Token not spent on anything: put it back.
                self.bucket.tokens = min(self.bucket.burst,
                                         self.bucket.tokens + 1.0)
                break
            group = job.group
            pooled = self.pool.acquire(
                job.endpoint,
                avoid=job.last_endpoint if job.endpoint is None else None,
                exclude=group.used if group is not None else None,
            )
            if pooled is None and group is not None:
                if self._inflight > 0:
                    # Every free endpoint already served this replica
                    # group; requeue behind other work and wait for a
                    # distinct one to free up (a completion wakes us).
                    self.bucket.tokens = min(self.bucket.burst,
                                             self.bucket.tokens + 1.0)
                    self._queue.append(job)
                    break
                # Nothing running and nothing distinct free: liveness
                # beats replica independence.
                pooled = self.pool.acquire(job.endpoint,
                                           avoid=job.last_endpoint)
            assert pooled is not None  # _pop_dispatchable checked
            if group is not None:
                group.used.add(pooled.name)
            self._inflight += 1
            self.report.peak_inflight = max(self.report.peak_inflight,
                                            self._inflight)
            dispatched = True
            if self._obs.enabled:
                self._obs.counter("fleet.jobs_dispatched").inc()
                self._obs.gauge("fleet.inflight").set(self._inflight)
            self._note_queue_depth()
            self.sim.spawn(
                self._worker(job, pooled),
                name=f"{self.name}-{job.name}",
            )
        return dispatched

    def _pop_dispatchable(self) -> Optional[CampaignJob]:
        """First queued job whose endpoint (pin or any) is free now."""
        has_free = self.pool.has_available()
        if self._pinned_queued == 0:
            # Fast path for the common all-unpinned campaign: the head
            # job is dispatchable iff anything is free.
            if not has_free:
                return None
            return self._queue.popleft()
        for index, job in enumerate(self._queue):
            if job.endpoint is not None:
                target = self.pool.endpoints.get(job.endpoint)
                if target is not None and target.available:
                    del self._queue[index]
                    self._pinned_queued -= 1
                    return job
            elif has_free:
                del self._queue[index]
                return job
        return None

    def _any_dispatchable_later(self) -> bool:
        """Could any queued job ever run (pool may still be unpopulated)?"""
        unpinned_ok = self.pool.can_ever_run(None)
        return any(
            unpinned_ok if job.endpoint is None
            else self.pool.can_ever_run(job.endpoint)
            for job in self._queue
        )

    def _fail_stranded(self) -> None:
        stranded, self._queue = list(self._queue), deque()
        self._pinned_queued = 0
        for job in stranded:
            if job.endpoint is not None and job.endpoint in self.pool.departed:
                # Distinguishable fast failure: the pinned endpoint left
                # the fleet (crash with no return, handle gave up).
                job.error = f"ENDPOINT_DEPARTED: {job.endpoint}"
            else:
                job.error = job.error or "no endpoint available"
            self.report.unschedulable.append(job.name)
            self._finish_job(job, None, failed=True, endpoint_name="")
        self._note_queue_depth()

    def _arm_token_timer(self) -> None:
        if self._token_timer_armed:
            return
        delay = self.bucket.delay_until_token(self.sim.now)
        if delay <= 0.0:
            return
        self._token_timer_armed = True
        self.sim.schedule(delay, self._wake.put, ("token",))

    # -- worker ---------------------------------------------------------------

    def _worker(self, job: CampaignJob, pooled: PooledEndpoint) -> Generator:
        handle = pooled.handle
        obs = self._obs
        started = self.sim.now
        ctx = CampaignContext(
            sim=self.context.sim,
            controller_host=self.context.controller_host,
            target_address=self.context.target_address,
            allocate_port=self.context.allocate_port,
            attempt=job.attempts,
            extras=self.context.extras,
        )
        try:
            result = yield from job.run(handle, ctx)
        except RESCHEDULABLE as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            yield from self._scrub_session(handle)
            if obs.enabled:
                obs.histogram("fleet.job_duration_s").observe(
                    self.sim.now - started
                )
            self._wake.put(("failed", job, pooled))
            return
        if obs.enabled:
            obs.histogram("fleet.job_duration_s").observe(
                self.sim.now - started
            )
        self._wake.put(("done", job, pooled, result))

    def _scrub_session(self, handle) -> Generator:
        """Best-effort socket cleanup after a failed job, so a retry (or
        the next job pooled onto this session) starts from a clean
        sktid namespace."""
        open_sockets = getattr(handle, "_open_sockets", None)
        if not open_sockets:
            return
        for sktid in sorted(open_sockets):
            try:
                yield from handle.nclose(sktid)
            except RESCHEDULABLE:
                return

    # -- completion handling --------------------------------------------------

    def _handle_wake(self, item: tuple) -> None:
        kind = item[0]
        if kind == "token":
            self._token_timer_armed = False
            return
        if kind == "poke":
            # Pool dispatchability changed (adoption, readmission,
            # drain, removal); the main loop re-dispatches after every
            # wake, so nothing to do here.
            return
        if kind == "requeue":
            job = item[1]
            self._pending_requeues -= 1
            self._queue.append(job)
            if job.endpoint is not None:
                self._pinned_queued += 1
            self._note_queue_depth()
            return
        if kind == "failed":
            job, pooled = item[1], item[2]
            self._inflight -= 1
            self.pool.release(pooled, failed=True)
            job.last_endpoint = pooled.name
            self._harvest_misbehavior(pooled)
            # Every failed attempt is weak evidence against the endpoint
            # it failed on (a stalling adversary surfaces as repeated
            # RpcTimeouts); the pool's policy weighs it (no-op when
            # scoring is off).
            self.pool.report_misbehavior(pooled.name, "job-failure",
                                         detail=job.error or "")
            if self._obs.enabled:
                self._obs.gauge("fleet.inflight").set(self._inflight)
            if (
                job.endpoint is not None
                and not self.pool.can_ever_run(job.endpoint)
            ):
                # The pinned endpoint departed mid-campaign: fail fast
                # with a distinguishable result instead of burning the
                # retry budget spinning on a dead pin.
                job.error = f"ENDPOINT_DEPARTED: {job.endpoint} ({job.error})"
                self._harvest_deferred(pooled)
                self._finish_job(job, None, failed=True,
                                 endpoint_name=pooled.name)
                return
            if job.attempts < self.retry_policy.max_attempts:
                delay = self.retry_policy.delay_for(job.attempts, self.rng)
                job.attempts += 1
                self.report.retries += 1
                if self._obs.enabled:
                    self._obs.counter("fleet.jobs_retried").inc()
                    self._obs.emit("fleet", "job-retry", job=job.name,
                                   attempt=job.attempts, delay=delay,
                                   endpoint=pooled.name, error=job.error)
                self._pending_requeues += 1
                self.sim.schedule(delay, self._wake.put, ("requeue", job))
            else:
                self._harvest_deferred(pooled)
                self._finish_job(job, None, failed=True,
                                 endpoint_name=pooled.name)
            return
        # kind == "done"
        job, pooled, result = item[1], item[2], item[3]
        self._inflight -= 1
        self.pool.release(pooled, failed=False)
        if self._obs.enabled:
            self._obs.gauge("fleet.inflight").set(self._inflight)
        self._harvest_deferred(pooled)
        self._harvest_misbehavior(pooled)
        self._finish_job(job, result, failed=False,
                         endpoint_name=pooled.name)

    def _harvest_deferred(self, pooled: PooledEndpoint) -> None:
        """Fold newly observed late nsend_nowait failures into results."""
        handle = pooled.handle
        if handle is None:
            return
        errors = handle.deferred_errors
        fresh = len(errors) - pooled.deferred_reported
        if fresh <= 0:
            return
        pooled.deferred_reported = len(errors)
        self.aggregator.total.counters.add("deferred_send_errors", fresh)
        self.aggregator.endpoint(pooled.name).counters.add(
            "deferred_send_errors", fresh
        )
        if self._obs.enabled:
            self._obs.counter("fleet.deferred_send_errors").inc(fresh)
            self._obs.emit("fleet", "deferred-errors",
                           endpoint=pooled.name, fresh=fresh)

    def _harvest_misbehavior(self, pooled: PooledEndpoint) -> None:
        """Fold newly observed session evidence into scoring + results.

        Evidence accumulates on the handle (violations, budget
        exhaustions, silent abandons); the pooled endpoint tracks
        high-water marks so each offence is counted exactly once even
        though harvesting runs after every job on the shared session.
        """
        handle = pooled.handle
        if handle is None:
            return
        violations = handle.violations
        fresh = len(violations) - pooled.violations_reported
        if fresh > 0:
            pooled.violations_reported = len(violations)
            self.aggregator.total.counters.add("protocol_violations", fresh)
            self.aggregator.endpoint(pooled.name).counters.add(
                "protocol_violations", fresh
            )
            for violation in violations[-fresh:]:
                kind = violation.kind
                if kind not in ("decode-error", "stream-overflow"):
                    kind = "sequence-violation"
                self.pool.report_misbehavior(pooled.name, kind,
                                             detail=violation.detail)
        exhaustions = handle.budget_exhaustions
        fresh = exhaustions - pooled.exhaustions_reported
        if fresh > 0:
            pooled.exhaustions_reported = exhaustions
            self.aggregator.total.counters.add("budget_exhaustions", fresh)
            self.aggregator.endpoint(pooled.name).counters.add(
                "budget_exhaustions", fresh
            )
            misbehavior = handle.misbehavior
            kind = misbehavior.kind if misbehavior is not None \
                else "budget-exhausted"
            self.pool.report_misbehavior(pooled.name, kind, count=fresh)
        abandons = getattr(handle, "abandons", 0)
        fresh = abandons - pooled.abandons_reported
        if fresh > 0:
            pooled.abandons_reported = abandons
            self.aggregator.total.counters.add("silent_abandons", fresh)
            self.aggregator.endpoint(pooled.name).counters.add(
                "silent_abandons", fresh
            )
            self.pool.report_misbehavior(pooled.name, "silent-abandon",
                                         count=fresh)
        # Unanswered commands are stall evidence even when the caller
        # absorbed the RpcTimeout into a partial-but-completed result.
        timeouts = getattr(handle, "rpc_timeouts", 0)
        fresh = timeouts - pooled.timeouts_reported
        if fresh > 0:
            pooled.timeouts_reported = timeouts
            self.aggregator.total.counters.add("rpc_timeouts", fresh)
            self.aggregator.endpoint(pooled.name).counters.add(
                "rpc_timeouts", fresh
            )
            self.pool.report_misbehavior(pooled.name, "rpc-timeout",
                                         count=fresh)

    def _finish_job(self, job: CampaignJob, result, failed: bool,
                    endpoint_name: str) -> None:
        self._outstanding -= 1
        metrics = None
        if not failed and job.metrics is not None:
            metrics = job.metrics(result)
        group = job.group
        if group is not None:
            # Cross-validated: park the member; rollups happen (with
            # outlier filtering) when the whole group has reported.
            group.members.append((endpoint_name or "(none)", metrics, failed))
            if len(group.members) >= group.expect:
                self._adjudicate(group)
        else:
            self.aggregator.observe(endpoint_name or "(none)", metrics,
                                    failed=failed, job=job.name,
                                    error=job.error)
        if failed:
            self.report.jobs_failed += 1
            if self._obs.enabled:
                self._obs.counter("fleet.jobs_failed").inc()
                self._obs.emit("fleet", "job-failed", job=job.name,
                               endpoint=endpoint_name, error=job.error)
        else:
            self.report.jobs_completed += 1
            if self._obs.enabled:
                self._obs.counter("fleet.jobs_completed").inc()

    def _adjudicate(self, group: _ReplicaGroup) -> None:
        """Compare a completed replica group; flag and discard outliers."""
        config = self.cross_validate
        fingerprint = (
            config.fingerprint if config is not None
            and config.fingerprint is not None else counters_fingerprint
        )
        fingerprints = [
            fingerprint(metrics)
            for _, metrics, failed in group.members
            if not failed and metrics is not None
        ]
        majority, votes = majority_fingerprint(fingerprints)
        # A single vote proves nothing; demand a 2-of-k quorum before
        # accusing anyone.
        quorum = majority is not None and votes >= 2
        counters = self.aggregator.total.counters
        counters.add("cross_validation_groups", 1)
        if not quorum:
            counters.add("cross_validation_inconclusive", 1)
        for endpoint_name, metrics, failed in group.members:
            outlier = (
                quorum and not failed and metrics is not None
                and fingerprint(metrics) != majority
            )
            if outlier:
                # The job completed, but its numbers disagree with the
                # quorum: keep them out of the rollups and score the
                # endpoint that produced them.
                self.aggregator.observe(endpoint_name, None, failed=False,
                                        job=group.name,
                                        error="cross-validation outlier")
                counters.add("cross_validation_outliers", 1)
                self.aggregator.endpoint(endpoint_name).counters.add(
                    "cross_validation_outliers", 1
                )
                self.pool.report_misbehavior(
                    endpoint_name, "result-mismatch",
                    detail=f"group {group.name}",
                )
                if self._obs.enabled:
                    self._obs.counter("fleet.cross_validation_outliers").inc()
                    self._obs.emit("fleet", "cross-validation-outlier",
                                   job=group.name, endpoint=endpoint_name)
            else:
                self.aggregator.observe(endpoint_name, metrics, failed=failed,
                                        job=group.name)

    def _note_queue_depth(self) -> None:
        if self._obs.enabled:
            self._obs.gauge("fleet.queue_depth").set(len(self._queue))
