"""Streaming result aggregation for measurement campaigns.

A 500-endpoint campaign must produce one report without buffering every
raw probe result in controller memory. The aggregator therefore keeps
only *mergeable* state:

- :class:`CounterSet` — named integer/float accumulators,
- :class:`QuantileSketch` — a log-bucketed distribution sketch (bounded
  size, exact count/sum/min/max, approximate quantiles with a fixed
  relative error set by the bucket growth factor),

rolled up twice: once per endpoint and once campaign-wide. Everything is
deterministic — same inputs in the same order produce byte-identical
JSON — which is what lets the fleet benchmark assert that two same-seed
campaign runs agree to the byte.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Optional

# Bucket boundaries grow by 10% per bucket: quantile estimates carry at
# most ~5% relative error, and a sketch spanning 1 ns .. 100 s needs only
# a few hundred buckets.
GROWTH = 1.1
_LOG_GROWTH = math.log(GROWTH)

# Version stamp for the JSONL export layout (jsonl_lines/export_jsonl).
# v2 added the stamp itself plus the full mergeable ``state`` of every
# rollup, making the export lossless: an ingester can reconstruct the
# aggregator (sketches included) and keep merging, which is what the
# results warehouse does.
AGGREGATE_SCHEMA_VERSION = 2


class QuantileSketch:
    """Log-bucketed streaming quantile sketch (mergeable, deterministic).

    Values are assigned to bucket ``floor(log(v) / log(GROWTH))``; a
    quantile query returns the geometric midpoint of the bucket holding
    the target rank. Non-positive values land in a dedicated underflow
    bucket reported as 0.0.
    """

    __slots__ = ("buckets", "underflow", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.underflow = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self.underflow += 1
            return
        index = math.floor(math.log(value) / _LOG_GROWTH)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def merge(self, other: "QuantileSketch") -> None:
        self.count += other.count
        self.sum += other.sum
        self.underflow += other.underflow
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for index, bucket_count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (0 <= q <= 1); 0.0 on an empty sketch."""
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = self.underflow
        if seen >= target:
            return 0.0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                # Geometric midpoint of [GROWTH**i, GROWTH**(i+1)).
                return GROWTH ** (index + 0.5)
        return self.max if self.max is not None else 0.0

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def state_dict(self) -> dict:
        """Full mergeable state (lossless, unlike the display dict)."""
        return {
            "buckets": [[index, self.buckets[index]]
                        for index in sorted(self.buckets)],
            "underflow": self.underflow,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuantileSketch":
        sketch = cls()
        sketch.buckets = {int(index): int(count)
                          for index, count in state.get("buckets", [])}
        sketch.underflow = int(state.get("underflow", 0))
        sketch.count = int(state.get("count", 0))
        sketch.sum = float(state.get("sum", 0.0))
        sketch.min = state.get("min")
        sketch.max = state.get("max")
        return sketch

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class CounterSet:
    """Named additive accumulators (mergeable)."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: dict[str, float] = {}

    def add(self, name: str, amount: float = 1) -> None:
        self.values[name] = self.values.get(name, 0) + amount

    def merge(self, other: "CounterSet") -> None:
        for name, value in other.values.items():
            self.values[name] = self.values.get(name, 0) + value

    def get(self, name: str) -> float:
        return self.values.get(name, 0)

    def to_dict(self) -> dict:
        return {name: self.values[name] for name in sorted(self.values)}

    @classmethod
    def from_state(cls, state: dict) -> "CounterSet":
        counters = cls()
        counters.values = dict(state)
        return counters


class Rollup:
    """One aggregation scope: counters + a sketch per value stream."""

    __slots__ = ("counters", "sketches", "jobs", "failures")

    def __init__(self) -> None:
        self.counters = CounterSet()
        self.sketches: dict[str, QuantileSketch] = {}
        self.jobs = 0
        self.failures = 0

    def sketch(self, name: str) -> QuantileSketch:
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = QuantileSketch()
        return sketch

    def absorb(self, metrics: dict) -> None:
        """Fold one job's metrics dict into this rollup.

        ``metrics`` uses the campaign convention::

            {"counters": {name: amount, ...},
             "values": {stream: [floats], ...}}
        """
        for name, amount in (metrics.get("counters") or {}).items():
            self.counters.add(name, amount)
        for name, values in (metrics.get("values") or {}).items():
            self.sketch(name).extend(values)

    def merge(self, other: "Rollup") -> None:
        self.jobs += other.jobs
        self.failures += other.failures
        self.counters.merge(other.counters)
        for name in other.sketches:
            self.sketch(name).merge(other.sketches[name])

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "failures": self.failures,
            "counters": self.counters.to_dict(),
            "values": {
                name: self.sketches[name].to_dict()
                for name in sorted(self.sketches)
            },
        }

    def state_dict(self) -> dict:
        """Lossless mergeable state (counters + raw sketch buckets)."""
        return {
            "jobs": self.jobs,
            "failures": self.failures,
            "counters": self.counters.to_dict(),
            "sketches": {
                name: self.sketches[name].state_dict()
                for name in sorted(self.sketches)
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "Rollup":
        rollup = cls()
        rollup.jobs = int(state.get("jobs", 0))
        rollup.failures = int(state.get("failures", 0))
        rollup.counters = CounterSet.from_state(state.get("counters") or {})
        for name, sketch_state in (state.get("sketches") or {}).items():
            rollup.sketches[name] = QuantileSketch.from_state(sketch_state)
        return rollup


def counters_fingerprint(metrics: Optional[dict]) -> str:
    """Canonical fingerprint of a job's counter metrics.

    Cross-validation compares redundant runs of the same job on
    different endpoints.  Value streams (RTTs) legitimately differ
    between vantage points, but the *counters* — probes sent, replies
    received, losses — describe what the endpoint claims happened and
    must agree; a fabricating endpoint shows up as the counter outlier.
    """
    counters = (metrics or {}).get("counters") or {}
    return json.dumps(counters, sort_keys=True, separators=(",", ":"))


def majority_fingerprint(
    fingerprints: Iterable[str],
) -> tuple[Optional[str], int]:
    """The most common fingerprint and its vote count (ties break on the
    smaller fingerprint string, keeping adjudication deterministic)."""
    votes: dict[str, int] = {}
    for fingerprint in fingerprints:
        votes[fingerprint] = votes.get(fingerprint, 0) + 1
    if not votes:
        return None, 0
    winner = min(votes, key=lambda fp: (-votes[fp], fp))
    return winner, votes[winner]


class ResultAggregator:
    """Streaming per-endpoint + campaign-level rollups.

    ``observe`` is called once per finished job with the job's extracted
    metrics; raw results are never retained. ``report`` produces a
    deterministic plain-dict summary, and ``export_jsonl`` streams it as
    one campaign line plus one line per endpoint.
    """

    def __init__(self, campaign: str = "campaign") -> None:
        self.campaign = campaign
        self.total = Rollup()
        self.per_endpoint: dict[str, Rollup] = {}
        self.jobs_observed = 0

    def endpoint(self, name: str) -> Rollup:
        rollup = self.per_endpoint.get(name)
        if rollup is None:
            rollup = self.per_endpoint[name] = Rollup()
        return rollup

    def observe(self, endpoint_name: str, metrics: Optional[dict],
                failed: bool = False, job: Optional[str] = None,
                error: Optional[str] = None) -> None:
        """Fold one finished job into the rollups.

        ``job``/``error`` identify the completion for subclasses that
        record per-job rows (the warehouse tee); the streaming rollups
        themselves ignore them.
        """
        self.jobs_observed += 1
        for rollup in (self.total, self.endpoint(endpoint_name)):
            rollup.jobs += 1
            if failed:
                rollup.failures += 1
            if metrics:
                rollup.absorb(metrics)

    # -- export ---------------------------------------------------------------

    def report(self) -> dict:
        return {
            "campaign": self.campaign,
            "jobs_observed": self.jobs_observed,
            "aggregate": self.total.to_dict(),
            "endpoints": {
                name: self.per_endpoint[name].to_dict()
                for name in sorted(self.per_endpoint)
            },
        }

    def to_json(self) -> str:
        """Canonical (byte-stable) JSON encoding of the report."""
        return json.dumps(self.report(), sort_keys=True,
                          separators=(",", ":"))

    def jsonl_lines(self) -> list[str]:
        """One campaign line + one line per endpoint, schema-versioned.

        Key order is stable (``sort_keys``) and every line carries both
        the human-readable display dict and the lossless mergeable
        ``state``, so export → ingest → re-aggregate is an identity
        (see :meth:`from_jsonl_lines`).
        """
        lines = [json.dumps(
            {"record": "campaign", "schema_version": AGGREGATE_SCHEMA_VERSION,
             "campaign": self.campaign,
             "jobs_observed": self.jobs_observed,
             "aggregate": self.total.to_dict(),
             "state": self.total.state_dict()},
            sort_keys=True, separators=(",", ":"),
        )]
        for name in sorted(self.per_endpoint):
            lines.append(json.dumps(
                {"record": "endpoint",
                 "schema_version": AGGREGATE_SCHEMA_VERSION,
                 "campaign": self.campaign, "endpoint": name,
                 "state": self.per_endpoint[name].state_dict(),
                 **self.per_endpoint[name].to_dict()},
                sort_keys=True, separators=(",", ":"),
            ))
        return lines

    @classmethod
    def from_jsonl_lines(cls, lines: Iterable[str]) -> "ResultAggregator":
        """Reconstruct an aggregator from its own JSONL export."""
        aggregator = cls()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            version = record.get("schema_version")
            if version != AGGREGATE_SCHEMA_VERSION:
                raise ValueError(
                    f"aggregate JSONL schema_version {version!r} "
                    f"(this reader speaks {AGGREGATE_SCHEMA_VERSION})"
                )
            kind = record.get("record")
            if kind == "campaign":
                aggregator.campaign = record["campaign"]
                aggregator.jobs_observed = int(record["jobs_observed"])
                aggregator.total = Rollup.from_state(record["state"])
            elif kind == "endpoint":
                aggregator.per_endpoint[record["endpoint"]] = \
                    Rollup.from_state(record["state"])
        return aggregator

    def export_jsonl(self, path: str) -> int:
        lines = self.jsonl_lines()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)
