"""The PacketLab measurement endpoint agent.

An endpoint is "a lightweight packet source/sink" (§1): it executes the
Table 1 command set on behalf of an authenticated experiment controller
and nothing else. This module ties together the pieces:

- session establishment (Hello/Auth with certificate verification),
- the per-session capture buffer, send queue, sockets, and monitors,
- priority contention across concurrent sessions (§3.3),
- the rendezvous subscription loop (§3.2).

The endpoint never interprets experiment logic; every decision it makes is
either a certificate/monitor check or a mechanical command execution.
"""

from __future__ import annotations

from random import Random as _Random
import time as _time
from typing import Generator, Optional

from repro.endpoint.auth import AuthError, AuthorizedExperiment, verify_auth
from repro.endpoint.capture import CaptureBuffer
from repro.endpoint.config import EndpointConfig
from repro.endpoint.contention import ContentionManager
from repro.endpoint.memory import (
    MEMORY_SIZE,
    EndpointMemory,
    MemoryError_,
    MonitorInfoView,
)
from repro.endpoint.netio import (
    EndpointSocket,
    RawEndpointSocket,
    TcpEndpointSocket,
    UdpEndpointSocket,
)
from repro.endpoint.sendqueue import SendQueue
from repro.filtervm.program import FilterProgram, ProgramError
from repro.filtervm.verify import VerifierReport, verify as verify_filter
from repro.filtervm.vm import FilterVM
from repro.netsim.kernel import any_of
from repro.netsim.node import Node
from repro.netsim.stack.tcp import TcpError
from repro.proto.constants import (
    ERR_MONITOR_REJECTED,
    PROTOCOL_VERSION,
    SOCK_RAW,
    SOCK_TCP,
    SOCK_UDP,
    ST_BAD_ARGUMENT,
    ST_BAD_SOCKET,
    ST_CONNECT_FAILED,
    ST_MEM_FAULT,
    ST_OK,
    ST_UNSUPPORTED,
)
from repro.proto.constants import END_PROTOCOL_ERROR
from repro.proto.framing import FramingError, MessageStream, UndecodableFrame
from repro.proto.statemachine import ROLE_ENDPOINT, SessionStateMachine
from repro.proto.messages import (
    Auth,
    AuthFail,
    AuthOk,
    Bye,
    Hello,
    Interrupted,
    Message,
    MRead,
    MWrite,
    NCap,
    NClose,
    NOpen,
    NPoll,
    NSend,
    PollData,
    RdzExperiment,
    RdzHeartbeat,
    RdzSubscribe,
    Result,
    Resumed,
    SessionEnd,
    Yield,
)
from repro.rendezvous.descriptor import ExperimentDescriptor
from repro.util.byteio import DecodeError

# Verifier reports travel in AuthFail.report (str_u16) and Result.payload;
# keep them bounded so a pathological program can't bloat the handshake.
MAX_REPORT_CHARS = 4096


class MonitorRejected(Exception):
    """A filter/monitor program failed static verification at install time.

    Carries the full :class:`VerifierReport` so the rejection sent back to
    the controller can explain *why* (instead of the endpoint silently
    deny-listing every packet when the broken monitor faults at runtime).
    """

    def __init__(self, index: int, report: VerifierReport) -> None:
        errors = report.errors
        summary = errors[0].render() if errors else "rejected"
        super().__init__(f"monitor {index} rejected: {summary}")
        self.index = index
        self.report = report


def admit_filter_program(
    program: FilterProgram, *, obs, fuel_limit: int, kind: str = "monitor"
) -> VerifierReport:
    """Statically verify a program at its trust boundary (install time).

    This is the endpoint's single admission gate: certificate monitors and
    ``ncap`` capture filters both pass through it before any packet does.
    Emits ``filtervm.verify_ok`` / ``filtervm.verify_rejected`` counters, a
    ``filtervm.verify`` span, and a wall-clock histogram (verification runs
    synchronously, so its cost is real time, not simulated time).
    """
    span = obs.span("filtervm", "verify", kind=kind) if obs.enabled else None
    # simlint: ok[DET001] measures real verifier cost for telemetry only
    wall_start = _time.perf_counter()
    report = verify_filter(program, info_size=MEMORY_SIZE,
                           fuel_limit=fuel_limit)
    wall = _time.perf_counter() - wall_start  # simlint: ok[DET001] same wall-cost measurement; never reaches sim state
    if obs.enabled:
        span.end(ok=report.ok, errors=len(report.errors),
                 warnings=len(report.warnings))
        obs.histogram("filtervm.verify_wall_s").observe(wall)
        name = "filtervm.verify_ok" if report.ok else "filtervm.verify_rejected"
        obs.counter(name).inc()
    return report


def _decode_failure_report(exc: Exception) -> VerifierReport:
    report = VerifierReport()
    report.error("decode", str(exc))
    return report


class Session:
    """One controller's interactive session with the endpoint."""

    def __init__(
        self,
        endpoint: "Endpoint",
        stream: MessageStream,
        authorized: AuthorizedExperiment,
        session_id: int,
    ) -> None:
        self.endpoint = endpoint
        self.stream = stream
        self.authorized = authorized
        self.session_id = session_id
        self.priority = authorized.priority
        self.name = f"{endpoint.config.name}-session{session_id}"
        sim = endpoint.node.sim
        self._obs = sim.obs

        limit = endpoint.config.capture_buffer_bytes
        cert_limit = authorized.chain_result.restrictions.buffer_limit
        if cert_limit is not None:
            limit = min(limit, cert_limit)
        self.buffer = CaptureBuffer(sim, limit)
        self.send_queue = SendQueue(sim, endpoint.node.clock)
        self.sockets: dict[int, EndpointSocket] = {}
        self.monitors: list[FilterVM] = []
        info_view = MonitorInfoView(endpoint.memory)
        for index, program_bytes in enumerate(
            authorized.chain_result.monitors
        ):
            try:
                program = FilterProgram.decode(program_bytes)
            except (DecodeError, ProgramError) as exc:
                raise MonitorRejected(
                    index, _decode_failure_report(exc)
                ) from exc
            report = admit_filter_program(
                program, obs=self._obs,
                fuel_limit=endpoint.config.monitor_fuel,
            )
            if not report.ok:
                raise MonitorRejected(index, report)
            vm = FilterVM(program, info=info_view,
                          fuel_limit=endpoint.config.monitor_fuel,
                          obs=self._obs)
            vm.run_init()
            self.monitors.append(vm)

        self.suspended = False
        # Sequencing judge for controller→endpoint traffic; the session
        # is created post-auth, so it starts established.
        self.machine = SessionStateMachine(ROLE_ENDPOINT, start_established=True)
        self.decode_errors = 0
        self._resume_event = sim.event(name=f"{self.name}-resume")
        self.outbox = sim.queue(name=f"{self.name}-outbox")
        self._writer = None
        self.ended = False
        self.commands_processed = 0
        # Fired once with the end reason ("bye" | "transport" | "eof");
        # supervisors wait on this to decide whether to re-dial.
        self.end_event = sim.event(name=f"{self.name}-end")
        self.end_reason: Optional[str] = None

    # -- contention protocol ---------------------------------------------------

    def on_suspend(self, by_priority: int) -> None:
        if not self.suspended:
            self.suspended = True
            self._resume_event = self.endpoint.node.sim.event(
                name=f"{self.name}-resume"
            )
            self.outbox.put(Interrupted(by_priority=by_priority))

    def on_resume(self) -> None:
        if self.suspended:
            self.suspended = False
            self._resume_event.fire(None)
            self.outbox.put(Resumed())

    # -- monitor checks ----------------------------------------------------------

    def check_send(self, packet_bytes: bytes) -> bool:
        """All certificate monitors must allow an outgoing packet."""
        for monitor in self.monitors:
            if monitor.has_entry("send"):
                if monitor.invoke("send", packet=packet_bytes,
                                  args=(0, len(packet_bytes))) == 0:
                    obs = self._obs
                    if obs.enabled:
                        obs.counter("endpoint.monitor_send_denied").inc()
                        obs.emit("endpoint", "monitor-deny",
                                 session=self.name, direction="send")
                    return False
        return True

    def check_recv(self, packet_bytes: bytes) -> bool:
        """All certificate monitors must allow a captured packet."""
        for monitor in self.monitors:
            if monitor.has_entry("recv"):
                if monitor.invoke("recv", packet=packet_bytes,
                                  args=(0, len(packet_bytes))) == 0:
                    obs = self._obs
                    if obs.enabled:
                        obs.counter("endpoint.monitor_recv_denied").inc()
                    return False
        return True

    # -- processes ---------------------------------------------------------------

    def start(self) -> None:
        sim = self.endpoint.node.sim
        self._writer = sim.spawn(self._write_loop(), name=f"{self.name}-writer")
        sim.spawn(self._command_loop(), name=f"{self.name}-commands")
        if self.endpoint.config.stream_captures:
            sim.spawn(self._streaming_loop(), name=f"{self.name}-streamer")
        adversary = self.endpoint.adversary
        if adversary is not None:
            adversary.on_session_start(self)

    def _streaming_loop(self) -> Generator:
        """Ablation mode: ship captures immediately (reqid 0 PollData)
        instead of waiting for npoll. Quantifies the §3.1 buffering
        decision; not part of the paper's design."""
        while not self.ended:
            yield self.buffer.wait_for_data()
            if self.ended:
                return
            records, dropped_packets, dropped_bytes = self.buffer.drain()
            if records:
                self.send_message(
                    PollData(
                        reqid=0,
                        dropped_packets=dropped_packets,
                        dropped_bytes=dropped_bytes,
                        records=records,
                    )
                )

    def _write_loop(self) -> Generator:
        """Single writer serializing all frames onto the control stream.

        Shutdown is ordered by the outbox's None sentinel, which
        ``_cleanup`` enqueues *after* any farewell message — checking
        ``self.ended`` here instead would drop the SessionEnd a Bye just
        queued, leaving the controller unable to tell a clean goodbye
        from a dead session.
        """
        while True:
            message = yield self.outbox.get()
            if message is None:
                return
            try:
                yield from self.stream.send(message)
            except TcpError:
                return

    def send_message(self, message: Message) -> None:
        adversary = self.endpoint.adversary
        if adversary is not None:
            message = adversary.outgoing(self, message)
        self.outbox.put(message)

    def _over_session_budget(self) -> bool:
        config = self.endpoint.config
        return (
            len(self.machine.violations) > config.session_violation_budget
            or self.decode_errors > config.session_decode_budget
        )

    def _note_violation(self, violation) -> None:
        if self._obs.enabled:
            self._obs.counter("proto.sequence_violations",
                              kind=violation.kind, side="endpoint").inc()
            self._obs.emit("proto", "sequence-violation", session=self.name,
                           kind=violation.kind, message=violation.message,
                           detail=violation.detail)

    def _command_loop(self) -> Generator:
        reason = "transport"
        adversary = self.endpoint.adversary
        try:
            while True:
                try:
                    message = yield from self.stream.recv()
                except UndecodableFrame:
                    # The frame boundary survived: charge the decode
                    # budget and keep serving until it runs out.
                    self.decode_errors += 1
                    self._note_violation(
                        self.machine.record("decode-error")
                    )
                    if self._over_session_budget():
                        self.send_message(
                            SessionEnd(reason=END_PROTOCOL_ERROR)
                        )
                        reason = END_PROTOCOL_ERROR
                        break
                    continue
                except (TcpError, FramingError):
                    reason = "transport"
                    break
                if message is None:
                    reason = "eof"
                    break
                # Suspended sessions hold commands until control returns
                # (§3.3); Bye is honoured immediately so a preempted
                # controller can still leave cleanly.
                while self.suspended and not isinstance(message, Bye):
                    yield self._resume_event
                violation = self.machine.observe(message)
                if violation is not None:
                    self._note_violation(violation)
                    if self._over_session_budget():
                        self.send_message(
                            SessionEnd(reason=END_PROTOCOL_ERROR)
                        )
                        reason = END_PROTOCOL_ERROR
                        break
                    # Out-of-place but well-formed: report and drop, as
                    # the old unknown-command path did.
                    self.send_message(Result(reqid=0, status=ST_BAD_ARGUMENT))
                    continue
                self.commands_processed += 1
                if self._obs.enabled:
                    self._obs.counter(
                        "endpoint.ops", op=type(message).__name__.lower()
                    ).inc()
                if isinstance(message, Bye):
                    self.send_message(SessionEnd(reason="bye"))
                    reason = "bye"
                    break
                if isinstance(message, Yield):
                    self.endpoint.contention.yield_control(self)
                    continue
                if adversary is not None and adversary.intercept_command(
                    self, message
                ):
                    continue
                yield from self._dispatch(message)
        finally:
            self._cleanup(reason)

    def _dispatch(self, message: Message) -> Generator:
        if isinstance(message, NOpen):
            yield from self._handle_nopen(message)
        elif isinstance(message, NClose):
            self._handle_nclose(message)
        elif isinstance(message, NSend):
            self._handle_nsend(message)
        elif isinstance(message, NCap):
            self._handle_ncap(message)
        elif isinstance(message, NPoll):
            yield from self._handle_npoll(message)
        elif isinstance(message, MRead):
            self._handle_mread(message)
        elif isinstance(message, MWrite):
            self._handle_mwrite(message)
        else:
            # Unknown command in an established session: report and drop.
            self.send_message(Result(reqid=0, status=ST_BAD_ARGUMENT))

    # -- command handlers -----------------------------------------------------------

    def _handle_nopen(self, message: NOpen) -> Generator:
        endpoint = self.endpoint
        if (
            message.sktid in self.sockets
            or not 0 <= message.sktid < endpoint.config.max_sockets
        ):
            self.send_message(Result(reqid=message.reqid, status=ST_BAD_SOCKET))
            return
        if message.proto == SOCK_RAW:
            if not endpoint.config.allow_raw:
                self.send_message(Result(reqid=message.reqid, status=ST_UNSUPPORTED))
                return
            socket: EndpointSocket = RawEndpointSocket(
                message.sktid,
                endpoint.node,
                self.buffer,
                endpoint.clock_ticks,
                self.check_recv,
                MonitorInfoView(endpoint.memory),
                exempt=endpoint.is_control_traffic,
            )
        elif message.proto == SOCK_UDP:
            try:
                socket = UdpEndpointSocket(
                    message.sktid,
                    endpoint.node,
                    self.buffer,
                    endpoint.clock_ticks,
                    self.check_recv,
                    locport=message.locport,
                    remaddr=message.remaddr,
                    remport=message.remport,
                )
            except RuntimeError:
                self.send_message(Result(reqid=message.reqid, status=ST_BAD_ARGUMENT))
                return
        elif message.proto == SOCK_TCP:
            try:
                conn = endpoint.node.tcp.connect(
                    message.remaddr, message.remport, src_port=message.locport
                )
                yield from conn.wait_established()
            except TcpError:
                self.send_message(
                    Result(reqid=message.reqid, status=ST_CONNECT_FAILED)
                )
                return
            socket = TcpEndpointSocket(
                message.sktid,
                endpoint.node,
                self.buffer,
                endpoint.clock_ticks,
                self.check_recv,
                conn,
            )
        else:
            self.send_message(Result(reqid=message.reqid, status=ST_BAD_ARGUMENT))
            return
        self.sockets[message.sktid] = socket
        self.send_message(Result(reqid=message.reqid, status=ST_OK))

    def _handle_nclose(self, message: NClose) -> None:
        socket = self.sockets.pop(message.sktid, None)
        if socket is None:
            self.send_message(Result(reqid=message.reqid, status=ST_BAD_SOCKET))
            return
        self.send_queue.cancel_for_socket(socket)
        socket.close()
        self.send_message(Result(reqid=message.reqid, status=ST_OK))

    def _handle_nsend(self, message: NSend) -> None:
        socket = self.sockets.get(message.sktid)
        if socket is None:
            self.send_message(Result(reqid=message.reqid, status=ST_BAD_SOCKET))
            return
        socket.pending_sends += 1

        def on_fire(entry) -> bool:
            socket.pending_sends -= 1
            return socket.send_scheduled(entry.data, self.check_send)

        self.send_queue.schedule(socket, message.data, message.time, on_fire)
        self.send_message(Result(reqid=message.reqid, status=ST_OK))

    def _handle_ncap(self, message: NCap) -> None:
        socket = self.sockets.get(message.sktid)
        if socket is None:
            self.send_message(Result(reqid=message.reqid, status=ST_BAD_SOCKET))
            return
        if not isinstance(socket, RawEndpointSocket):
            self.send_message(Result(reqid=message.reqid, status=ST_BAD_ARGUMENT))
            return
        try:
            program = FilterProgram.decode(message.filt)
        except (DecodeError, ProgramError):
            self.send_message(Result(reqid=message.reqid, status=ST_BAD_ARGUMENT))
            return
        # Same admission gate as certificate monitors: a capture filter
        # that would provably fault is rejected with its verifier report.
        report = admit_filter_program(
            program, obs=self._obs,
            fuel_limit=self.endpoint.config.monitor_fuel, kind="ncap",
        )
        if not report.ok:
            self.send_message(
                Result(
                    reqid=message.reqid,
                    status=ERR_MONITOR_REJECTED,
                    payload=report.render()[:MAX_REPORT_CHARS].encode(),
                )
            )
            return
        socket.install_filter(program, message.time)
        self.send_message(Result(reqid=message.reqid, status=ST_OK))

    def _handle_npoll(self, message: NPoll) -> Generator:
        endpoint = self.endpoint
        if self.buffer.is_empty:
            clock = endpoint.node.clock
            deadline_sim = clock.to_true_time(clock.from_ticks(message.time))
            now = endpoint.node.sim.now
            if deadline_sim > now:
                timeout = endpoint.node.sim.event(name="npoll-timeout")
                timer = endpoint.node.sim.schedule_at(deadline_sim, timeout.fire)
                yield any_of(
                    endpoint.node.sim, [self.buffer.wait_for_data(), timeout]
                )
                timer.cancel()
        records, dropped_packets, dropped_bytes = self.buffer.drain()
        self.send_message(
            PollData(
                reqid=message.reqid,
                dropped_packets=dropped_packets,
                dropped_bytes=dropped_bytes,
                records=records,
            )
        )

    def _handle_mread(self, message: MRead) -> None:
        try:
            data = self.endpoint.memory.read(message.memaddr, message.bytecnt)
        except MemoryError_:
            self.send_message(Result(reqid=message.reqid, status=ST_MEM_FAULT))
            return
        self.send_message(Result(reqid=message.reqid, status=ST_OK, payload=data))

    def _handle_mwrite(self, message: MWrite) -> None:
        try:
            self.endpoint.memory.write(message.memaddr, message.data)
        except MemoryError_:
            self.send_message(Result(reqid=message.reqid, status=ST_MEM_FAULT))
            return
        self.send_message(Result(reqid=message.reqid, status=ST_OK))

    # -- teardown -----------------------------------------------------------------

    def _cleanup(self, reason: str = "transport") -> None:
        if self.ended:
            return
        self.ended = True
        self.end_reason = reason
        if self._obs.enabled:
            self._obs.emit("endpoint", "session-end", session=self.name,
                           commands=self.commands_processed, reason=reason)
        for socket in self.sockets.values():
            socket.close()
        self.sockets.clear()
        self.send_queue.cancel_all()
        self.endpoint.contention.release(self)
        self.endpoint.sessions.pop(self.session_id, None)
        self.outbox.put(None)  # stop the writer
        self.endpoint.node.sim.schedule(0.05, self.stream.close)
        self.end_event.fire(reason)


class Endpoint:
    """A measurement endpoint agent running on a simulated host."""

    def __init__(self, node: Node, config: Optional[EndpointConfig] = None) -> None:
        self.node = node
        self.config = config or EndpointConfig()
        self.memory = EndpointMemory(self)
        self.memory.set_caps(self.config.caps())
        self.memory.set_addresses(ip=node.primary_address())
        self.contention = ContentionManager(obs=node.sim.obs)
        self.sessions: dict[int, Session] = {}
        self._next_session_id = 1
        self._seen_descriptors: set[bytes] = set()
        self.auth_failures = 0
        # Byzantine fault model: when set (FaultPlan.byzantine), every
        # session consults this adversary for stall/flood/fabricate/
        # desequence/tamper behaviors. None = honest endpoint.
        self.adversary = None
        # Crash-and-restart fault model (driven by netsim.faults).
        self.crashed = False
        self._restart_event = None
        self._rng = _Random(self.config.reconnect_seed)
        self._rdz_conns: list = []
        # Monotonic across subscription lifetimes (but reset by restart,
        # since a real endpoint loses its counter with its memory).
        self._heartbeat_seq = 0

    # -- memory/data plumbing -------------------------------------------------------

    def clock_ticks(self) -> int:
        return self.node.clock.ticks()

    def is_control_traffic(self, packet) -> bool:
        """True if a packet belongs to any session's control connection.

        Control connections are exempt from raw capture: consuming them
        would sever the session and mirroring them would leak other
        experimenters' control traffic.
        """
        from repro.packet.ipv4 import PROTO_TCP

        if packet.proto != PROTO_TCP or len(packet.payload) < 4:
            return False
        src_port = int.from_bytes(packet.payload[0:2], "big")
        dst_port = int.from_bytes(packet.payload[2:4], "big")
        for session in self.sessions.values():
            conn = session.stream.conn
            if (
                packet.src == conn.remote_ip
                and src_port == conn.remote_port
                and dst_port == conn.local_port
            ):
                return True
        return False

    def active_capture_buffer(self) -> Optional[CaptureBuffer]:
        active = self.contention.active
        if isinstance(active, Session):
            return active.buffer
        return None

    def active_sockets(self) -> dict[int, EndpointSocket]:
        active = self.contention.active
        if isinstance(active, Session):
            return active.sockets
        return {}

    # -- crash-and-restart fault model ----------------------------------------

    def crash(self) -> None:
        """Abruptly lose all state, as a real endpoint losing power would.

        Every control and rendezvous connection is aborted (the peer
        sees a reset, not a FIN) and session state dies with them. The
        endpoint stays down until :meth:`restart`.
        """
        if self.crashed:
            return
        self.crashed = True
        self._restart_event = self.node.sim.event(
            name=f"{self.config.name}-restart"
        )
        obs = self.node.sim.obs
        if obs.enabled:
            obs.counter("endpoint.crashes").inc()
            obs.emit("endpoint", "crash", endpoint=self.config.name,
                     sessions=len(self.sessions))
        for session in list(self.sessions.values()):
            session.stream.conn.abort()
        for conn in list(self._rdz_conns):
            conn.abort()
        # Liveness counter dies with the endpoint's memory; the restarted
        # process starts beaconing from zero again.
        self._heartbeat_seq = 0

    def restart(self) -> None:
        """Come back up after a crash; supervised connections re-dial."""
        if not self.crashed:
            return
        self.crashed = False
        obs = self.node.sim.obs
        if obs.enabled:
            obs.counter("endpoint.restarts").inc()
            obs.emit("endpoint", "restart", endpoint=self.config.name)
        event, self._restart_event = self._restart_event, None
        if event is not None:
            event.fire(None)

    # -- session establishment -------------------------------------------------

    def connect_to_controller(
        self, addr: int, port: int, descriptor_hash: bytes = b""
    ):
        """Contact an experiment controller and offer this endpoint.

        With ``config.reconnect`` the connection is supervised: a
        transport-level session loss (or a crash-and-restart) triggers
        re-dialing with exponential backoff until the controller says
        Bye or the retry budget is exhausted.
        """
        if self.config.reconnect:
            return self.node.spawn(
                self._supervised_connect(addr, port, descriptor_hash),
                name=f"{self.config.name}-supervise",
            )
        return self.node.spawn(
            self._session_startup(addr, port, descriptor_hash),
            name=f"{self.config.name}-connect",
        )

    def _supervised_connect(self, addr: int, port: int,
                            descriptor_hash: bytes) -> Generator:
        policy = self.config.reconnect_policy
        obs = self.node.sim.obs
        attempt = 0
        while True:
            if self.crashed:
                event = self._restart_event
                if event is not None:
                    yield event
                attempt = 0
                continue
            session = yield from self._session_startup(
                addr, port, descriptor_hash
            )
            if session is not None:
                attempt = 0
                reason = yield session.end_event
                if reason == "bye":
                    return None  # clean goodbye: the experiment is over
                continue  # re-dial immediately after an established session
            if attempt >= policy.max_attempts:
                if obs.enabled:
                    obs.emit("endpoint", "reconnect-giveup",
                             endpoint=self.config.name, attempts=attempt)
                return None
            delay = policy.delay_for(attempt, self._rng)
            attempt += 1
            if obs.enabled:
                obs.counter("endpoint.reconnect_attempts").inc()
                obs.emit("endpoint", "reconnect", endpoint=self.config.name,
                         attempt=attempt, delay=delay)
            yield delay

    def _session_startup(self, addr: int, port: int,
                         descriptor_hash: bytes) -> Generator:
        sim = self.node.sim
        if self.crashed:
            return None
        try:
            conn = yield from self.node.tcp.open_connection(addr, port)
        except TcpError:
            return None
        if self.crashed:
            conn.abort()
            return None
        stream = MessageStream(conn)
        try:
            yield from stream.send(
                Hello(
                    version=PROTOCOL_VERSION,
                    caps=self.config.caps(),
                    endpoint_name=self.config.name,
                    descriptor_hash=descriptor_hash,
                )
            )
        except TcpError:
            conn.close()
            return None
        # Wait for Auth, bounded by the configured timeout.
        def recv_safe() -> Generator:
            try:
                result = yield from stream.recv()
            except (TcpError, FramingError):
                return None
            return result

        auth_proc = sim.spawn(recv_safe(), name="auth-recv")
        timeout_event = sim.event(name="auth-timeout")
        timer = sim.schedule(self.config.auth_timeout, timeout_event.fire)
        index, _ = yield any_of(sim, [auth_proc.completion, timeout_event])
        if index == 1:
            auth_proc.kill()
            conn.close()
            return None
        timer.cancel()
        if auth_proc.error is not None or not isinstance(auth_proc.result, Auth):
            conn.close()
            return None
        auth: Auth = auth_proc.result
        try:
            authorized = verify_auth(auth, self.config.trusted_key_ids, sim.now)
        except AuthError as exc:
            self.auth_failures += 1
            if sim.obs.enabled:
                sim.obs.counter("endpoint.auth_failures").inc()
                sim.obs.emit("endpoint", "auth-fail",
                             endpoint=self.config.name, reason=str(exc))
            try:
                yield from stream.send(AuthFail(reason=str(exc)))
            except TcpError:
                pass
            conn.close()
            return None
        if self.crashed:
            # Crashed mid-handshake: the connection dies with everything else.
            conn.abort()
            return None
        try:
            session = Session(self, stream, authorized,
                              self._next_session_id)
        except MonitorRejected as exc:
            self.auth_failures += 1
            if sim.obs.enabled:
                sim.obs.counter("endpoint.auth_failures").inc()
                sim.obs.emit("endpoint", "auth-fail",
                             endpoint=self.config.name, reason=str(exc),
                             code=ERR_MONITOR_REJECTED)
            try:
                yield from stream.send(
                    AuthFail(
                        reason=str(exc),
                        code=ERR_MONITOR_REJECTED,
                        report=exc.report.render()[:MAX_REPORT_CHARS],
                    )
                )
            except TcpError:
                pass
            conn.close()
            return None
        self._next_session_id += 1
        self.sessions[session.session_id] = session
        if sim.obs.enabled:
            sim.obs.counter("endpoint.sessions_accepted").inc()
            sim.obs.emit("endpoint", "session-start", session=session.name,
                         priority=session.priority)
        try:
            yield from stream.send(
                AuthOk(session_id=session.session_id,
                       buffer_limit=session.buffer.capacity)
            )
        except TcpError:
            session._cleanup("transport")
            return None
        session.start()
        self.contention.request_control(session)
        return session

    # -- rendezvous subscription (§3.2) ---------------------------------------------------

    def start_rendezvous(self, rdz_addr: int, rdz_port: int):
        """Subscribe to rendezvous channels and chase published experiments.

        With ``config.reconnect`` the subscription is supervised: if the
        rendezvous server restarts (it is the persistent infrastructure —
        losing it should only be a blip), the endpoint resubscribes with
        backoff. Already-seen descriptors are deduplicated, so replays
        from the restarted server don't double-connect.
        """
        if self.config.reconnect:
            return self.node.spawn(
                self._rendezvous_supervisor(rdz_addr, rdz_port),
                name=f"{self.config.name}-rendezvous",
            )
        return self.node.spawn(
            self._rendezvous_once(rdz_addr, rdz_port),
            name=f"{self.config.name}-rendezvous",
        )

    def _rendezvous_once(self, rdz_addr: int, rdz_port: int) -> Generator:
        yield from self._rendezvous_loop(rdz_addr, rdz_port)
        return None

    def _rendezvous_supervisor(self, rdz_addr: int, rdz_port: int) -> Generator:
        policy = self.config.reconnect_policy
        obs = self.node.sim.obs
        attempt = 0
        while True:
            if self.crashed:
                event = self._restart_event
                if event is not None:
                    yield event
                attempt = 0
                continue
            subscribed = yield from self._rendezvous_loop(rdz_addr, rdz_port)
            if subscribed:
                attempt = 0  # connection held for a while; fresh budget
            if attempt >= policy.max_attempts:
                if obs.enabled:
                    obs.emit("endpoint", "rdz-giveup",
                             endpoint=self.config.name, attempts=attempt)
                return None
            delay = policy.delay_for(attempt, self._rng)
            attempt += 1
            if obs.enabled:
                obs.counter("endpoint.rdz_resubscribes").inc()
                obs.emit("endpoint", "rdz-resubscribe",
                         endpoint=self.config.name, attempt=attempt,
                         delay=delay)
            yield delay

    def _rendezvous_loop(self, rdz_addr: int, rdz_port: int) -> Generator:
        """One subscription lifetime; returns True once subscribed."""
        try:
            conn = yield from self.node.tcp.open_connection(rdz_addr, rdz_port)
        except TcpError:
            return False
        self._rdz_conns.append(conn)
        heartbeat_proc = None
        try:
            stream = MessageStream(conn)
            try:
                yield from stream.send(
                    RdzSubscribe(channels=tuple(self.config.trusted_key_ids))
                )
            except TcpError:
                return False
            if self.config.heartbeat_interval > 0:
                # Liveness rides the subscription stream: the reader loop
                # below is the stream's only consumer, the publisher its
                # only producer, so they share the connection safely.
                heartbeat_proc = self.node.spawn(
                    self._heartbeat_publisher(stream),
                    name=f"{self.config.name}-heartbeat",
                )
            while True:
                try:
                    message = yield from stream.recv()
                except (TcpError, FramingError):
                    return True
                if message is None:
                    return True
                if not isinstance(message, RdzExperiment):
                    continue
                try:
                    descriptor = ExperimentDescriptor.decode(message.descriptor)
                except DecodeError:
                    continue
                digest = descriptor.hash()
                if digest in self._seen_descriptors:
                    continue
                self._seen_descriptors.add(digest)
                self.connect_to_controller(
                    descriptor.controller_addr, descriptor.controller_port,
                    digest,
                )
        finally:
            if heartbeat_proc is not None and heartbeat_proc.alive:
                heartbeat_proc.kill()
            try:
                self._rdz_conns.remove(conn)
            except ValueError:
                pass

    def _heartbeat_publisher(self, stream: MessageStream) -> Generator:
        """Beacon liveness on the subscription stream until it dies."""
        interval = self.config.heartbeat_interval
        obs = self.node.sim.obs
        while True:
            yield interval
            if self.crashed:
                return None
            self._heartbeat_seq += 1
            try:
                yield from stream.send(
                    RdzHeartbeat(
                        endpoint_name=self.config.name,
                        seq=self._heartbeat_seq,
                    )
                )
            except TcpError:
                return None
            if obs.enabled:
                obs.counter("endpoint.heartbeats_sent").inc()
