"""The PacketLab measurement endpoint (§3.1): a lightweight packet
source/sink executing the Table 1 command set under certificate and
monitor control."""

from repro.endpoint.auth import AuthError, AuthorizedExperiment, verify_auth
from repro.endpoint.capture import CaptureBuffer
from repro.endpoint.config import EndpointConfig
from repro.endpoint.contention import ContentionManager
from repro.endpoint.endpoint import Endpoint, Session
from repro.endpoint.memory import (
    EndpointMemory,
    MemoryError_,
    MonitorInfoView,
    OFF_ADDR_IP,
    OFF_BUF_CAPACITY,
    OFF_BUF_DROPPED_BYTES,
    OFF_BUF_DROPPED_PKTS,
    OFF_BUF_USED,
    OFF_CAPS,
    OFF_CLOCK,
    SCRATCH_START,
)
from repro.endpoint.netio import (
    EndpointSocket,
    RawEndpointSocket,
    TcpEndpointSocket,
    UdpEndpointSocket,
)
from repro.endpoint.sendqueue import SendQueue

__all__ = [
    "AuthError",
    "AuthorizedExperiment",
    "CaptureBuffer",
    "ContentionManager",
    "Endpoint",
    "EndpointConfig",
    "EndpointMemory",
    "EndpointSocket",
    "MemoryError_",
    "MonitorInfoView",
    "OFF_ADDR_IP",
    "OFF_BUF_CAPACITY",
    "OFF_BUF_DROPPED_BYTES",
    "OFF_BUF_DROPPED_PKTS",
    "OFF_BUF_USED",
    "OFF_CAPS",
    "OFF_CLOCK",
    "RawEndpointSocket",
    "SCRATCH_START",
    "SendQueue",
    "Session",
    "TcpEndpointSocket",
    "UdpEndpointSocket",
    "verify_auth",
]
