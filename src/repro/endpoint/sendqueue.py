"""Scheduled transmission (the ``nsend`` time parameter, §3.1).

"To send data, the experiment controller uses the nsend command with a
time parameter that tells the endpoint when it should send the data...
The endpoint then attempts to send the data at the specified time,
recording the time it was actually sent."

Times are endpoint-local clock values; the queue converts them to simulator
time through the host clock model. A time in the past sends immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.netsim.clock import HostClock, NANOSECONDS
from repro.netsim.kernel import Simulator, Timer

if TYPE_CHECKING:
    from repro.endpoint.netio import EndpointSocket


class ScheduledSend:
    """One queued transmission.

    ``actual_ticks`` is the endpoint-local time the data actually left
    (the paper's "recording the time it was actually sent"); it stays
    ``None`` for sends that failed, were cancelled, or have not fired —
    tick 0 is a legitimate clock reading, not a sentinel.
    """

    __slots__ = ("socket", "data", "due_ticks", "timer", "done", "actual_ticks")

    def __init__(self, socket: "EndpointSocket", data: bytes, due_ticks: int) -> None:
        self.socket = socket
        self.data = data
        self.due_ticks = due_ticks
        self.timer: Optional[Timer] = None
        self.done = False
        self.actual_ticks: Optional[int] = None


class SendQueue:
    """Per-session queue of time-scheduled sends."""

    def __init__(self, sim: Simulator, clock: HostClock) -> None:
        self._sim = sim
        self._obs = sim.obs
        self._clock = clock
        self._pending: list[ScheduledSend] = []
        self.sends_completed = 0
        self.sends_failed = 0

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def schedule(
        self,
        socket: "EndpointSocket",
        data: bytes,
        due_ticks: int,
        on_fire: Callable[[ScheduledSend], bool],
    ) -> ScheduledSend:
        """Queue ``data`` to be sent at local time ``due_ticks``.

        ``on_fire`` performs the actual transmission (including monitor
        checks) and returns success. Fires immediately when the time is in
        the past.
        """
        entry = ScheduledSend(socket, data, due_ticks)
        due_local = self._clock.from_ticks(due_ticks)
        due_sim = self._clock.to_true_time(due_local)
        delay = max(0.0, due_sim - self._sim.now)
        self._pending.append(entry)

        def fire() -> None:
            if entry.done:
                return
            entry.done = True
            fired_ticks = self._clock.ticks()
            try:
                self._pending.remove(entry)
            except ValueError:
                pass
            obs = self._obs
            if obs.enabled:
                # How late the send fired relative to its requested time
                # (past-due requests fire immediately, so their whole
                # overdue interval shows up here).
                lag = max(0.0, self._sim.now - due_sim)
                obs.histogram("endpoint.sendqueue_lag_s").observe(lag)
            if on_fire(entry):
                # Only a successful transmission records a send time.
                entry.actual_ticks = fired_ticks
                self.sends_completed += 1
                entry.socket.note_send(fired_ticks)
                if obs.enabled:
                    obs.counter("endpoint.sends_completed").inc()
            else:
                self.sends_failed += 1
                if obs.enabled:
                    obs.counter("endpoint.sends_failed").inc()

        entry.timer = self._sim.schedule(delay, fire)
        return entry

    def cancel_for_socket(self, socket: "EndpointSocket") -> int:
        """Cancel pending sends when a socket closes; returns the count."""
        cancelled = 0
        for entry in list(self._pending):
            if entry.socket is socket:
                entry.done = True
                if entry.timer is not None:
                    entry.timer.cancel()
                self._pending.remove(entry)
                cancelled += 1
        return cancelled

    def cancel_all(self) -> int:
        count = 0
        for entry in list(self._pending):
            entry.done = True
            if entry.timer is not None:
                entry.timer.cancel()
            count += 1
        self._pending.clear()
        return count

    def pending_for_socket(self, socket: "EndpointSocket") -> int:
        return sum(1 for entry in self._pending if entry.socket is socket)
