"""The endpoint capture buffer (§3.1).

Received data is buffered at the endpoint until the controller polls with
``npoll``; this keeps the access link free of control traffic during a
measurement. When the buffer fills, the endpoint "simply stops reading
(and buffering) experiment data": for UDP and raw sockets that means
counted drops, for TCP it creates flow-control back pressure (the reader
process stops draining the TCP receive buffer). ``npoll`` reports the
packets and bytes dropped due to buffer exhaustion.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.kernel import Event, Simulator
from repro.proto.messages import CaptureRecord

# Per-record bookkeeping overhead charged against the buffer, so that many
# tiny records cannot evade the byte limit.
RECORD_OVERHEAD = 16


class CaptureBuffer:
    """Byte-bounded FIFO of capture records with drop accounting."""

    def __init__(self, sim: Simulator, capacity: int) -> None:
        self._sim = sim
        self._obs = sim.obs
        self.capacity = capacity
        self.used = 0
        self._records: list[CaptureRecord] = []
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.total_captured = 0
        self._data_waiters: list[Event] = []
        self._space_waiters: list[Event] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def is_empty(self) -> bool:
        return not self._records

    def space_for(self, size: int) -> bool:
        return self.used + size + RECORD_OVERHEAD <= self.capacity

    def push(self, record: CaptureRecord) -> bool:
        """Append a record; returns False (and counts the drop) if full."""
        size = len(record.data) + RECORD_OVERHEAD
        obs = self._obs
        if self.used + size > self.capacity:
            self.dropped_packets += 1
            self.dropped_bytes += len(record.data)
            if obs.enabled:
                obs.counter("endpoint.capture_dropped").inc()
            return False
        self._records.append(record)
        self.used += size
        self.total_captured += 1
        if obs.enabled:
            obs.counter("endpoint.captured").inc()
            # Occupancy as a fraction so buffers of any size compare.
            obs.gauge("endpoint.capture_occupancy").set(
                self.used / self.capacity if self.capacity else 1.0
            )
        waiters, self._data_waiters = self._data_waiters, []
        for event in waiters:
            event.fire(None)
        return True

    def note_drop(self, byte_count: int) -> None:
        """Account for data dropped before reaching the buffer (e.g. a
        UDP datagram discarded because the buffer had no room)."""
        self.dropped_packets += 1
        self.dropped_bytes += byte_count
        if self._obs.enabled:
            self._obs.counter("endpoint.capture_dropped").inc()

    def drain(self) -> tuple[tuple[CaptureRecord, ...], int, int]:
        """Remove and return all records plus the drop counters.

        Drop counters reset on drain: each npoll response reports the drops
        since the previous poll.
        """
        records = tuple(self._records)
        self._records.clear()
        self.used = 0
        if self._obs.enabled:
            self._obs.gauge("endpoint.capture_occupancy").set(0.0)
        dropped_packets, self.dropped_packets = self.dropped_packets, 0
        dropped_bytes, self.dropped_bytes = self.dropped_bytes, 0
        waiters, self._space_waiters = self._space_waiters, []
        for event in waiters:
            event.fire(None)
        return records, dropped_packets, dropped_bytes

    def wait_for_data(self) -> Event:
        """An event fired when the next record arrives (pre-fired if data
        is already buffered)."""
        event = Event(self._sim, name="capture-data")
        if self._records:
            event.fire(None)
        else:
            self._data_waiters.append(event)
        return event

    def wait_for_space(self, size: int) -> Event:
        """An event fired once the buffer can hold ``size`` more bytes
        (used by the TCP reader to realize back pressure)."""
        event = Event(self._sim, name="capture-space")
        if self.space_for(size):
            event.fire(None)
        else:
            self._space_waiters.append(event)
        return event
