"""Endpoint contention: priority-based time sharing of an endpoint (§3.3).

"At any given time, no more than one controller has control of an
endpoint... If an experiment controller asks an endpoint to run a
higher-priority experiment than what it is currently running, the endpoint
notifies the experiment controller of the current experiment that its
experiment has been interrupted, and then transfers control... The
interrupted experiment is suspended until the higher-priority experiment
completes or its controller suspends it by yielding control."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

if TYPE_CHECKING:
    from repro.obs import Observability


class ControlledSession(Protocol):
    """What the contention manager needs from a session."""

    priority: int
    name: str

    def on_suspend(self, by_priority: int) -> None: ...
    def on_resume(self) -> None: ...


class ContentionManager:
    """Grants exclusive control of the endpoint to one session at a time."""

    def __init__(self, obs: Optional["Observability"] = None) -> None:
        self.active: Optional[ControlledSession] = None
        self.suspended: list[ControlledSession] = []
        self.preemptions = 0
        self.resumptions = 0
        self._obs = obs

    def _note(self, event: str, session: ControlledSession,
              counter: Optional[str] = None) -> None:
        obs = self._obs
        if obs is not None and obs.enabled:
            if counter is not None:
                obs.counter(counter).inc()
            obs.emit("endpoint", event, session=session.name,
                     priority=session.priority)

    def request_control(self, session: ControlledSession) -> bool:
        """Register a session; returns True if it becomes active now.

        A session that does not win control starts suspended and will be
        resumed when it becomes the highest-priority waiter.
        """
        if self.active is None:
            self.active = session
            self._note("control-granted", session)
            return True
        if session.priority > self.active.priority:
            preempted = self.active
            self.suspended.append(preempted)
            self.active = session
            self.preemptions += 1
            self._note("preemption", preempted, "endpoint.preemptions")
            preempted.on_suspend(session.priority)
            return True
        self.suspended.append(session)
        self._note("control-denied", session)
        session.on_suspend(self.active.priority)
        return False

    def release(self, session: ControlledSession) -> None:
        """A session finished: remove it and hand control onward."""
        if self.active is session:
            self.active = None
            self._promote_next()
        else:
            try:
                self.suspended.remove(session)
            except ValueError:
                pass

    def yield_control(self, session: ControlledSession) -> None:
        """Voluntary suspension: control passes to the next waiter
        regardless of priority ("the endpoint then returns control to the
        controller with the next highest priority suspended experiment",
        §3.3). With no waiters, the yield is a no-op. The yielder stays
        registered and resumes later."""
        if self.active is not session:
            return
        if not self.suspended:
            return
        self.active = None
        self._note("yield", session, "endpoint.yields")
        session.on_suspend(0)
        self._promote_next()
        self.suspended.append(session)

    def _promote_next(self) -> None:
        if not self.suspended:
            return
        # Highest priority first; FIFO among equals (stable by arrival).
        best_index = 0
        for index, session in enumerate(self.suspended):
            if session.priority > self.suspended[best_index].priority:
                best_index = index
        session = self.suspended.pop(best_index)
        self.active = session
        self.resumptions += 1
        self._note("resumption", session, "endpoint.resumptions")
        session.on_resume()
