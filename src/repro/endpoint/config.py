"""Endpoint configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.proto.constants import CAP_RAW, CAP_TCP, CAP_UDP
from repro.util.retry import RetryPolicy


@dataclass
class EndpointConfig:
    """Operator-controlled endpoint settings.

    ``trusted_key_ids`` is the endpoint's trust store (§3.3): the key
    hashes whose certificate chains it accepts, "installed and managed
    out-of-band by the endpoint operator". These double as the rendezvous
    channels the endpoint subscribes to (§3.3, channels are key hashes).
    """

    name: str = "endpoint"
    trusted_key_ids: list[bytes] = field(default_factory=list)
    capture_buffer_bytes: int = 64 * 1024
    allow_raw: bool = True
    max_sockets: int = 32
    auth_timeout: float = 10.0
    monitor_fuel: int = 10_000
    # Ablation switch (NOT part of the paper's design): when True, the
    # endpoint pushes captured records to the controller immediately
    # instead of buffering until npoll. Exists to quantify why the paper
    # chose buffering — streaming puts control traffic on the access link
    # mid-measurement (see benchmarks/bench_a1_streaming_ablation.py).
    stream_captures: bool = False
    # Fault tolerance: when True the endpoint supervises its controller
    # and rendezvous connections, re-dialing with backoff after a
    # transport loss or a crash-and-restart instead of giving up
    # silently. Off by default — the paper's baseline endpoint makes one
    # connection attempt per discovered experiment.
    reconnect: bool = False
    reconnect_policy: RetryPolicy = field(default_factory=RetryPolicy)
    # Seeds the backoff jitter so fault-injection runs are deterministic.
    reconnect_seed: int = 0
    # Liveness: when positive, the endpoint publishes an RdzHeartbeat on
    # its open rendezvous subscription stream every this-many simulated
    # seconds. Controllers (the fleet pool's HeartbeatMonitor) use the
    # shard's liveness registry to drain endpoints whose beacons go
    # stale *before* an RPC ever has to time out on them. 0 = off —
    # the paper's baseline endpoint advertises nothing.
    heartbeat_interval: float = 0.0
    # Byzantine containment: per-session budgets for controller
    # misbehavior. A controller exceeding either budget gets a
    # SessionEnd(reason="protocol-error") farewell and the session ends.
    session_violation_budget: int = 8
    session_decode_budget: int = 4

    def caps(self) -> int:
        value = CAP_TCP | CAP_UDP
        if self.allow_raw:
            value |= CAP_RAW
        return value
