"""Endpoint-side sockets: the objects behind ``nopen`` ids.

Three kinds, per Table 1:

- **raw** — a tap on the host's receive path plus raw IP transmission.
  Capture is off until the controller installs an ``ncap`` filter; the
  filter's verdict decides ignore/consume/mirror. Captured records are
  whole IPv4 packets.
- **udp** — a native UDP socket serviced by the (simulated) host OS;
  received datagram payloads become capture records.
- **tcp** — a native TCP connection; received stream chunks become capture
  records, and a full capture buffer stops the reader, creating genuine
  TCP back pressure.

All transmission and capture passes through the session's certificate
monitors; a monitor deny suppresses the operation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.endpoint.capture import CaptureBuffer
from repro.filtervm.program import FilterProgram
from repro.filtervm.vm import (
    FilterVM,
    VERDICT_CONSUME,
    VERDICT_DROP,
    VERDICT_MIRROR,
)
from repro.netsim.node import Node
from repro.netsim.stack.ip import VERDICT_CONSUME as TAP_CONSUME
from repro.netsim.stack.ip import VERDICT_IGNORE as TAP_IGNORE
from repro.netsim.stack.ip import VERDICT_MIRROR as TAP_MIRROR
from repro.netsim.stack.tcp import TcpConnection, TcpError
from repro.packet.ipv4 import IPv4Packet, PROTO_TCP, PROTO_UDP
from repro.packet.tcp import FLAG_ACK, FLAG_PSH, TcpSegment
from repro.packet.udp import UdpDatagram
from repro.proto.constants import SOCK_RAW, SOCK_TCP, SOCK_UDP
from repro.proto.messages import CaptureRecord
from repro.util.byteio import DecodeError

if TYPE_CHECKING:
    from repro.endpoint.memory import MonitorInfoView

TCP_READ_CHUNK = 1460

# Monitor callbacks receive raw IPv4 packet bytes; True = allowed.
MonitorCheck = Callable[[bytes], bool]


class EndpointSocket:
    """Common endpoint socket state."""

    proto: int = 0

    def __init__(self, sktid: int, node: Node) -> None:
        self.sktid = sktid
        self.node = node
        self.local_port = 0
        self.closed = False
        self.last_send_ticks = 0
        self.pending_sends = 0
        self.packets_sent = 0
        self.sends_denied = 0

    def note_send(self, ticks: int) -> None:
        self.last_send_ticks = ticks
        self.packets_sent += 1

    def close(self) -> None:
        self.closed = True

    def send_scheduled(self, data: bytes, check_send: MonitorCheck) -> bool:
        raise NotImplementedError


class RawEndpointSocket(EndpointSocket):
    """Raw IP socket: tap-based capture + arbitrary IPv4 transmission."""

    proto = SOCK_RAW

    def __init__(
        self,
        sktid: int,
        node: Node,
        buffer: CaptureBuffer,
        ticks: Callable[[], int],
        check_recv: MonitorCheck,
        info_view: "MonitorInfoView",
        exempt: Optional[Callable[[IPv4Packet], bool]] = None,
    ) -> None:
        super().__init__(sktid, node)
        self._buffer = buffer
        self._ticks = ticks
        self._check_recv = check_recv
        self._info_view = info_view
        self._exempt = exempt
        self._filter: Optional[FilterVM] = None
        self._cap_until_ticks = 0
        self._tap = node.ip.add_tap(self._on_packet)
        self.packets_captured = 0
        self.packets_filtered_out = 0

    def install_filter(self, program: FilterProgram, until_ticks: int) -> None:
        """ncap: install a capture filter active until the given local
        time. The filter's persistent globals live as long as the filter."""
        self._filter = FilterVM(program, info=self._info_view,
                                obs=self.node.sim.obs)
        self._filter.run_init()
        self._cap_until_ticks = until_ticks

    def _on_packet(self, packet: IPv4Packet) -> int:
        if self.closed:
            return TAP_IGNORE
        if self._filter is None:
            # "The default behavior is to drop all packets" (§3.1): no
            # capture until the controller installs a filter.
            return TAP_IGNORE
        if self._ticks() > self._cap_until_ticks:
            return TAP_IGNORE
        # The endpoint's own control connections are never exposed to raw
        # capture: consuming them would sever the session, and mirroring
        # them would leak other experimenters' control traffic.
        if self._exempt is not None and self._exempt(packet):
            return TAP_IGNORE
        raw = packet.encode()
        verdict = self._filter.invoke("recv", packet=raw, args=(0, len(raw)))
        if verdict == VERDICT_DROP:
            self.packets_filtered_out += 1
            return TAP_IGNORE
        # Certificate monitors decide whether the controller may see it.
        if not self._check_recv(raw):
            self.packets_filtered_out += 1
            return TAP_IGNORE
        record = CaptureRecord(sktid=self.sktid, timestamp=self._ticks(), data=raw)
        self._buffer.push(record)
        if verdict == VERDICT_MIRROR:
            return TAP_MIRROR
        return TAP_CONSUME

    def send_scheduled(self, data: bytes, check_send: MonitorCheck) -> bool:
        """Transmit controller-supplied raw IPv4 bytes."""
        if self.closed:
            return False
        try:
            packet = IPv4Packet.decode(data, verify_checksum=False)
        except DecodeError:
            return False
        if not check_send(data):
            self.sends_denied += 1
            return False
        return self.node.send_ip(packet)

    def close(self) -> None:
        if not self.closed:
            super().close()
            self.node.ip.remove_tap(self._tap)


class UdpEndpointSocket(EndpointSocket):
    """Native UDP socket; capture records carry datagram payloads."""

    proto = SOCK_UDP

    def __init__(
        self,
        sktid: int,
        node: Node,
        buffer: CaptureBuffer,
        ticks: Callable[[], int],
        check_recv: MonitorCheck,
        locport: int,
        remaddr: int,
        remport: int,
    ) -> None:
        super().__init__(sktid, node)
        self._buffer = buffer
        self._ticks = ticks
        self._check_recv = check_recv
        self.remaddr = remaddr
        self.remport = remport
        self._udp = node.udp.bind(locport)
        self.local_port = self._udp.port
        self._reader = node.spawn(self._read_loop(), name=f"udp-reader-{sktid}")

    def _read_loop(self) -> Generator:
        while not self.closed:
            item = yield self._udp.recvfrom()
            if item is None:
                return
            payload, src_ip, src_port, dst_ip = item
            # Reconstruct the wire packet for monitor checking.
            datagram = UdpDatagram(src_port=src_port, dst_port=self.local_port,
                                   payload=payload)
            raw = IPv4Packet(
                src=src_ip, dst=dst_ip, proto=PROTO_UDP,
                payload=datagram.encode(src_ip, dst_ip),
            ).encode()
            if not self._check_recv(raw):
                continue
            if not self._buffer.space_for(len(payload)):
                self._buffer.note_drop(len(payload))
                continue
            self._buffer.push(
                CaptureRecord(sktid=self.sktid, timestamp=self._ticks(),
                              data=payload)
            )

    def send_scheduled(self, data: bytes, check_send: MonitorCheck) -> bool:
        if self.closed:
            return False
        datagram = UdpDatagram(
            src_port=self.local_port, dst_port=self.remport, payload=data
        )
        src = self.node.primary_address()
        raw = IPv4Packet(
            src=src, dst=self.remaddr, proto=PROTO_UDP,
            payload=datagram.encode(src, self.remaddr),
        ).encode()
        if not check_send(raw):
            self.sends_denied += 1
            return False
        return self._udp.sendto(data, self.remaddr, self.remport)

    def close(self) -> None:
        if not self.closed:
            super().close()
            self._udp.close()
            self._reader.kill()


class TcpEndpointSocket(EndpointSocket):
    """Native TCP connection; capture records carry stream chunks."""

    proto = SOCK_TCP

    def __init__(
        self,
        sktid: int,
        node: Node,
        buffer: CaptureBuffer,
        ticks: Callable[[], int],
        check_recv: MonitorCheck,
        conn: TcpConnection,
    ) -> None:
        super().__init__(sktid, node)
        self._buffer = buffer
        self._ticks = ticks
        self._check_recv = check_recv
        self.conn = conn
        self.local_port = conn.local_port
        self.remaddr = conn.remote_ip
        self.remport = conn.remote_port
        self._reader = node.spawn(self._read_loop(), name=f"tcp-reader-{sktid}")

    def _read_loop(self) -> Generator:
        while not self.closed:
            # Back pressure: do not read from the kernel socket unless the
            # capture buffer can hold the chunk. The TCP receive window
            # fills and the remote sender stalls — exactly the behaviour
            # the paper describes for TCP under buffer exhaustion.
            yield self._buffer.wait_for_space(TCP_READ_CHUNK)
            if self.closed:
                return
            try:
                chunk = yield from self.conn.recv(TCP_READ_CHUNK)
            except TcpError:
                return
            if not chunk:
                return
            raw = IPv4Packet(
                src=self.remaddr, dst=self.node.primary_address(), proto=PROTO_TCP,
                payload=TcpSegment(
                    src_port=self.remport, dst_port=self.local_port,
                    seq=0, ack=0, flags=FLAG_ACK | FLAG_PSH, window=0,
                    payload=chunk,
                ).encode(self.remaddr, self.node.primary_address()),
            ).encode()
            if not self._check_recv(raw):
                continue
            self._buffer.push(
                CaptureRecord(sktid=self.sktid, timestamp=self._ticks(), data=chunk)
            )

    def send_scheduled(self, data: bytes, check_send: MonitorCheck) -> bool:
        if self.closed or self.conn.error is not None:
            return False
        src = self.node.primary_address()
        representative = IPv4Packet(
            src=src, dst=self.remaddr, proto=PROTO_TCP,
            payload=TcpSegment(
                src_port=self.local_port, dst_port=self.remport,
                seq=0, ack=0, flags=FLAG_ACK | FLAG_PSH, window=0, payload=data,
            ).encode(src, self.remaddr),
        ).encode()
        if not check_send(representative):
            self.sends_denied += 1
            return False

        def sender() -> Generator:
            try:
                yield from self.conn.send(data)
            except TcpError:
                pass

        self.node.spawn(sender(), name=f"tcp-send-{self.sktid}")
        return True

    def close(self) -> None:
        if not self.closed:
            super().close()
            self._reader.kill()
            self.conn.close()
