"""Endpoint-side authorization: verifying an Auth message (§3.3).

"To run an experiment on an endpoint, an experiment controller must
present the endpoint with an experiment descriptor that is directly or
indirectly (via a chain of certificates) signed by one of its trusted
keys."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.crypto.chain import CertificateChain, ChainError, ChainResult
from repro.proto.messages import Auth
from repro.rendezvous.descriptor import ExperimentDescriptor
from repro.util.byteio import DecodeError


class AuthError(Exception):
    """Raised when an Auth message fails verification."""


@dataclass(frozen=True)
class AuthorizedExperiment:
    descriptor: ExperimentDescriptor
    chain_result: ChainResult
    priority: int


def verify_auth(
    auth: Auth,
    trusted_key_ids: Iterable[bytes],
    now: float,
) -> AuthorizedExperiment:
    """Validate an Auth message against the endpoint trust store.

    Checks: descriptor and chain decode, the chain is anchored in a
    trusted key and terminates in an experiment certificate for this
    descriptor, every certificate is currently valid, and the requested
    priority does not exceed the chain's priority cap.
    """
    try:
        descriptor = ExperimentDescriptor.decode(auth.descriptor)
    except DecodeError as exc:
        raise AuthError(f"bad descriptor: {exc}") from exc
    if not auth.chains:
        raise AuthError("no certificate chains presented")
    trusted = list(trusted_key_ids)
    result = None
    failures: list[str] = []
    for chain_bytes in auth.chains:
        try:
            chain = CertificateChain.decode(chain_bytes)
        except DecodeError as exc:
            failures.append(f"bad certificate chain: {exc}")
            continue
        try:
            result = chain.verify(trusted, descriptor.hash(), now)
            break
        except ChainError as exc:
            failures.append(str(exc))
    if result is None:
        raise AuthError(f"chain rejected: {'; '.join(failures)}")
    cap = result.restrictions.max_priority
    if cap is not None and auth.priority > cap:
        raise AuthError(
            f"requested priority {auth.priority} exceeds certificate cap {cap}"
        )
    return AuthorizedExperiment(
        descriptor=descriptor, chain_result=result, priority=auth.priority
    )
