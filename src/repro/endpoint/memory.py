"""Endpoint memory: the structured block behind ``mread``/``mwrite``.

§3.1: "A PacketLab endpoint makes this information such as its IP address,
DHCP parameters, and the current socket state available to the controller
via a structured block of memory that is accessed using the mread and
mwrite commands" and "an endpoint makes its clock available as a read-only
64-bit value via the memory".

Layout (big-endian; the first 52 bytes mirror ``struct plinfo`` in the Cpf
prelude, asserted by tests):

====== ===== =====================================================
offset size  field
====== ===== =====================================================
0      2     info version
2      2     capability flags (CAP_RAW / CAP_TCP / CAP_UDP)
4      4     reserved
8      4     internal IPv4 address
12     4     external IPv4 address (0 if unknown / no NAT)
16     4     gateway address
20     4     DNS server address (DHCP-style parameter)
24     8     local clock, 64-bit nanosecond ticks (read refreshes)
32     4     capture buffer capacity (bytes)
36     4     capture buffer bytes used
40     4     packets dropped due to buffer exhaustion
44     8     bytes dropped due to buffer exhaustion
52     12    reserved
64     16*32 socket state table (32 slots, 16 bytes each):
             u8 in_use, u8 proto, u16 local port,
             u32 pending sends, u64 last actual send time (ticks)
576    ...   reserved up to 2048
2048   2048  controller scratch area (writable with mwrite)
====== ===== =====================================================

The same block is exposed read-only to monitor programs as their info
space, so a monitor can, for example, compare a packet's source address
against the endpoint's own (Figure 2 does exactly this).
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.filtervm.vm import VmFault

if TYPE_CHECKING:
    from repro.endpoint.endpoint import Endpoint

MEMORY_SIZE = 4096
SCRATCH_START = 2048
SCRATCH_SIZE = MEMORY_SIZE - SCRATCH_START

OFF_VERSION = 0
OFF_CAPS = 2
OFF_ADDR_IP = 8
OFF_ADDR_EXT = 12
OFF_ADDR_GW = 16
OFF_ADDR_DNS = 20
OFF_CLOCK = 24
OFF_BUF_CAPACITY = 32
OFF_BUF_USED = 36
OFF_BUF_DROPPED_PKTS = 40
OFF_BUF_DROPPED_BYTES = 44
OFF_SOCKET_TABLE = 64
SOCKET_SLOT_SIZE = 16
SOCKET_SLOTS = 32

INFO_VERSION = 1


class MemoryError_(Exception):
    """Raised on out-of-range or read-only memory access."""


class EndpointMemory:
    """The endpoint's controller-visible memory region.

    Dynamic fields (clock, buffer statistics, socket table) are refreshed
    on every read, so an ``mread`` of the clock offset always returns the
    current local time — the basis of the paper's timekeeping design.
    """

    def __init__(self, endpoint: "Endpoint") -> None:
        self._endpoint = endpoint
        self._data = bytearray(MEMORY_SIZE)
        struct.pack_into(">H", self._data, OFF_VERSION, INFO_VERSION)

    # -- static configuration ----------------------------------------------

    def set_caps(self, caps: int) -> None:
        struct.pack_into(">H", self._data, OFF_CAPS, caps)

    def set_addresses(self, ip: int, ext_ip: int = 0, gateway: int = 0,
                      dns: int = 0) -> None:
        struct.pack_into(">IIII", self._data, OFF_ADDR_IP, ip, ext_ip, gateway, dns)

    # -- dynamic refresh ------------------------------------------------------

    def _refresh(self) -> None:
        endpoint = self._endpoint
        struct.pack_into(">Q", self._data, OFF_CLOCK, endpoint.clock_ticks())
        buffer = endpoint.active_capture_buffer()
        if buffer is not None:
            struct.pack_into(
                ">IIIQ",
                self._data,
                OFF_BUF_CAPACITY,
                buffer.capacity & 0xFFFFFFFF,
                buffer.used & 0xFFFFFFFF,
                buffer.dropped_packets & 0xFFFFFFFF,
                buffer.dropped_bytes & 0xFFFFFFFFFFFFFFFF,
            )
        self._refresh_sockets()

    def _refresh_sockets(self) -> None:
        sockets = self._endpoint.active_sockets()
        for slot in range(SOCKET_SLOTS):
            base = OFF_SOCKET_TABLE + slot * SOCKET_SLOT_SIZE
            socket = sockets.get(slot)
            if socket is None:
                self._data[base : base + SOCKET_SLOT_SIZE] = b"\x00" * SOCKET_SLOT_SIZE
            else:
                struct.pack_into(
                    ">BBHIQ",
                    self._data,
                    base,
                    1,
                    socket.proto & 0xFF,
                    socket.local_port & 0xFFFF,
                    socket.pending_sends & 0xFFFFFFFF,
                    socket.last_send_ticks & 0xFFFFFFFFFFFFFFFF,
                )

    # -- controller access (mread/mwrite) ------------------------------------

    def read(self, offset: int, count: int) -> bytes:
        if offset < 0 or count < 0 or offset + count > MEMORY_SIZE:
            raise MemoryError_(
                f"mread [{offset}:{offset + count}] outside memory of "
                f"{MEMORY_SIZE} bytes"
            )
        self._refresh()
        return bytes(self._data[offset : offset + count])

    def write(self, offset: int, data: bytes) -> None:
        end = offset + len(data)
        if offset < SCRATCH_START or end > MEMORY_SIZE:
            raise MemoryError_(
                f"mwrite [{offset}:{end}] outside writable scratch "
                f"[{SCRATCH_START}:{MEMORY_SIZE}]"
            )
        self._data[offset:end] = data

    # -- monitor access (filter VM InfoSource protocol) -----------------------

    def info_read(self, offset: int, size: int) -> bytes:
        """Read for monitor programs; faults map to filter-VM faults."""
        if offset < 0 or offset + size > MEMORY_SIZE:
            raise VmFault(f"info read [{offset}:{offset + size}] out of bounds")
        self._refresh()
        return bytes(self._data[offset : offset + size])


class MonitorInfoView:
    """Adapter giving a FilterVM read access to the endpoint memory."""

    def __init__(self, memory: EndpointMemory) -> None:
        self._memory = memory

    def read(self, offset: int, size: int) -> bytes:
        return self._memory.info_read(offset, size)
