"""Fault-tolerant wrapper over :class:`EndpointHandle` (reconnect + retry).

The PacketLab interface deliberately leaves retry policy to the
controller: the endpoint is a dumb packet source/sink, so when the
control connection dies the controller must reacquire a session and
rebuild whatever state it still needs. :class:`ResilientHandle` packages
that policy behind the same Table 1 generator API as the raw handle:

- commands that fail with :class:`SessionClosed`/:class:`RpcTimeout` are
  retried under an exponential-backoff-with-jitter
  :class:`~repro.util.retry.RetryPolicy`;
- when the session is gone, the wrapper waits for the endpoint to
  re-dial the controller (endpoints contact controllers, §3.2), adopts
  the fresh handle, and replays the session state the paper's semantics
  let it replay: open sockets (``nopen``) and installed capture filters
  (``ncap``), optionally followed by a clock re-sync;
- state that is inherently session-scoped is *not* resurrected:
  scheduled-but-unsent ``nsend`` payloads and unpolled capture records
  died with the old session's send queue and capture buffer, and a
  retried command may execute twice (at-least-once semantics).

All jitter comes from a seeded ``random.Random``, so recovery schedules
are deterministic under fault injection.
"""

from __future__ import annotations

from random import Random
from typing import Generator, Optional, Union

from repro.controller.client import (
    ControllerServer,
    EndpointHandle,
    RpcTimeout,
    SessionClosed,
)
from repro.controller.clocksync import ClockEstimate, estimate_clock
from repro.filtervm.program import FilterProgram
from repro.netsim.clock import HostClock
from repro.proto.constants import SOCK_RAW, SOCK_TCP, SOCK_UDP, ST_BAD_SOCKET, ST_OK


class ResilientHandle:
    """Table 1 API with transparent retry, reconnect, and state replay."""

    def __init__(
        self,
        server: ControllerServer,
        handle: EndpointHandle,
        policy=None,
        seed: int = 0,
        reacquire_timeout: float = 30.0,
        poll_interval: float = 0.1,
        resync_clock: bool = False,
        controller_clock: Optional[HostClock] = None,
        endpoints_queue=None,
    ) -> None:
        from repro.util.retry import RetryPolicy

        self.server = server
        self.handle = handle
        # Where fresh sessions appear after a loss. A pooled fleet routes
        # each endpoint's reconnects to a per-endpoint queue — adopting
        # straight from server.endpoints would steal another endpoint's
        # session when many share one controller.
        self._endpoints_queue = endpoints_queue
        self.policy = policy or RetryPolicy()
        self.rng = Random(seed)
        self.reacquire_timeout = reacquire_timeout
        self.poll_interval = poll_interval
        self.resync_clock = resync_clock
        self.controller_clock = controller_clock
        self.sim = handle.sim
        self._obs = handle.sim.obs
        self.reconnects = 0
        self.retries = 0
        # Set (permanently) when a reacquire wait times out: the
        # endpoint is gone with no replacement session in sight. Pools
        # watch this through ``on_gone`` to stop advertising the
        # endpoint as ever-runnable (pinned jobs fail fast instead of
        # spinning until campaign timeout).
        self.gone = False
        self.on_gone = None  # callable(handle) -> None, set by the pool
        self.clock_estimate: Optional[ClockEstimate] = None
        self._open_sockets: dict[int, dict] = {}
        self._captures: dict[int, tuple[int, bytes]] = {}
        self._retries_last_invoke = 0
        # Late nsend_nowait failures harvested from sessions this handle
        # has already abandoned (see the deferred_errors property).
        self._deferred_prior: list = []
        # Misbehavior evidence carried across adopted sessions, so pool
        # scoring sees one continuous per-endpoint record rather than a
        # counter that resets on every reconnect.
        self._violations_prior: list = []
        self._exhaustions_prior = 0
        self._abandons_prior = 0
        self._timeouts_prior = 0

    # -- passthrough state ----------------------------------------------------

    @property
    def endpoint_name(self) -> str:
        return self.handle.endpoint_name

    @property
    def closed(self) -> bool:
        return self.handle.closed

    @property
    def interrupted(self) -> bool:
        return self.handle.interrupted

    @property
    def notifications(self):
        return self.handle.notifications

    @property
    def streamed_records(self):
        return self.handle.streamed_records

    @property
    def deferred_errors(self):
        """Late pipelined-command failures across every adopted session."""
        return self._deferred_prior + self.handle.deferred_errors

    @property
    def violations(self):
        """Protocol violations recorded across every adopted session."""
        return self._violations_prior + self.handle.violations

    @property
    def budget_exhaustions(self) -> int:
        """Budget trips across every adopted session."""
        return self._exhaustions_prior + self.handle.budget_exhaustions

    @property
    def abandons(self) -> int:
        """Sessions that died with RPCs in flight and no farewell."""
        return self._abandons_prior + (1 if self.handle.abandoned else 0)

    @property
    def rpc_timeouts(self) -> int:
        """Unanswered commands across every adopted session."""
        return self._timeouts_prior + self.handle.rpc_timeouts

    @property
    def misbehavior(self):
        """The current session's budget verdict, if any."""
        return self.handle.misbehavior

    # -- retry machinery ------------------------------------------------------

    def _invoke(self, factory, op: str) -> Generator:
        """Run ``factory(handle)`` with retry/reconnect on transport faults.

        ``factory`` must build a fresh generator per call (it is re-run
        against whatever handle is current after a reconnect). Semantic
        failures (:class:`CommandError`, non-OK statuses) pass through
        untouched — only transport-level faults are retried.
        """
        attempt = 0
        self._retries_last_invoke = 0
        while True:
            try:
                if self.handle.closed:
                    yield from self._reacquire(op)
                return (yield from factory(self.handle))
            except (SessionClosed, RpcTimeout) as exc:
                if attempt >= self.policy.max_attempts:
                    raise
                delay = self.policy.delay_for(attempt, self.rng)
                attempt += 1
                self.retries += 1
                self._retries_last_invoke += 1
                obs = self._obs
                if obs.enabled:
                    obs.counter("rpc.retries", op=op).inc()
                    obs.emit("rpc", "retry", op=op, attempt=attempt,
                             delay=delay, reason=type(exc).__name__)
                yield delay

    def _reacquire(self, op: str) -> Generator:
        """Adopt the next session the endpoint re-establishes."""
        sim = self.sim
        deadline = sim.now + self.reacquire_timeout
        source = self._endpoints_queue or self.server.endpoints
        while True:
            fresh = source.try_get()
            if fresh is not None:
                self._deferred_prior.extend(self.handle.deferred_errors)
                self._violations_prior.extend(self.handle.violations)
                self._exhaustions_prior += self.handle.budget_exhaustions
                if self.handle.abandoned:
                    self._abandons_prior += 1
                self._timeouts_prior += self.handle.rpc_timeouts
                self.handle = fresh
                self.gone = False
                self.reconnects += 1
                obs = self._obs
                if obs.enabled:
                    obs.counter("rpc.reconnects").inc()
                    obs.emit("rpc", "reconnect", op=op,
                             endpoint=fresh.endpoint_name,
                             reconnects=self.reconnects)
                yield from self._replay_state()
                return
            if sim.now >= deadline:
                self.gone = True
                obs = self._obs
                if obs.enabled:
                    obs.counter("rpc.handle_gone").inc()
                    obs.emit("rpc", "handle-gone", op=op,
                             endpoint=self.handle.endpoint_name,
                             waited=self.reacquire_timeout)
                if self.on_gone is not None:
                    self.on_gone(self)
                raise SessionClosed(
                    f"endpoint did not reconnect within "
                    f"{self.reacquire_timeout:g}s (op={op})"
                )
            yield self.poll_interval

    def _replay_state(self) -> Generator:
        """Rebuild replayable session state on a fresh session.

        Open sockets and their capture filters are re-established;
        pending scheduled sends and unpolled capture records are gone
        (the old session's send queue and buffer died with it).
        """
        handle = self.handle
        sockets_restored = 0
        captures_restored = 0
        for sktid, spec in list(self._open_sockets.items()):
            status = yield from handle.nopen(sktid, **spec)
            if status != ST_OK:
                continue
            sockets_restored += 1
            cap = self._captures.get(sktid)
            if cap is not None:
                cap_status = yield from handle.ncap(sktid, cap[0], cap[1])
                if cap_status == ST_OK:
                    captures_restored += 1
        if self.resync_clock and self.controller_clock is not None:
            self.clock_estimate = yield from estimate_clock(
                handle, self.controller_clock
            )
        obs = self._obs
        if obs.enabled:
            obs.emit("rpc", "resume", endpoint=handle.endpoint_name,
                     sockets=sockets_restored, captures=captures_restored,
                     resynced=self.resync_clock)

    # -- Table 1 commands -----------------------------------------------------

    def nopen(self, sktid: int, proto: int, locport: int = 0,
              remaddr: int = 0, remport: int = 0) -> Generator:
        spec = dict(proto=proto, locport=locport, remaddr=remaddr,
                    remport=remport)
        epoch = self.reconnects
        status = yield from self._invoke(
            lambda h: h.nopen(sktid, **spec), f"nopen:{sktid}"
        )
        if (
            status == ST_BAD_SOCKET
            and self.reconnects == epoch
            and self._retries_last_invoke > 0
        ):
            # At-least-once artifact: a timed-out first attempt opened
            # the socket before its Result went missing.
            status = ST_OK
        if status == ST_OK:
            self._open_sockets[sktid] = spec
        return status

    def nopen_raw(self, sktid: int) -> Generator:
        return (yield from self.nopen(sktid, SOCK_RAW))

    def nopen_udp(self, sktid: int, locport: int = 0, remaddr: int = 0,
                  remport: int = 0) -> Generator:
        return (yield from self.nopen(sktid, SOCK_UDP, locport, remaddr, remport))

    def nopen_tcp(self, sktid: int, remaddr: int, remport: int,
                  locport: int = 0) -> Generator:
        return (yield from self.nopen(sktid, SOCK_TCP, locport, remaddr, remport))

    def nclose(self, sktid: int) -> Generator:
        self._open_sockets.pop(sktid, None)
        self._captures.pop(sktid, None)
        status = yield from self._invoke(
            lambda h: h.nclose(sktid), f"nclose:{sktid}"
        )
        return status

    def nsend(self, sktid: int, time_ticks: int, data: bytes) -> Generator:
        status = yield from self._invoke(
            lambda h: h.nsend(sktid, time_ticks, data), f"nsend:{sktid}"
        )
        return status

    def nsend_nowait(self, sktid: int, time_ticks: int, data: bytes) -> None:
        # Fire-and-forget has no response to retry on; best effort.
        self.handle.nsend_nowait(sktid, time_ticks, data)

    def ncap(self, sktid: int, time_ticks: int,
             filt: Union[FilterProgram, bytes]) -> Generator:
        program = filt.encode() if isinstance(filt, FilterProgram) else filt
        status = yield from self._invoke(
            lambda h: h.ncap(sktid, time_ticks, program), f"ncap:{sktid}"
        )
        if status == ST_OK:
            self._captures[sktid] = (time_ticks, program)
        return status

    def npoll(self, time_ticks: int) -> Generator:
        return (yield from self._invoke(
            lambda h: h.npoll(time_ticks), "npoll"
        ))

    def mread(self, memaddr: int, bytecnt: int) -> Generator:
        return (yield from self._invoke(
            lambda h: h.mread(memaddr, bytecnt), "mread"
        ))

    def mwrite(self, memaddr: int, data: bytes) -> Generator:
        return (yield from self._invoke(
            lambda h: h.mwrite(memaddr, data), "mwrite"
        ))

    # -- conveniences ---------------------------------------------------------

    def read_clock(self) -> Generator:
        return (yield from self._invoke(
            lambda h: h.read_clock(), "read_clock"
        ))

    def expect_ok(self, status: int, command: str) -> None:
        self.handle.expect_ok(status, command)

    def wait_resumed(self) -> Generator:
        return (yield from self.handle.wait_resumed())

    def yield_control(self) -> None:
        self.handle.yield_control()

    def bye(self) -> None:
        if not self.handle.closed:
            self.handle.bye()
