"""Controller-side clock synchronization (§3.1 Timekeeping).

"PacketLab does not require endpoints to keep accurate time... If an
experiment requires accurate timing, the experiment controller should
start by determining its clock offset with respect to the endpoint using a
clock synchronization algorithm such as NTP."

:func:`estimate_clock` implements the NTP-style estimator: repeated clock
reads over the control channel, offset from the minimum-RTT sample, and a
least-squares skew estimate across the probe window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.netsim.clock import HostClock, NANOSECONDS


@dataclass
class ClockSample:
    controller_midpoint: float  # controller-local time at probe midpoint
    endpoint_time: float  # endpoint-local seconds from the tick counter
    rtt: float
    offset: float  # endpoint_time - controller_midpoint


@dataclass
class ClockEstimate:
    """Mapping between controller-local and endpoint-local time."""

    offset: float  # endpoint_local - controller_local at reference time
    skew: float  # d(endpoint)/d(controller) - 1
    reference: float  # controller-local time the offset refers to
    rtt_min: float
    samples: list[ClockSample]

    def endpoint_time_at(self, controller_time: float) -> float:
        """Predict the endpoint's local clock at a controller-local time."""
        elapsed = controller_time - self.reference
        return controller_time + self.offset + self.skew * elapsed

    def endpoint_ticks_at(self, controller_time: float) -> int:
        return int(self.endpoint_time_at(controller_time) * NANOSECONDS)

    def controller_time_for(self, endpoint_time: float) -> float:
        """Invert: when (controller-local) does the endpoint clock read
        ``endpoint_time``? First-order inversion, adequate for ppm skews."""
        approx = endpoint_time - self.offset
        correction = self.skew * (approx - self.reference)
        return approx - correction


def estimate_clock(
    handle,
    controller_clock: HostClock,
    probes: int = 8,
    spacing: float = 0.05,
) -> Generator:
    """NTP-style estimation of the endpoint clock over the control channel.

    ``handle`` is an :class:`~repro.controller.client.EndpointHandle`. Use
    with ``estimate = yield from estimate_clock(...)``.
    """
    if probes < 2:
        raise ValueError("need at least 2 probes")
    samples: list[ClockSample] = []
    for index in range(probes):
        t_send = controller_clock.now()
        ticks = yield from handle.read_clock()
        t_recv = controller_clock.now()
        rtt = t_recv - t_send
        midpoint = (t_send + t_recv) / 2
        endpoint_time = ticks / NANOSECONDS
        samples.append(
            ClockSample(
                controller_midpoint=midpoint,
                endpoint_time=endpoint_time,
                rtt=rtt,
                offset=endpoint_time - midpoint,
            )
        )
        if index != probes - 1:
            yield spacing
    best = min(samples, key=lambda sample: sample.rtt)
    # Least-squares slope of endpoint_time against controller_midpoint
    # gives (1 + skew).
    n = len(samples)
    mean_x = sum(sample.controller_midpoint for sample in samples) / n
    mean_y = sum(sample.endpoint_time for sample in samples) / n
    var_x = sum((sample.controller_midpoint - mean_x) ** 2 for sample in samples)
    if var_x > 0:
        cov = sum(
            (sample.controller_midpoint - mean_x) * (sample.endpoint_time - mean_y)
            for sample in samples
        )
        skew = cov / var_x - 1.0
    else:
        skew = 0.0
    obs = handle.sim.obs
    if obs.enabled:
        obs.counter("controller.clock_syncs").inc()
        obs.gauge("controller.clock_offset_s").set(best.offset)
        obs.gauge("controller.clock_skew_ppm").set(skew * 1e6)
        obs.emit(
            "controller", "clock-estimate", endpoint=handle.endpoint_name,
            offset=best.offset, skew_ppm=skew * 1e6, rtt_min=best.rtt,
            probes=len(samples),
        )
    return ClockEstimate(
        offset=best.offset,
        skew=skew,
        reference=best.controller_midpoint,
        rtt_min=best.rtt,
        samples=samples,
    )
