"""Experiment controller: the brain of every PacketLab experiment.

"All experiment logic is located on the experiment controller so that the
measurement endpoint interface can remain simple and universal" (§3.1).

A :class:`ControllerServer` listens for incoming endpoint connections
(endpoints contact controllers, per §3.2), authenticates each with the
experiment's descriptor and certificate chain, and hands experiment code an
:class:`EndpointHandle` — the controller-side API mirroring Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Union

from repro.filtervm.program import FilterProgram
from repro.netsim.kernel import Event, Queue, any_of
from repro.netsim.node import Node
from repro.netsim.stack.tcp import TcpError
from repro.proto.constants import (
    ERR_MONITOR_REJECTED,
    SOCK_RAW,
    SOCK_TCP,
    SOCK_UDP,
    ST_OK,
    STATUS_NAMES,
)
from repro.proto.framing import FramingError, MessageStream
from repro.proto.messages import (
    Auth,
    AuthFail,
    AuthOk,
    Bye,
    Hello,
    Interrupted,
    Message,
    MRead,
    MWrite,
    NCap,
    NClose,
    NOpen,
    NPoll,
    NSend,
    PollData,
    Result,
    Resumed,
    SessionEnd,
    Yield,
)
from repro.endpoint.memory import OFF_CLOCK


class CommandError(Exception):
    """A Table 1 command returned a non-OK status."""

    def __init__(self, command: str, status: int) -> None:
        name = STATUS_NAMES.get(status, str(status))
        super().__init__(f"{command} failed: {name}")
        self.status = status


class SessionClosed(Exception):
    """The endpoint session ended while a command was outstanding."""


class RpcTimeout(Exception):
    """A command saw no matched response within the configured timeout.

    The session itself may still be alive (e.g. the response is stuck
    behind a link outage); whether to retry, reconnect, or abandon is the
    caller's policy — see :class:`repro.controller.recovery.ResilientHandle`.
    """

    def __init__(self, command: str, timeout: float) -> None:
        super().__init__(f"{command} unanswered after {timeout:g}s")
        self.command = command
        self.timeout = timeout


@dataclass
class DeferredError:
    """A pipelined (``*_nowait``) command that later reported failure.

    Fire-and-forget commands have no caller waiting on their Result, so a
    non-OK status used to vanish in the reader loop. The handle now keeps
    these so campaign rollups can surface late send failures instead of
    silently under-counting.
    """

    op: str
    status: int
    time: float

    def __str__(self) -> str:
        name = STATUS_NAMES.get(self.status, str(self.status))
        return f"{self.op} failed late: {name} (t={self.time:g})"


@dataclass
class ExperimentIdentity:
    """What a controller presents to endpoints: descriptor + chains.

    One chain per endpoint operator who delegated access; endpoints
    accept whichever chain anchors in their own trust store.
    """

    descriptor_bytes: bytes
    chain_bytes_list: tuple[bytes, ...]
    priority: int = 0


class EndpointHandle:
    """Controller-side view of one endpoint session (Table 1 API).

    All command methods are generators: ``status = yield from
    handle.nopen_raw(0)`` inside a simulated process.
    """

    def __init__(self, node: Node, stream: MessageStream, hello: Hello,
                 session_id: int, buffer_limit: int,
                 rpc_timeout: Optional[float] = None) -> None:
        self.node = node
        self.sim = node.sim
        self.stream = stream
        self.hello = hello
        self.session_id = session_id
        self.buffer_limit = buffer_limit
        self.endpoint_name = hello.endpoint_name
        self.caps = hello.caps
        # None = wait forever (the original behavior); a float bounds
        # every _request and raises RpcTimeout when it elapses.
        self.rpc_timeout = rpc_timeout

        self._next_reqid = 1
        self._pending: dict[int, Event] = {}
        self._obs = node.sim.obs
        self._outbox: Queue = node.sim.queue(name="ctl-outbox")
        self.closed = False
        self.interrupted = False
        self.end_reason: Optional[str] = None
        self._interruption_events: list[Event] = []
        self.notifications: list[Message] = []
        # Records pushed by a streaming-mode endpoint (reqid-0 PollData).
        self.streamed_records: list = []
        # reqid -> op for pipelined commands whose Result nobody awaits;
        # late failures land in deferred_errors instead of being dropped.
        self._nowait_ops: dict[int, str] = {}
        self.deferred_errors: list[DeferredError] = []
        # Verifier report from the most recent ncap the endpoint rejected
        # with ERR_MONITOR_REJECTED (None until that happens).
        self.last_verifier_report: Optional[str] = None
        node.spawn(self._reader_loop(), name="ctl-reader")
        node.spawn(self._writer_loop(), name="ctl-writer")

    # -- plumbing -------------------------------------------------------------

    def _reader_loop(self) -> Generator:
        while True:
            try:
                message = yield from self.stream.recv()
            except (TcpError, FramingError):
                break
            if message is None:
                break
            if isinstance(message, PollData) and message.reqid == 0:
                self.streamed_records.extend(message.records)
                continue
            if isinstance(message, (Result, PollData)):
                waiter = self._pending.pop(message.reqid, None)
                if waiter is not None:
                    waiter.fire(message)
                    continue
                op = self._nowait_ops.pop(message.reqid, None)
                status = getattr(message, "status", ST_OK)
                if op is not None and status != ST_OK:
                    self.deferred_errors.append(
                        DeferredError(op, status, self.sim.now)
                    )
                    if self._obs.enabled:
                        self._obs.counter("rpc.deferred_errors", op=op).inc()
                        self._obs.emit("rpc", "deferred-error",
                                       endpoint=self.endpoint_name, op=op,
                                       status=status)
                continue
            self.notifications.append(message)
            if isinstance(message, Interrupted):
                self.interrupted = True
            elif isinstance(message, Resumed):
                self.interrupted = False
                waiters, self._interruption_events = self._interruption_events, []
                for event in waiters:
                    event.fire(None)
            elif isinstance(message, SessionEnd):
                self.end_reason = message.reason
        self._close_pending()

    def _writer_loop(self) -> Generator:
        while True:
            message = yield self._outbox.get()
            if message is None:
                return
            try:
                yield from self.stream.send(message)
            except TcpError:
                self._close_pending()
                return

    def _close_pending(self) -> None:
        was_closed = self.closed
        self.closed = True
        pending, self._pending = self._pending, {}
        obs = self._obs
        if obs.enabled and not was_closed:
            # A session that said goodbye and owes no answers closed
            # cleanly; anything else died out from under the controller.
            if self.end_reason == "bye" and not pending:
                obs.emit("rpc", "session-closed",
                         endpoint=self.endpoint_name)
            else:
                obs.counter("rpc.sessions_lost").inc()
                obs.emit("rpc", "session-lost", endpoint=self.endpoint_name,
                         pending=len(pending))
        for event in pending.values():
            event.fire(None)

    def _request(self, message: Message, reqid: int) -> Generator:
        """Send a command and wait for its matched response.

        Raises :class:`SessionClosed` when the session dies mid-command
        and :class:`RpcTimeout` when ``rpc_timeout`` is set and elapses
        first (the reqid is abandoned; a late response is discarded by
        the reader loop).
        """
        if self.closed:
            raise SessionClosed("endpoint session is closed")
        obs = self._obs
        op = type(message).__name__.lower()
        started = self.sim.now if obs.enabled else 0.0
        waiter = self.sim.event(name=f"req-{reqid}")
        self._pending[reqid] = waiter
        self._outbox.put(message)
        if self.rpc_timeout is not None:
            timeout_event = self.sim.event(name=f"req-{reqid}-timeout")
            timer = self.sim.schedule(self.rpc_timeout, timeout_event.fire)
            index, response = yield any_of(self.sim, [waiter, timeout_event])
            if index == 1:
                self._pending.pop(reqid, None)
                if obs.enabled:
                    obs.counter("rpc.timeouts", op=op).inc()
                    obs.emit("rpc", "timeout", endpoint=self.endpoint_name,
                             op=op, reqid=reqid, timeout=self.rpc_timeout)
                raise RpcTimeout(op, self.rpc_timeout)
            timer.cancel()
        else:
            response = yield waiter
        if response is None:
            raise SessionClosed("endpoint session ended mid-command")
        if obs.enabled:
            obs.counter("controller.rpcs", op=op).inc()
            obs.histogram("controller.rpc_rtt_s").observe(
                self.sim.now - started
            )
        return response

    def _reqid(self) -> int:
        reqid = self._next_reqid
        self._next_reqid += 1
        return reqid

    # -- Table 1 commands -------------------------------------------------------

    def nopen(self, sktid: int, proto: int, locport: int = 0,
              remaddr: int = 0, remport: int = 0) -> Generator:
        reqid = self._reqid()
        response = yield from self._request(
            NOpen(reqid=reqid, sktid=sktid, proto=proto, locport=locport,
                  remaddr=remaddr, remport=remport),
            reqid,
        )
        return response.status

    def nopen_raw(self, sktid: int) -> Generator:
        return (yield from self.nopen(sktid, SOCK_RAW))

    def nopen_udp(self, sktid: int, locport: int = 0, remaddr: int = 0,
                  remport: int = 0) -> Generator:
        return (yield from self.nopen(sktid, SOCK_UDP, locport, remaddr, remport))

    def nopen_tcp(self, sktid: int, remaddr: int, remport: int,
                  locport: int = 0) -> Generator:
        return (yield from self.nopen(sktid, SOCK_TCP, locport, remaddr, remport))

    def nclose(self, sktid: int) -> Generator:
        reqid = self._reqid()
        response = yield from self._request(NClose(reqid=reqid, sktid=sktid), reqid)
        return response.status

    def nsend(self, sktid: int, time_ticks: int, data: bytes) -> Generator:
        reqid = self._reqid()
        response = yield from self._request(
            NSend(reqid=reqid, sktid=sktid, time=time_ticks, data=data), reqid
        )
        return response.status

    def nsend_nowait(self, sktid: int, time_ticks: int, data: bytes) -> None:
        """Pipelined nsend: queue the command without awaiting its Result.

        Used when streaming many sends back-to-back (the Result for an
        unawaited reqid is discarded by the reader loop).
        """
        if self._obs.enabled:
            self._obs.counter("controller.rpcs_pipelined").inc()
        reqid = self._reqid()
        self._nowait_ops[reqid] = f"nsend:{sktid}"
        self._outbox.put(
            NSend(reqid=reqid, sktid=sktid, time=time_ticks, data=data)
        )

    def ncap(self, sktid: int, time_ticks: int,
             filt: Union[FilterProgram, bytes]) -> Generator:
        program = filt.encode() if isinstance(filt, FilterProgram) else filt
        reqid = self._reqid()
        response = yield from self._request(
            NCap(reqid=reqid, sktid=sktid, time=time_ticks, filt=program), reqid
        )
        if response.status == ERR_MONITOR_REJECTED:
            # The endpoint's static verifier refused the filter; keep the
            # report so the experimenter sees *why* instead of a bare code.
            self.last_verifier_report = response.payload.decode(
                "utf-8", "replace"
            )
        return response.status

    def npoll(self, time_ticks: int) -> Generator:
        """Returns the PollData response (records + drop accounting)."""
        reqid = self._reqid()
        response = yield from self._request(NPoll(reqid=reqid, time=time_ticks), reqid)
        if not isinstance(response, PollData):
            raise CommandError("npoll", getattr(response, "status", -1))
        return response

    def mread(self, memaddr: int, bytecnt: int) -> Generator:
        reqid = self._reqid()
        response = yield from self._request(
            MRead(reqid=reqid, memaddr=memaddr, bytecnt=bytecnt), reqid
        )
        if response.status != ST_OK:
            raise CommandError("mread", response.status)
        return response.payload

    def mwrite(self, memaddr: int, data: bytes) -> Generator:
        reqid = self._reqid()
        response = yield from self._request(
            MWrite(reqid=reqid, memaddr=memaddr, data=data), reqid
        )
        return response.status

    # -- conveniences ---------------------------------------------------------------

    def read_clock(self) -> Generator:
        """Read the endpoint's 64-bit clock (ns ticks) via mread (§3.1)."""
        data = yield from self.mread(OFF_CLOCK, 8)
        return int.from_bytes(data, "big")

    def expect_ok(self, status: int, command: str) -> None:
        if status != ST_OK:
            raise CommandError(command, status)

    def wait_resumed(self) -> Generator:
        """Block until an interruption ends (§3.3)."""
        if not self.interrupted:
            return None
        event = self.sim.event(name="wait-resumed")
        self._interruption_events.append(event)
        yield event
        return None

    def yield_control(self) -> None:
        self._outbox.put(Yield())

    def bye(self) -> None:
        self._outbox.put(Bye())


class ControllerServer:
    """Accepts endpoint connections for one experiment.

    Experiment controllers are ephemeral (§1): create one, run the
    experiment over the handles it yields, tear it down.
    """

    def __init__(self, node: Node, port: int, identity: ExperimentIdentity,
                 rpc_timeout: Optional[float] = None) -> None:
        self.node = node
        self.port = port
        self.identity = identity
        self.rpc_timeout = rpc_timeout
        self.endpoints: Queue = node.sim.queue(name="controller-endpoints")
        self.auth_failures: list[str] = []
        # Verifier reports from endpoints that rejected a certificate
        # monitor at session setup (AuthFail.code == ERR_MONITOR_REJECTED).
        self.monitor_rejections: list[str] = []
        self._listener = None
        self._accept_proc = None

    def start(self) -> "ControllerServer":
        self._listener = self.node.tcp.listen(self.port)
        self._accept_proc = self.node.spawn(self._accept_loop(), name="ctl-accept")
        return self

    def _accept_loop(self) -> Generator:
        while True:
            conn = yield self._listener.accept()
            self.node.spawn(self._handshake(conn), name="ctl-handshake")

    def _handshake(self, conn) -> Generator:
        stream = MessageStream(conn)
        try:
            hello = yield from stream.recv()
        except (TcpError, FramingError):
            conn.close()
            return
        if not isinstance(hello, Hello):
            conn.close()
            return
        from repro.proto.constants import PROTOCOL_VERSION

        if hello.version != PROTOCOL_VERSION:
            self.auth_failures.append(
                f"protocol version mismatch: endpoint speaks {hello.version}"
            )
            conn.close()
            return
        yield from stream.send(
            Auth(
                descriptor=self.identity.descriptor_bytes,
                chains=self.identity.chain_bytes_list,
                priority=self.identity.priority,
            )
        )
        try:
            response = yield from stream.recv()
        except (TcpError, FramingError):
            conn.close()
            return
        if isinstance(response, AuthOk):
            handle = EndpointHandle(
                self.node, stream, hello, response.session_id,
                response.buffer_limit, rpc_timeout=self.rpc_timeout,
            )
            self.endpoints.put(handle)
        elif isinstance(response, AuthFail):
            self.auth_failures.append(response.reason)
            if response.code == ERR_MONITOR_REJECTED:
                self.monitor_rejections.append(
                    response.report or response.reason
                )
            conn.close()
        else:
            conn.close()

    def wait_endpoint(self) -> Event:
        """Event yielding the next authenticated EndpointHandle."""
        return self.endpoints.get()

    def stop(self) -> None:
        if self._accept_proc is not None:
            self._accept_proc.kill()
        if self._listener is not None:
            self._listener.close()
