"""Experiment controller: the brain of every PacketLab experiment.

"All experiment logic is located on the experiment controller so that the
measurement endpoint interface can remain simple and universal" (§3.1).

A :class:`ControllerServer` listens for incoming endpoint connections
(endpoints contact controllers, per §3.2), authenticates each with the
experiment's descriptor and certificate chain, and hands experiment code an
:class:`EndpointHandle` — the controller-side API mirroring Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Union

from repro.filtervm.program import FilterProgram
from repro.netsim.kernel import Event, Queue, any_of
from repro.netsim.node import Node
from repro.netsim.stack.tcp import TcpError
from repro.proto.constants import (
    ERR_MONITOR_REJECTED,
    SOCK_RAW,
    SOCK_TCP,
    SOCK_UDP,
    ST_OK,
    STATUS_NAMES,
)
from repro.proto.framing import FramingError, MessageStream, UndecodableFrame
from repro.proto.messages import (
    Auth,
    AuthFail,
    AuthOk,
    Bye,
    Hello,
    Interrupted,
    Message,
    MRead,
    MWrite,
    NCap,
    NClose,
    NOpen,
    NPoll,
    NSend,
    PollData,
    Result,
    Resumed,
    SessionEnd,
    Yield,
)
from repro.proto.statemachine import (
    ROLE_CONTROLLER,
    SessionStateMachine,
    V_DECODE_ERROR,
    V_STREAM_OVERFLOW,
    Violation,
)
from repro.endpoint.memory import OFF_CLOCK

# Wire overhead charged per streamed CaptureRecord (sktid + timestamp +
# length prefix) so empty-payload floods still consume the byte budget.
STREAM_RECORD_OVERHEAD = 16


class CommandError(Exception):
    """A Table 1 command returned a non-OK status."""

    def __init__(self, command: str, status: int) -> None:
        name = STATUS_NAMES.get(status, str(status))
        super().__init__(f"{command} failed: {name}")
        self.status = status


class SessionClosed(Exception):
    """The endpoint session ended while a command was outstanding."""


@dataclass
class SessionBudget:
    """Hard per-session resource caps for one endpoint session.

    The single-RPC timeout bounds how long *one* command may dangle; a
    budget bounds what the whole session may cost the controller.  Every
    ``None`` field disables that cap.  When any cap trips, the handle
    severs the session and surfaces a typed :class:`MisbehaviorError`
    to all callers instead of hanging or buffering without bound.

    ``max_streamed_bytes`` defaults to the session's negotiated
    ``AuthOk.buffer_limit`` when left ``None`` — an endpoint may never
    push more unconsumed streamed capture than its own advertised
    buffer.  ``max_pending_age`` is slowloris detection beyond the
    per-RPC timeout: the oldest unanswered reqid may not stay pending
    longer than this, no matter how many fresh RPCs keep succeeding.
    """

    max_streamed_bytes: Optional[int] = None  # None = negotiated buffer_limit
    max_streamed_records: Optional[int] = 4096
    max_pending_age: Optional[float] = None
    max_violations: Optional[int] = 8
    max_decode_errors: Optional[int] = 4


class MisbehaviorError(SessionClosed):
    """A session was severed because the endpoint exhausted a budget.

    Subclasses :class:`SessionClosed` so existing retry/rescheduling
    policy applies unchanged, while carrying the offence ``kind`` for
    misbehavior scoring (see :meth:`repro.fleet.pool.EndpointPool.
    report_misbehavior`).
    """

    def __init__(self, endpoint: str, kind: str, detail: str = "") -> None:
        text = f"endpoint {endpoint} misbehaved: {kind}"
        if detail:
            text = f"{text} ({detail})"
        super().__init__(text)
        self.endpoint = endpoint
        self.kind = kind
        self.detail = detail


class RpcTimeout(Exception):
    """A command saw no matched response within the configured timeout.

    The session itself may still be alive (e.g. the response is stuck
    behind a link outage); whether to retry, reconnect, or abandon is the
    caller's policy — see :class:`repro.controller.recovery.ResilientHandle`.
    """

    def __init__(self, command: str, timeout: float) -> None:
        super().__init__(f"{command} unanswered after {timeout:g}s")
        self.command = command
        self.timeout = timeout


@dataclass
class DeferredError:
    """A pipelined (``*_nowait``) command that later reported failure.

    Fire-and-forget commands have no caller waiting on their Result, so a
    non-OK status used to vanish in the reader loop. The handle now keeps
    these so campaign rollups can surface late send failures instead of
    silently under-counting.
    """

    op: str
    status: int
    time: float

    def __str__(self) -> str:
        name = STATUS_NAMES.get(self.status, str(self.status))
        return f"{self.op} failed late: {name} (t={self.time:g})"


@dataclass
class ExperimentIdentity:
    """What a controller presents to endpoints: descriptor + chains.

    One chain per endpoint operator who delegated access; endpoints
    accept whichever chain anchors in their own trust store.
    """

    descriptor_bytes: bytes
    chain_bytes_list: tuple[bytes, ...]
    priority: int = 0


class EndpointHandle:
    """Controller-side view of one endpoint session (Table 1 API).

    All command methods are generators: ``status = yield from
    handle.nopen_raw(0)`` inside a simulated process.
    """

    def __init__(self, node: Node, stream: MessageStream, hello: Hello,
                 session_id: int, buffer_limit: int,
                 rpc_timeout: Optional[float] = None,
                 budget: Optional[SessionBudget] = None,
                 machine: Optional[SessionStateMachine] = None) -> None:
        self.node = node
        self.sim = node.sim
        self.stream = stream
        self.hello = hello
        self.session_id = session_id
        self.buffer_limit = buffer_limit
        self.endpoint_name = hello.endpoint_name
        self.caps = hello.caps
        # None = wait forever (the original behavior); a float bounds
        # every _request and raises RpcTimeout when it elapses.
        self.rpc_timeout = rpc_timeout
        # Per-session caps; None disables budget enforcement entirely
        # (sequencing violations are still *recorded*, never enforced).
        self.budget = budget
        self.machine = machine or SessionStateMachine(
            ROLE_CONTROLLER, start_established=True
        )
        # Set when a budget trips: the typed outcome every subsequent
        # caller gets instead of a bare SessionClosed.
        self.misbehavior: Optional[MisbehaviorError] = None
        self.budget_exhaustions = 0
        # True once the session closed with RPCs in flight and no
        # farewell explaining why — the silent-abandon scoring signal.
        self.abandoned = False
        self.decode_errors = 0
        # Commands that saw no matched response within rpc_timeout.
        # Callers often absorb RpcTimeout into partial results, so the
        # handle keeps its own count as harvestable stall evidence.
        self.rpc_timeouts = 0

        self._next_reqid = 1
        self._pending: dict[int, Event] = {}
        # reqid -> sim time the command was issued (pending-age watchdog).
        self._pending_started: dict[int, float] = {}
        self._age_timer = None
        self._obs = node.sim.obs
        self._outbox: Queue = node.sim.queue(name="ctl-outbox")
        self.closed = False
        self.interrupted = False
        self.end_reason: Optional[str] = None
        self._interruption_events: list[Event] = []
        self.notifications: list[Message] = []
        # Records pushed by a streaming-mode endpoint (reqid-0 PollData).
        self.streamed_records: list = []
        self._streamed_bytes = 0
        # reqid -> op for pipelined commands whose Result nobody awaits;
        # late failures land in deferred_errors instead of being dropped.
        self._nowait_ops: dict[int, str] = {}
        self.deferred_errors: list[DeferredError] = []
        # Verifier report from the most recent ncap the endpoint rejected
        # with ERR_MONITOR_REJECTED (None until that happens).
        self.last_verifier_report: Optional[str] = None
        node.spawn(self._reader_loop(), name="ctl-reader")
        node.spawn(self._writer_loop(), name="ctl-writer")

    # -- plumbing -------------------------------------------------------------

    @property
    def violations(self) -> list:
        """All protocol violations recorded on this session."""
        return self.machine.violations

    def _reader_loop(self) -> Generator:
        while True:
            try:
                message = yield from self.stream.recv()
            except UndecodableFrame as exc:
                # Frame boundary intact: count it, keep reading until the
                # decode budget runs out.
                self.decode_errors += 1
                violation = self.machine.record(V_DECODE_ERROR, str(exc))
                self._note_violation(violation)
                budget = self.budget
                if (budget is not None
                        and budget.max_decode_errors is not None
                        and self.decode_errors > budget.max_decode_errors):
                    self._exhaust("decode-budget",
                                  f"{self.decode_errors} undecodable frames")
                if self.misbehavior is not None:
                    break
                continue
            except (TcpError, FramingError):
                break
            if message is None:
                break
            violation = self.machine.observe(message)
            if violation is not None:
                # Drop the illegal message; record (and maybe enforce).
                self._note_violation(violation)
                if self.misbehavior is not None:
                    break
                continue
            if isinstance(message, PollData) and message.reqid == 0:
                if not self._accept_streamed(message):
                    break
                continue
            if isinstance(message, (Result, PollData)):
                self._pending_started.pop(message.reqid, None)
                waiter = self._pending.pop(message.reqid, None)
                if waiter is not None:
                    waiter.fire(message)
                    continue
                op = self._nowait_ops.pop(message.reqid, None)
                status = getattr(message, "status", ST_OK)
                if op is not None and status != ST_OK:
                    self.deferred_errors.append(
                        DeferredError(op, status, self.sim.now)
                    )
                    if self._obs.enabled:
                        self._obs.counter("rpc.deferred_errors", op=op).inc()
                        self._obs.emit("rpc", "deferred-error",
                                       endpoint=self.endpoint_name, op=op,
                                       status=status)
                continue
            self.notifications.append(message)
            if isinstance(message, Interrupted):
                self.interrupted = True
            elif isinstance(message, Resumed):
                self.interrupted = False
                waiters, self._interruption_events = self._interruption_events, []
                for event in waiters:
                    event.fire(None)
            elif isinstance(message, SessionEnd):
                self.end_reason = message.reason
        self._close_pending()

    def _note_violation(self, violation: Violation) -> None:
        """Account one recorded violation against obs and the budget."""
        if self._obs.enabled:
            self._obs.counter("proto.sequence_violations",
                              kind=violation.kind, side="controller").inc()
            self._obs.emit("proto", "sequence-violation",
                           endpoint=self.endpoint_name, kind=violation.kind,
                           message=violation.message, detail=violation.detail)
        budget = self.budget
        if (budget is not None
                and budget.max_violations is not None
                and len(self.machine.violations) > budget.max_violations
                and self.misbehavior is None):
            self._exhaust(
                "violation-budget",
                f"{len(self.machine.violations)} protocol violations",
            )

    def _accept_streamed(self, message: PollData) -> bool:
        """Buffer reqid-0 streaming records, enforcing the negotiated cap.

        The cap covers *unconsumed* records: a consumer that drains
        ``streamed_records`` (bench_a1 style ``clear()``) resets the byte
        account, mirroring how the endpoint's own capture buffer frees as
        it is polled.  Overflow records are dropped, recorded as a typed
        violation, and — when a budget is armed — sever the session.
        Returns False when the reader loop should stop.
        """
        if not self.streamed_records:
            self._streamed_bytes = 0
        size = sum(
            len(record.data) + STREAM_RECORD_OVERHEAD
            for record in message.records
        )
        budget = self.budget
        limit_bytes = self.buffer_limit or None
        limit_records = None
        if budget is not None:
            if budget.max_streamed_bytes is not None:
                limit_bytes = budget.max_streamed_bytes
            limit_records = budget.max_streamed_records
        over = (
            (limit_bytes is not None
             and self._streamed_bytes + size > limit_bytes)
            or (limit_records is not None
                and len(self.streamed_records) + len(message.records)
                > limit_records)
        )
        if over:
            violation = self.machine.record(
                V_STREAM_OVERFLOW,
                f"{self._streamed_bytes + size} streamed bytes / "
                f"{len(self.streamed_records) + len(message.records)} records "
                f"over negotiated limit",
            )
            self._note_violation(violation)
            if budget is not None and self.misbehavior is None:
                self._exhaust("stream-overflow", violation.detail)
            # Without a budget the offending records are simply dropped:
            # recorded, never buffered, session stays up.
            return self.misbehavior is None
        self._streamed_bytes += size
        self.streamed_records.extend(message.records)
        return True

    def _exhaust(self, kind: str, detail: str = "") -> None:
        """A budget cap tripped: sever the session with a typed outcome."""
        if self.misbehavior is not None:
            return
        self.budget_exhaustions += 1
        self.misbehavior = MisbehaviorError(self.endpoint_name, kind, detail)
        if self._obs.enabled:
            self._obs.counter("session.budget_exhausted", kind=kind).inc()
            self._obs.emit("session", "budget-exhausted",
                           endpoint=self.endpoint_name, kind=kind,
                           detail=detail)
        # Sever the transport so the peer sees the session die too; the
        # reader/writer loops unwind on the reset.
        self.stream.conn.abort()
        self._close_pending()

    # -- pending-age watchdog -------------------------------------------------

    def _arm_age_timer(self) -> None:
        budget = self.budget
        if (budget is None or budget.max_pending_age is None
                or self._age_timer is not None or self.closed
                or not self._pending_started):
            return
        oldest = min(self._pending_started.values())
        delay = max(0.0, oldest + budget.max_pending_age - self.sim.now)
        self._age_timer = self.sim.schedule(delay, self._check_pending_age)

    def _check_pending_age(self) -> None:
        self._age_timer = None
        budget = self.budget
        if budget is None or budget.max_pending_age is None or self.closed:
            return
        if not self._pending_started:
            return  # nothing pending: stay disarmed until the next request
        oldest = min(self._pending_started.values())
        age = self.sim.now - oldest
        if age + 1e-9 >= budget.max_pending_age:
            self._exhaust("rpc-stalled",
                          f"oldest RPC pending {age:g}s")
            return
        self._arm_age_timer()

    def _writer_loop(self) -> Generator:
        while True:
            message = yield self._outbox.get()
            if message is None:
                return
            try:
                yield from self.stream.send(message)
            except TcpError:
                self._close_pending()
                return

    def _close_pending(self) -> None:
        was_closed = self.closed
        self.closed = True
        pending, self._pending = self._pending, {}
        self._pending_started.clear()
        if self._age_timer is not None:
            self._age_timer.cancel()
            self._age_timer = None
        # A peer farewell (SessionEnd, any reason) makes this a legal
        # shutdown even with RPCs still in flight — the waiters get a
        # plain SessionClosed and nobody is scored for it.  A transport
        # death with RPCs pending and *no* farewell and *no* budget
        # verdict is a silent abandon: the misbehavior-scoring signal.
        farewell = self.end_reason is not None
        if not was_closed:
            self.abandoned = (
                bool(pending) and not farewell and self.misbehavior is None
            )
        obs = self._obs
        if obs.enabled and not was_closed:
            if farewell:
                obs.emit("rpc", "session-closed",
                         endpoint=self.endpoint_name,
                         reason=self.end_reason, pending=len(pending))
            else:
                obs.counter("rpc.sessions_lost").inc()
                obs.emit("rpc", "session-lost", endpoint=self.endpoint_name,
                         pending=len(pending), abandoned=self.abandoned)
        for event in pending.values():
            event.fire(None)

    def _request(self, message: Message, reqid: int) -> Generator:
        """Send a command and wait for its matched response.

        Raises :class:`SessionClosed` when the session dies mid-command
        and :class:`RpcTimeout` when ``rpc_timeout`` is set and elapses
        first (the reqid is abandoned; a late response is discarded by
        the reader loop).
        """
        if self.closed:
            if self.misbehavior is not None:
                raise self.misbehavior
            raise SessionClosed("endpoint session is closed")
        obs = self._obs
        op = type(message).__name__.lower()
        started = self.sim.now if obs.enabled else 0.0
        waiter = self.sim.event(name=f"req-{reqid}")
        self._pending[reqid] = waiter
        self._pending_started[reqid] = self.sim.now
        self.machine.note_request(reqid)
        self._arm_age_timer()
        self._outbox.put(message)
        if self.rpc_timeout is not None:
            timeout_event = self.sim.event(name=f"req-{reqid}-timeout")
            timer = self.sim.schedule(self.rpc_timeout, timeout_event.fire)
            index, response = yield any_of(self.sim, [waiter, timeout_event])
            if index == 1:
                self._pending.pop(reqid, None)
                self._pending_started.pop(reqid, None)
                self.rpc_timeouts += 1
                if obs.enabled:
                    obs.counter("rpc.timeouts", op=op).inc()
                    obs.emit("rpc", "timeout", endpoint=self.endpoint_name,
                             op=op, reqid=reqid, timeout=self.rpc_timeout)
                raise RpcTimeout(op, self.rpc_timeout)
            timer.cancel()
        else:
            response = yield waiter
        if response is None:
            if self.misbehavior is not None:
                raise self.misbehavior
            raise SessionClosed("endpoint session ended mid-command")
        if obs.enabled:
            obs.counter("controller.rpcs", op=op).inc()
            obs.histogram("controller.rpc_rtt_s").observe(
                self.sim.now - started
            )
        return response

    def _reqid(self) -> int:
        reqid = self._next_reqid
        self._next_reqid += 1
        return reqid

    # -- Table 1 commands -------------------------------------------------------

    def nopen(self, sktid: int, proto: int, locport: int = 0,
              remaddr: int = 0, remport: int = 0) -> Generator:
        reqid = self._reqid()
        response = yield from self._request(
            NOpen(reqid=reqid, sktid=sktid, proto=proto, locport=locport,
                  remaddr=remaddr, remport=remport),
            reqid,
        )
        return response.status

    def nopen_raw(self, sktid: int) -> Generator:
        return (yield from self.nopen(sktid, SOCK_RAW))

    def nopen_udp(self, sktid: int, locport: int = 0, remaddr: int = 0,
                  remport: int = 0) -> Generator:
        return (yield from self.nopen(sktid, SOCK_UDP, locport, remaddr, remport))

    def nopen_tcp(self, sktid: int, remaddr: int, remport: int,
                  locport: int = 0) -> Generator:
        return (yield from self.nopen(sktid, SOCK_TCP, locport, remaddr, remport))

    def nclose(self, sktid: int) -> Generator:
        reqid = self._reqid()
        response = yield from self._request(NClose(reqid=reqid, sktid=sktid), reqid)
        return response.status

    def nsend(self, sktid: int, time_ticks: int, data: bytes) -> Generator:
        reqid = self._reqid()
        response = yield from self._request(
            NSend(reqid=reqid, sktid=sktid, time=time_ticks, data=data), reqid
        )
        return response.status

    def nsend_nowait(self, sktid: int, time_ticks: int, data: bytes) -> None:
        """Pipelined nsend: queue the command without awaiting its Result.

        Used when streaming many sends back-to-back (the Result for an
        unawaited reqid is discarded by the reader loop).
        """
        if self._obs.enabled:
            self._obs.counter("controller.rpcs_pipelined").inc()
        reqid = self._reqid()
        self._nowait_ops[reqid] = f"nsend:{sktid}"
        self.machine.note_request(reqid)
        self._outbox.put(
            NSend(reqid=reqid, sktid=sktid, time=time_ticks, data=data)
        )

    def ncap(self, sktid: int, time_ticks: int,
             filt: Union[FilterProgram, bytes]) -> Generator:
        program = filt.encode() if isinstance(filt, FilterProgram) else filt
        reqid = self._reqid()
        response = yield from self._request(
            NCap(reqid=reqid, sktid=sktid, time=time_ticks, filt=program), reqid
        )
        if response.status == ERR_MONITOR_REJECTED:
            # The endpoint's static verifier refused the filter; keep the
            # report so the experimenter sees *why* instead of a bare code.
            self.last_verifier_report = response.payload.decode(
                "utf-8", "replace"
            )
        return response.status

    def npoll(self, time_ticks: int) -> Generator:
        """Returns the PollData response (records + drop accounting)."""
        reqid = self._reqid()
        response = yield from self._request(NPoll(reqid=reqid, time=time_ticks), reqid)
        if not isinstance(response, PollData):
            raise CommandError("npoll", getattr(response, "status", -1))
        return response

    def mread(self, memaddr: int, bytecnt: int) -> Generator:
        reqid = self._reqid()
        response = yield from self._request(
            MRead(reqid=reqid, memaddr=memaddr, bytecnt=bytecnt), reqid
        )
        if response.status != ST_OK:
            raise CommandError("mread", response.status)
        return response.payload

    def mwrite(self, memaddr: int, data: bytes) -> Generator:
        reqid = self._reqid()
        response = yield from self._request(
            MWrite(reqid=reqid, memaddr=memaddr, data=data), reqid
        )
        return response.status

    # -- conveniences ---------------------------------------------------------------

    def read_clock(self) -> Generator:
        """Read the endpoint's 64-bit clock (ns ticks) via mread (§3.1)."""
        data = yield from self.mread(OFF_CLOCK, 8)
        return int.from_bytes(data, "big")

    def expect_ok(self, status: int, command: str) -> None:
        if status != ST_OK:
            raise CommandError(command, status)

    def wait_resumed(self) -> Generator:
        """Block until an interruption ends (§3.3)."""
        if not self.interrupted:
            return None
        event = self.sim.event(name="wait-resumed")
        self._interruption_events.append(event)
        yield event
        return None

    def yield_control(self) -> None:
        self._outbox.put(Yield())

    def bye(self) -> None:
        self._outbox.put(Bye())


class ControllerServer:
    """Accepts endpoint connections for one experiment.

    Experiment controllers are ephemeral (§1): create one, run the
    experiment over the handles it yields, tear it down.
    """

    def __init__(self, node: Node, port: int, identity: ExperimentIdentity,
                 rpc_timeout: Optional[float] = None,
                 budget: Optional[SessionBudget] = None) -> None:
        self.node = node
        self.port = port
        self.identity = identity
        self.rpc_timeout = rpc_timeout
        # Per-session budget applied to every handle this server creates.
        self.budget = budget
        # Optional hook(endpoint_name, reason) fired on each AuthFail —
        # the fleet pool uses it to score repeated auth failures.
        self.on_auth_fail = None
        self.endpoints: Queue = node.sim.queue(name="controller-endpoints")
        self.auth_failures: list[str] = []
        # Verifier reports from endpoints that rejected a certificate
        # monitor at session setup (AuthFail.code == ERR_MONITOR_REJECTED).
        self.monitor_rejections: list[str] = []
        self._listener = None
        self._accept_proc = None

    def start(self) -> "ControllerServer":
        self._listener = self.node.tcp.listen(self.port)
        self._accept_proc = self.node.spawn(self._accept_loop(), name="ctl-accept")
        return self

    def _accept_loop(self) -> Generator:
        while True:
            conn = yield self._listener.accept()
            self.node.spawn(self._handshake(conn), name="ctl-handshake")

    def _handshake(self, conn) -> Generator:
        stream = MessageStream(conn)
        machine = SessionStateMachine(ROLE_CONTROLLER)
        try:
            hello = yield from stream.recv()
        except (TcpError, FramingError):
            conn.close()
            return
        if not isinstance(hello, Hello) or machine.observe(hello) is not None:
            conn.close()
            return
        from repro.proto.constants import PROTOCOL_VERSION

        if hello.version != PROTOCOL_VERSION:
            self.auth_failures.append(
                f"protocol version mismatch: endpoint speaks {hello.version}"
            )
            conn.close()
            return
        yield from stream.send(
            Auth(
                descriptor=self.identity.descriptor_bytes,
                chains=self.identity.chain_bytes_list,
                priority=self.identity.priority,
            )
        )
        try:
            response = yield from stream.recv()
        except (TcpError, FramingError):
            conn.close()
            return
        if machine.observe(response) is not None:
            # e.g. a Result before any auth response: reject the session
            # outright rather than adopting a peer already off-script.
            conn.close()
            return
        if isinstance(response, AuthOk):
            handle = EndpointHandle(
                self.node, stream, hello, response.session_id,
                response.buffer_limit, rpc_timeout=self.rpc_timeout,
                budget=self.budget, machine=machine,
            )
            self.endpoints.put(handle)
        elif isinstance(response, AuthFail):
            self.auth_failures.append(response.reason)
            if response.code == ERR_MONITOR_REJECTED:
                self.monitor_rejections.append(
                    response.report or response.reason
                )
            if self.on_auth_fail is not None:
                self.on_auth_fail(hello.endpoint_name, response.reason)
            conn.close()
        else:
            conn.close()

    def wait_endpoint(self) -> Event:
        """Event yielding the next authenticated EndpointHandle."""
        return self.endpoints.get()

    def stop(self) -> None:
        if self._accept_proc is not None:
            self._accept_proc.kill()
        if self._listener is not None:
            self._listener.close()
