"""Experiment controllers: where all PacketLab experiment logic lives."""

from repro.controller.client import (
    CommandError,
    ControllerServer,
    EndpointHandle,
    ExperimentIdentity,
    RpcTimeout,
    SessionClosed,
)
from repro.controller.clocksync import (
    ClockEstimate,
    ClockSample,
    estimate_clock,
)
from repro.controller.recovery import ResilientHandle
from repro.controller.session import Experimenter, OperatorGrant

__all__ = [
    "ClockEstimate",
    "ClockSample",
    "CommandError",
    "ControllerServer",
    "EndpointHandle",
    "Experimenter",
    "ExperimentIdentity",
    "OperatorGrant",
    "ResilientHandle",
    "RpcTimeout",
    "SessionClosed",
    "estimate_clock",
]
