"""Experiment controllers: where all PacketLab experiment logic lives."""

from repro.controller.client import (
    CommandError,
    ControllerServer,
    EndpointHandle,
    ExperimentIdentity,
    SessionClosed,
)
from repro.controller.clocksync import (
    ClockEstimate,
    ClockSample,
    estimate_clock,
)
from repro.controller.session import Experimenter, OperatorGrant

__all__ = [
    "ClockEstimate",
    "ClockSample",
    "CommandError",
    "ControllerServer",
    "EndpointHandle",
    "Experimenter",
    "ExperimentIdentity",
    "OperatorGrant",
    "SessionClosed",
    "estimate_clock",
]
