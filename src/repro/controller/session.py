"""Experimenter identity and the Figure 1 authorization workflow.

An :class:`Experimenter` owns a key pair and collects authorizations:

- a publish authorization from a rendezvous operator (Figure 1 ➊),
- delegation certificates from endpoint operators (➋/➌).

It can then sign experiment certificates for descriptors (➍), build the
chains each party verifies, publish to a rendezvous server (➎/➏), and hand
a :class:`~repro.controller.client.ExperimentIdentity` to a controller for
endpoint presentation (➐/➑).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.controller.client import ExperimentIdentity
from repro.crypto.certificate import (
    CERT_EXPERIMENT,
    Certificate,
    Restrictions,
)
from repro.crypto.chain import CertificateChain
from repro.crypto.keys import KeyPair
from repro.netsim.node import Node
from repro.netsim.stack.tcp import TcpError
from repro.proto.framing import FramingError, MessageStream
from repro.proto.messages import RdzPublish, RdzPublishResult
from repro.rendezvous.descriptor import ExperimentDescriptor


@dataclass
class OperatorGrant:
    """A delegation from an operator to this experimenter."""

    operator_public_key: bytes
    certificate: Certificate


class Experimenter:
    """A researcher with a key pair and collected authorizations."""

    def __init__(self, name: str, keypair: Optional[KeyPair] = None) -> None:
        self.name = name
        self.keys = keypair or KeyPair.from_name(name)
        self.endpoint_grants: list[OperatorGrant] = []
        self.publish_grant: Optional[OperatorGrant] = None

    # -- obtaining authorizations (operator side actions) ----------------------

    def granted_endpoint_access(
        self, operator: KeyPair, restrictions: Optional[Restrictions] = None
    ) -> OperatorGrant:
        """An endpoint operator signs a delegation for this experimenter
        (Figure 1 ➌)."""
        grant = OperatorGrant(
            operator_public_key=operator.public_key,
            certificate=Certificate.delegate(
                operator, self.keys.public_key, restrictions
            ),
        )
        self.endpoint_grants.append(grant)
        return grant

    def granted_publish_access(
        self, rendezvous_operator: KeyPair,
        restrictions: Optional[Restrictions] = None,
    ) -> OperatorGrant:
        """A rendezvous operator authorizes publishing (Figure 1 ➊)."""
        self.publish_grant = OperatorGrant(
            operator_public_key=rendezvous_operator.public_key,
            certificate=Certificate.delegate(
                rendezvous_operator, self.keys.public_key, restrictions
            ),
        )
        return self.publish_grant

    # -- experiment certificates and chains -------------------------------------

    def make_descriptor(
        self,
        controller_node: Node,
        controller_port: int,
        experiment_name: str,
        url: str = "",
    ) -> ExperimentDescriptor:
        return ExperimentDescriptor(
            name=experiment_name,
            controller_addr=controller_node.primary_address(),
            controller_port=controller_port,
            url=url or f"https://example.org/experiments/{experiment_name}",
            experimenter_key_id=self.keys.key_id,
        )

    def experiment_certificate(
        self,
        descriptor: ExperimentDescriptor,
        restrictions: Optional[Restrictions] = None,
    ) -> Certificate:
        """Sign an experiment certificate for a descriptor (Figure 1 ➍)."""
        return Certificate.issue(
            self.keys, CERT_EXPERIMENT, descriptor.hash(), restrictions
        )

    def _chain_from_grant(
        self,
        grant: OperatorGrant,
        descriptor: ExperimentDescriptor,
        experiment_restrictions: Optional[Restrictions],
    ) -> CertificateChain:
        chain = CertificateChain()
        chain.append(grant.certificate, grant.operator_public_key)
        chain.append(
            self.experiment_certificate(descriptor, experiment_restrictions),
            self.keys.public_key,
        )
        return chain

    def endpoint_chain(
        self,
        descriptor: ExperimentDescriptor,
        grant: Optional[OperatorGrant] = None,
        experiment_restrictions: Optional[Restrictions] = None,
    ) -> CertificateChain:
        """The chain presented to endpoints (operator-anchored)."""
        if grant is None:
            if not self.endpoint_grants:
                raise RuntimeError(f"{self.name} has no endpoint grants")
            grant = self.endpoint_grants[0]
        return self._chain_from_grant(grant, descriptor, experiment_restrictions)

    def publish_chain(
        self,
        descriptor: ExperimentDescriptor,
        experiment_restrictions: Optional[Restrictions] = None,
    ) -> CertificateChain:
        """The chain presented to the rendezvous server."""
        if self.publish_grant is None:
            raise RuntimeError(f"{self.name} has no publish grant")
        return self._chain_from_grant(
            self.publish_grant, descriptor, experiment_restrictions
        )

    def identity(
        self,
        descriptor: ExperimentDescriptor,
        priority: int = 0,
        grant: Optional[OperatorGrant] = None,
        experiment_restrictions: Optional[Restrictions] = None,
    ) -> ExperimentIdentity:
        """Everything a ControllerServer presents to endpoints.

        With ``grant=None`` the identity carries one chain per collected
        operator grant, so endpoints of every delegating operator accept
        the same experiment.
        """
        if grant is not None:
            grants = [grant]
        else:
            if not self.endpoint_grants:
                raise RuntimeError(f"{self.name} has no endpoint grants")
            grants = self.endpoint_grants
        chains = tuple(
            self._chain_from_grant(g, descriptor, experiment_restrictions).encode()
            for g in grants
        )
        return ExperimentIdentity(
            descriptor_bytes=descriptor.encode(),
            chain_bytes_list=chains,
            priority=priority,
        )

    # -- publishing (Figure 1 ➎) ---------------------------------------------------

    def publish(
        self,
        node: Node,
        rdz_addr: int,
        rdz_port: int,
        descriptor: ExperimentDescriptor,
        experiment_restrictions: Optional[Restrictions] = None,
        grants: Optional[list[OperatorGrant]] = None,
    ) -> Generator:
        """Publish an experiment; returns (ok, reason). Generator — use
        ``ok, reason = yield from experimenter.publish(...)``.

        ``grants`` restricts the delivery chains sent along (used by
        sharded rendezvous to give each shard only the chains whose
        operator channels it owns); default is every collected grant.
        """
        publish_chain = self.publish_chain(descriptor, experiment_restrictions)
        delivery = tuple(
            self._chain_from_grant(
                grant, descriptor, experiment_restrictions
            ).encode()
            for grant in (self.endpoint_grants if grants is None else grants)
        )
        try:
            conn = yield from node.tcp.open_connection(rdz_addr, rdz_port)
        except TcpError as exc:
            return False, f"cannot reach rendezvous: {exc}"
        stream = MessageStream(conn)
        yield from stream.send(
            RdzPublish(
                descriptor=descriptor.encode(),
                chain=publish_chain.encode(),
                delivery_chains=delivery,
            )
        )
        try:
            response = yield from stream.recv()
        except (TcpError, FramingError) as exc:
            conn.close()
            return False, f"rendezvous error: {exc}"
        conn.close()
        if isinstance(response, RdzPublishResult):
            return response.ok, response.reason
        return False, "unexpected rendezvous response"
