"""UDP datagram codec with pseudo-header checksum."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.packet.checksum import internet_checksum, pseudo_header
from repro.packet.ipv4 import PROTO_UDP
from repro.util.byteio import DecodeError

UDP_HEADER_LEN = 8


@dataclass(frozen=True)
class UdpDatagram:
    src_port: int
    dst_port: int
    payload: bytes

    @property
    def length(self) -> int:
        return UDP_HEADER_LEN + len(self.payload)

    def encode(self, src_ip: int, dst_ip: int) -> bytes:
        """Serialize; the checksum covers the IPv4 pseudo-header."""
        header = struct.pack(
            ">HHHH", self.src_port & 0xFFFF, self.dst_port & 0xFFFF, self.length, 0
        )
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_UDP, self.length)
        checksum = internet_checksum(pseudo + header + self.payload)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        return header[:6] + struct.pack(">H", checksum) + self.payload

    @classmethod
    def decode(
        cls, data: bytes, src_ip: int = 0, dst_ip: int = 0, verify_checksum: bool = True
    ) -> "UdpDatagram":
        if len(data) < UDP_HEADER_LEN:
            raise DecodeError(f"UDP datagram too short: {len(data)} bytes")
        src_port, dst_port, length, checksum = struct.unpack(">HHHH", data[:UDP_HEADER_LEN])
        if length < UDP_HEADER_LEN or length > len(data):
            raise DecodeError(f"bad UDP length {length} for {len(data)} byte buffer")
        if verify_checksum and checksum != 0:
            pseudo = pseudo_header(src_ip, dst_ip, PROTO_UDP, length)
            if internet_checksum(pseudo + data[:length]) != 0:
                raise DecodeError("bad UDP checksum")
        return cls(src_port=src_port, dst_port=dst_port, payload=bytes(data[UDP_HEADER_LEN:length]))
