"""Minimal DNS codec: queries and responses with A records.

Enough to reproduce a RIPE-Atlas-style DNS measurement through the
PacketLab interface (one of the measurement types the paper cites as the
"fixed but useful" set). Supports encoding without name compression and
decoding with compression pointers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.util.byteio import DecodeError

QTYPE_A = 1
QCLASS_IN = 1

FLAG_QR = 0x8000  # response
FLAG_RD = 0x0100  # recursion desired
FLAG_RA = 0x0080  # recursion available

RCODE_NOERROR = 0
RCODE_NXDOMAIN = 3


def encode_name(name: str) -> bytes:
    """Encode a domain name as length-prefixed labels."""
    if name.endswith("."):
        name = name[:-1]
    out = bytearray()
    if name:
        for label in name.split("."):
            raw = label.encode("ascii")
            if not 0 < len(raw) < 64:
                raise ValueError(f"bad DNS label: {label!r}")
            out.append(len(raw))
            out.extend(raw)
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next offset)."""
    labels: list[str] = []
    jumps = 0
    next_offset = None
    pos = offset
    while True:
        if pos >= len(data):
            raise DecodeError("truncated DNS name")
        length = data[pos]
        if length == 0:
            pos += 1
            break
        if length & 0xC0 == 0xC0:  # compression pointer
            if pos + 1 >= len(data):
                raise DecodeError("truncated DNS compression pointer")
            target = ((length & 0x3F) << 8) | data[pos + 1]
            if next_offset is None:
                next_offset = pos + 2
            pos = target
            jumps += 1
            if jumps > 32:
                raise DecodeError("DNS compression pointer loop")
            continue
        if length & 0xC0:
            raise DecodeError(f"unsupported DNS label type: {length:#x}")
        if pos + 1 + length > len(data):
            raise DecodeError("truncated DNS label")
        labels.append(data[pos + 1 : pos + 1 + length].decode("ascii"))
        pos += 1 + length
    return ".".join(labels), (next_offset if next_offset is not None else pos)


@dataclass(frozen=True)
class DnsQuestion:
    name: str
    qtype: int = QTYPE_A
    qclass: int = QCLASS_IN


@dataclass(frozen=True)
class DnsRecord:
    name: str
    rtype: int
    rclass: int
    ttl: int
    rdata: bytes

    @property
    def a_address(self) -> int:
        """Address of an A record, as an integer."""
        if self.rtype != QTYPE_A or len(self.rdata) != 4:
            raise ValueError("not an A record")
        return struct.unpack(">I", self.rdata)[0]

    @classmethod
    def a(cls, name: str, address: int, ttl: int = 300) -> "DnsRecord":
        return cls(name, QTYPE_A, QCLASS_IN, ttl, struct.pack(">I", address))


@dataclass(frozen=True)
class DnsMessage:
    ident: int
    flags: int
    questions: tuple[DnsQuestion, ...] = ()
    answers: tuple[DnsRecord, ...] = ()

    @property
    def is_response(self) -> bool:
        return bool(self.flags & FLAG_QR)

    @property
    def rcode(self) -> int:
        return self.flags & 0x000F

    @classmethod
    def query(cls, ident: int, name: str, qtype: int = QTYPE_A) -> "DnsMessage":
        return cls(
            ident=ident,
            flags=FLAG_RD,
            questions=(DnsQuestion(name=name, qtype=qtype),),
        )

    def respond(self, answers: tuple[DnsRecord, ...], rcode: int = RCODE_NOERROR) -> "DnsMessage":
        return DnsMessage(
            ident=self.ident,
            flags=FLAG_QR | FLAG_RA | (self.flags & FLAG_RD) | (rcode & 0x0F),
            questions=self.questions,
            answers=answers,
        )

    def encode(self) -> bytes:
        out = bytearray(
            struct.pack(
                ">HHHHHH",
                self.ident & 0xFFFF,
                self.flags & 0xFFFF,
                len(self.questions),
                len(self.answers),
                0,
                0,
            )
        )
        for question in self.questions:
            out.extend(encode_name(question.name))
            out.extend(struct.pack(">HH", question.qtype, question.qclass))
        for record in self.answers:
            out.extend(encode_name(record.name))
            out.extend(
                struct.pack(
                    ">HHIH", record.rtype, record.rclass, record.ttl & 0xFFFFFFFF, len(record.rdata)
                )
            )
            out.extend(record.rdata)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "DnsMessage":
        if len(data) < 12:
            raise DecodeError(f"DNS message too short: {len(data)} bytes")
        ident, flags, qdcount, ancount, nscount, arcount = struct.unpack(">HHHHHH", data[:12])
        if nscount or arcount:
            raise DecodeError("authority/additional sections unsupported")
        pos = 12
        questions: list[DnsQuestion] = []
        for _ in range(qdcount):
            name, pos = decode_name(data, pos)
            if pos + 4 > len(data):
                raise DecodeError("truncated DNS question")
            qtype, qclass = struct.unpack(">HH", data[pos : pos + 4])
            pos += 4
            questions.append(DnsQuestion(name=name, qtype=qtype, qclass=qclass))
        answers: list[DnsRecord] = []
        for _ in range(ancount):
            name, pos = decode_name(data, pos)
            if pos + 10 > len(data):
                raise DecodeError("truncated DNS answer")
            rtype, rclass, ttl, rdlength = struct.unpack(">HHIH", data[pos : pos + 10])
            pos += 10
            if pos + rdlength > len(data):
                raise DecodeError("truncated DNS rdata")
            answers.append(
                DnsRecord(name=name, rtype=rtype, rclass=rclass, ttl=ttl,
                          rdata=bytes(data[pos : pos + rdlength]))
            )
            pos += rdlength
        return cls(ident=ident, flags=flags, questions=tuple(questions), answers=tuple(answers))
