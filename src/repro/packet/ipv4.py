"""IPv4 header codec.

The simulator's on-wire unit is an :class:`IPv4Packet`: a parsed IPv4 header
plus an opaque L4 payload. Packets are encoded to real header bytes whenever
they cross a boundary that the paper defines in terms of bytes — the raw
socket interface, packet filters, and capture buffers — so controller-side
code sees genuine IPv4 packets.

Limitations (documented, deliberate): no IP options (IHL is always 5) and no
fragmentation. Neither is needed by any experiment in the paper, and both
are rejected loudly rather than mis-parsed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from repro.packet.checksum import internet_checksum
from repro.util.byteio import DecodeError

IP_HEADER_LEN = 20
IP_MAX_PACKET = 65535

# Protocol numbers (IANA).
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_RAW_TEST = 253  # RFC 3692 experimental; used by tests for opaque payloads

PROTO_NAMES = {PROTO_ICMP: "icmp", PROTO_TCP: "tcp", PROTO_UDP: "udp"}

DEFAULT_TTL = 64


@dataclass(frozen=True)
class IPv4Packet:
    """A parsed IPv4 packet (header fields + payload bytes)."""

    src: int
    dst: int
    proto: int
    payload: bytes
    ttl: int = DEFAULT_TTL
    ident: int = 0
    dscp: int = 0
    dont_fragment: bool = True

    @property
    def total_length(self) -> int:
        return IP_HEADER_LEN + len(self.payload)

    def decremented(self) -> "IPv4Packet":
        """Copy with TTL reduced by one (router forwarding)."""
        if self.ttl <= 0:
            raise ValueError("cannot decrement TTL below zero")
        return replace(self, ttl=self.ttl - 1)

    def encode(self) -> bytes:
        """Serialize to wire bytes with a correct header checksum."""
        if self.total_length > IP_MAX_PACKET:
            raise ValueError(f"packet too large: {self.total_length}")
        flags_frag = 0x4000 if self.dont_fragment else 0
        header = struct.pack(
            ">BBHHHBBHII",
            (4 << 4) | 5,  # version 4, IHL 5
            self.dscp << 2,
            self.total_length,
            self.ident & 0xFFFF,
            flags_frag,
            self.ttl & 0xFF,
            self.proto & 0xFF,
            0,  # checksum placeholder
            self.src & 0xFFFFFFFF,
            self.dst & 0xFFFFFFFF,
        )
        checksum = internet_checksum(header)
        header = header[:10] + struct.pack(">H", checksum) + header[12:]
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, verify_checksum: bool = True) -> "IPv4Packet":
        """Parse wire bytes into a packet, validating structure."""
        if len(data) < IP_HEADER_LEN:
            raise DecodeError(f"IPv4 packet too short: {len(data)} bytes")
        ver_ihl = data[0]
        version = ver_ihl >> 4
        ihl = ver_ihl & 0x0F
        if version != 4:
            raise DecodeError(f"not an IPv4 packet (version={version})")
        if ihl != 5:
            raise DecodeError(f"IP options unsupported (ihl={ihl})")
        (
            _vi,
            tos,
            total_length,
            ident,
            flags_frag,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = struct.unpack(">BBHHHBBHII", data[:IP_HEADER_LEN])
        if total_length < IP_HEADER_LEN or total_length > len(data):
            raise DecodeError(
                f"bad total length {total_length} for {len(data)} byte buffer"
            )
        if flags_frag & 0x3FFF:
            raise DecodeError("fragmented packets unsupported")
        if verify_checksum:
            if internet_checksum(data[:IP_HEADER_LEN]) != 0:
                raise DecodeError("bad IPv4 header checksum")
        return cls(
            src=src,
            dst=dst,
            proto=proto,
            payload=bytes(data[IP_HEADER_LEN:total_length]),
            ttl=ttl,
            ident=ident,
            dscp=tos >> 2,
            dont_fragment=bool(flags_frag & 0x4000),
        )

    def summary(self) -> str:
        from repro.util.inet import format_ip

        name = PROTO_NAMES.get(self.proto, str(self.proto))
        return (
            f"IPv4 {format_ip(self.src)} -> {format_ip(self.dst)} "
            f"{name} ttl={self.ttl} len={self.total_length}"
        )
