"""TCP segment codec (fixed 20-byte header, no options except MSS on SYN)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.packet.checksum import internet_checksum, pseudo_header
from repro.packet.ipv4 import PROTO_TCP
from repro.util.byteio import DecodeError

TCP_HEADER_LEN = 20

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20

_FLAG_NAMES = [
    (FLAG_SYN, "SYN"),
    (FLAG_FIN, "FIN"),
    (FLAG_RST, "RST"),
    (FLAG_PSH, "PSH"),
    (FLAG_ACK, "ACK"),
    (FLAG_URG, "URG"),
]


def flag_names(flags: int) -> str:
    names = [name for bit, name in _FLAG_NAMES if flags & bit]
    return "|".join(names) if names else "none"


@dataclass(frozen=True)
class TcpSegment:
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    payload: bytes = b""
    mss: int | None = None  # MSS option, only meaningful on SYN segments

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)

    @property
    def header_len(self) -> int:
        return TCP_HEADER_LEN + (4 if self.mss is not None else 0)

    @property
    def wire_len(self) -> int:
        return self.header_len + len(self.payload)

    @property
    def seg_len(self) -> int:
        """Sequence-space length: payload plus SYN/FIN phantom bytes."""
        return len(self.payload) + (1 if self.has(FLAG_SYN) else 0) + (
            1 if self.has(FLAG_FIN) else 0
        )

    def encode(self, src_ip: int, dst_ip: int) -> bytes:
        options = b""
        if self.mss is not None:
            options = struct.pack(">BBH", 2, 4, self.mss & 0xFFFF)
        data_offset = (TCP_HEADER_LEN + len(options)) // 4
        header = struct.pack(
            ">HHIIBBHHH",
            self.src_port & 0xFFFF,
            self.dst_port & 0xFFFF,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            data_offset << 4,
            self.flags & 0x3F,
            self.window & 0xFFFF,
            0,  # checksum placeholder
            0,  # urgent pointer
        )
        segment = header + options + self.payload
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_TCP, len(segment))
        checksum = internet_checksum(pseudo + segment)
        return segment[:16] + struct.pack(">H", checksum) + segment[18:]

    @classmethod
    def decode(
        cls, data: bytes, src_ip: int = 0, dst_ip: int = 0, verify_checksum: bool = True
    ) -> "TcpSegment":
        if len(data) < TCP_HEADER_LEN:
            raise DecodeError(f"TCP segment too short: {len(data)} bytes")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_byte,
            flags,
            window,
            _checksum,
            _urgent,
        ) = struct.unpack(">HHIIBBHHH", data[:TCP_HEADER_LEN])
        header_len = (offset_byte >> 4) * 4
        if header_len < TCP_HEADER_LEN or header_len > len(data):
            raise DecodeError(f"bad TCP data offset: {header_len}")
        if verify_checksum:
            pseudo = pseudo_header(src_ip, dst_ip, PROTO_TCP, len(data))
            if internet_checksum(pseudo + data) != 0:
                raise DecodeError("bad TCP checksum")
        mss = None
        options = data[TCP_HEADER_LEN:header_len]
        pos = 0
        while pos < len(options):
            kind = options[pos]
            if kind == 0:  # end of options
                break
            if kind == 1:  # NOP
                pos += 1
                continue
            if pos + 1 >= len(options):
                raise DecodeError("truncated TCP option")
            length = options[pos + 1]
            if length < 2 or pos + length > len(options):
                raise DecodeError("bad TCP option length")
            if kind == 2 and length == 4:
                mss = struct.unpack(">H", options[pos + 2 : pos + 4])[0]
            pos += length
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags & 0x3F,
            window=window,
            payload=bytes(data[header_len:]),
            mss=mss,
        )

    def summary(self) -> str:
        return (
            f"TCP {self.src_port}->{self.dst_port} [{flag_names(self.flags)}] "
            f"seq={self.seq} ack={self.ack} win={self.window} len={len(self.payload)}"
        )
