"""RFC 1071 Internet checksum."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement sum of 16-bit words, as used by IP/ICMP/UDP/TCP.

    Odd-length input is padded with a zero byte, per RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def pseudo_header(src: int, dst: int, proto: int, length: int) -> bytes:
    """IPv4 pseudo-header used in UDP/TCP checksums."""
    return bytes(
        (
            (src >> 24) & 0xFF,
            (src >> 16) & 0xFF,
            (src >> 8) & 0xFF,
            src & 0xFF,
            (dst >> 24) & 0xFF,
            (dst >> 16) & 0xFF,
            (dst >> 8) & 0xFF,
            dst & 0xFF,
            0,
            proto & 0xFF,
            (length >> 8) & 0xFF,
            length & 0xFF,
        )
    )
