"""ICMP message codec (echo, time exceeded, destination unreachable)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.packet.checksum import internet_checksum
from repro.util.byteio import DecodeError

ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACH = 3
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11

UNREACH_NET = 0
UNREACH_HOST = 1
UNREACH_PROTO = 2
UNREACH_PORT = 3

TTL_EXPIRED_IN_TRANSIT = 0

ICMP_HEADER_LEN = 8


@dataclass(frozen=True)
class IcmpMessage:
    """A parsed ICMP message.

    ``rest`` is the 32-bit field after type/code/checksum whose meaning
    depends on the type (identifier+sequence for echo, unused for errors);
    ``body`` is everything after the 8-byte header (echo payload, or the
    original IP header + 8 bytes for error messages).
    """

    icmp_type: int
    code: int
    rest: int
    body: bytes

    def encode(self) -> bytes:
        header = struct.pack(
            ">BBHI", self.icmp_type & 0xFF, self.code & 0xFF, 0, self.rest & 0xFFFFFFFF
        )
        checksum = internet_checksum(header + self.body)
        return (
            header[:2] + struct.pack(">H", checksum) + header[4:] + self.body
        )

    @classmethod
    def decode(cls, data: bytes, verify_checksum: bool = True) -> "IcmpMessage":
        if len(data) < ICMP_HEADER_LEN:
            raise DecodeError(f"ICMP message too short: {len(data)} bytes")
        icmp_type, code, _checksum, rest = struct.unpack(">BBHI", data[:ICMP_HEADER_LEN])
        if verify_checksum and internet_checksum(data) != 0:
            raise DecodeError("bad ICMP checksum")
        return cls(icmp_type=icmp_type, code=code, rest=rest, body=bytes(data[ICMP_HEADER_LEN:]))

    # -- echo helpers -----------------------------------------------------

    @classmethod
    def echo_request(cls, ident: int, seq: int, payload: bytes = b"") -> "IcmpMessage":
        return cls(
            icmp_type=ICMP_ECHO_REQUEST,
            code=0,
            rest=((ident & 0xFFFF) << 16) | (seq & 0xFFFF),
            body=payload,
        )

    @classmethod
    def echo_reply(cls, ident: int, seq: int, payload: bytes = b"") -> "IcmpMessage":
        return cls(
            icmp_type=ICMP_ECHO_REPLY,
            code=0,
            rest=((ident & 0xFFFF) << 16) | (seq & 0xFFFF),
            body=payload,
        )

    @property
    def echo_ident(self) -> int:
        return (self.rest >> 16) & 0xFFFF

    @property
    def echo_seq(self) -> int:
        return self.rest & 0xFFFF

    # -- error helpers ----------------------------------------------------

    @classmethod
    def time_exceeded(cls, original_datagram: bytes) -> "IcmpMessage":
        """TTL-expired error quoting the original IP header + 8 bytes."""
        return cls(
            icmp_type=ICMP_TIME_EXCEEDED,
            code=TTL_EXPIRED_IN_TRANSIT,
            rest=0,
            body=original_datagram[:28],
        )

    @classmethod
    def dest_unreachable(cls, code: int, original_datagram: bytes) -> "IcmpMessage":
        return cls(
            icmp_type=ICMP_DEST_UNREACH,
            code=code,
            rest=0,
            body=original_datagram[:28],
        )

    @property
    def is_error(self) -> bool:
        return self.icmp_type in (ICMP_DEST_UNREACH, ICMP_TIME_EXCEEDED)

    def original_datagram(self) -> bytes:
        """For error messages: the quoted original IP header + 8 bytes."""
        if not self.is_error:
            raise ValueError("not an ICMP error message")
        return self.body
