"""Packet header codecs: IPv4, ICMP, UDP, TCP, and a minimal DNS.

These are real wire-format codecs (checksums included); the PacketLab raw
socket interface, the filter VM, and the capture path all operate on the
bytes these produce.
"""

from repro.packet.checksum import internet_checksum, pseudo_header
from repro.packet.dns import DnsMessage, DnsQuestion, DnsRecord
from repro.packet.icmp import (
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMP_TIME_EXCEEDED,
    UNREACH_HOST,
    UNREACH_NET,
    UNREACH_PORT,
    IcmpMessage,
)
from repro.packet.ipv4 import (
    DEFAULT_TTL,
    IP_HEADER_LEN,
    PROTO_ICMP,
    PROTO_RAW_TEST,
    PROTO_TCP,
    PROTO_UDP,
    IPv4Packet,
)
from repro.packet.tcp import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    TcpSegment,
)
from repro.packet.udp import UdpDatagram

__all__ = [
    "DEFAULT_TTL",
    "DnsMessage",
    "DnsQuestion",
    "DnsRecord",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_PSH",
    "FLAG_RST",
    "FLAG_SYN",
    "ICMP_DEST_UNREACH",
    "ICMP_ECHO_REPLY",
    "ICMP_ECHO_REQUEST",
    "ICMP_TIME_EXCEEDED",
    "IP_HEADER_LEN",
    "IPv4Packet",
    "IcmpMessage",
    "PROTO_ICMP",
    "PROTO_RAW_TEST",
    "PROTO_TCP",
    "PROTO_UDP",
    "TcpSegment",
    "UNREACH_HOST",
    "UNREACH_NET",
    "UNREACH_PORT",
    "UdpDatagram",
    "internet_checksum",
    "pseudo_header",
]
