"""Query layer: filter / project / group-by / percentile over segments.

A :class:`Query` plans against manifests only — per segment it reads
the (small) header, tests every predicate against the column zone maps,
and *prunes* segments that provably contain no matching row before any
column data is touched. Surviving segments are decoded column-by-column
(only the columns the query references) and evaluated with
dictionary-aware fast paths: a predicate over a string column is
resolved once per segment into a per-code bitmap, so the row loop
compares small integers.

Aggregations reuse the fleet's mergeable machinery — percentiles come
from :class:`~repro.fleet.aggregate.QuantileSketch`, so a group-by p99
over ten million sample rows costs one sketch per group, not a sort.

Missing cells (NaN for floats, ``""`` for strings — and any column a
segment never saw) match **no** comparison predicate; this is what
makes zone-map pruning sound, since zone maps cover present values
only.

Example::

    result = (Query(warehouse, "samples")
              .where("stream", "==", "rtt_s")
              .where("endpoint", ">=", "ep100")
              .group_by("endpoint")
              .agg(n="count", p99=("p99", "value"))
              .run())
    result.rows        # [{"endpoint": ..., "n": ..., "p99": ...}, ...]
    result.stats       # segments_total / segments_pruned / rows_scanned
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Union

from repro.fleet.aggregate import QuantileSketch
from repro.warehouse.schema import STR, TABLES, SchemaError
from repro.warehouse.segments import (
    Warehouse,
    WarehouseError,
    read_header,
    read_segment,
    zone_overlaps,
)

OPS = ("==", "!=", "<", "<=", ">", ">=", "in")

_PERCENTILE_FNS = {"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99,
                   "p999": 0.999}
_SIMPLE_FNS = ("count", "sum", "mean", "min", "max")


@dataclass(frozen=True)
class Predicate:
    column: str
    op: str
    value: Any

    def matcher(self, kind: str):
        """Value-level match function (missing cells handled upstream)."""
        op, want = self.op, self.value
        if op == "==":
            return lambda v: v == want
        if op == "!=":
            return lambda v: v != want
        if op == "<":
            return lambda v: v < want
        if op == "<=":
            return lambda v: v <= want
        if op == ">":
            return lambda v: v > want
        if op == ">=":
            return lambda v: v >= want
        if op == "in":
            members = set(want)
            return lambda v: v in members
        raise SchemaError(f"unknown operator {op!r}")


@dataclass
class QueryStats:
    segments_total: int = 0
    segments_pruned: int = 0
    segments_scanned: int = 0
    rows_scanned: int = 0
    rows_matched: int = 0
    campaigns: int = 0

    @property
    def pruned_fraction(self) -> float:
        if self.segments_total == 0:
            return 0.0
        return self.segments_pruned / self.segments_total

    def to_dict(self) -> dict:
        return {
            "segments_total": self.segments_total,
            "segments_pruned": self.segments_pruned,
            "segments_scanned": self.segments_scanned,
            "rows_scanned": self.rows_scanned,
            "rows_matched": self.rows_matched,
            "campaigns": self.campaigns,
            "pruned_fraction": round(self.pruned_fraction, 4),
        }


@dataclass
class QueryResult:
    rows: list[dict]
    stats: QueryStats = field(default_factory=QueryStats)


class _GroupAcc:
    """Mergeable accumulator for one group's aggregates."""

    __slots__ = ("count", "sums", "counts", "mins", "maxs", "sketches")

    def __init__(self) -> None:
        self.count = 0
        self.sums: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.mins: dict[str, float] = {}
        self.maxs: dict[str, float] = {}
        self.sketches: dict[str, QuantileSketch] = {}

    def sketch(self, column: str) -> QuantileSketch:
        sketch = self.sketches.get(column)
        if sketch is None:
            sketch = self.sketches[column] = QuantileSketch()
        return sketch


class Query:
    """A buildable, immutable-once-run query over one warehouse table."""

    def __init__(self, warehouse: Warehouse, table: str,
                 campaigns: Optional[Iterable[str]] = None) -> None:
        if table not in TABLES:
            raise SchemaError(
                f"unknown table {table!r} (have {sorted(TABLES)})"
            )
        self.warehouse = warehouse
        self.table = table
        self._campaigns = list(campaigns) if campaigns is not None else None
        self._predicates: list[Predicate] = []
        self._group: list[str] = []
        self._aggs: list[tuple[str, str, Optional[str]]] = []
        self._select: Optional[list[str]] = None
        self._limit: Optional[int] = None

    # -- builder --------------------------------------------------------------

    def where(self, column: str, op: str, value: Any) -> "Query":
        if op not in OPS:
            raise SchemaError(f"unknown operator {op!r} (have {OPS})")
        self._predicates.append(Predicate(column, op, value))
        return self

    def group_by(self, *columns: str) -> "Query":
        self._group.extend(columns)
        return self

    def agg(self, **aggs: Union[str, tuple]) -> "Query":
        """``name="count"`` or ``name=("fn", "column")`` with fn one of
        count/sum/mean/min/max/p50/p90/p95/p99/p999."""
        for name, spec in aggs.items():
            if isinstance(spec, str):
                fn, column = spec, None
            else:
                fn, column = spec[0], (spec[1] if len(spec) > 1 else None)
            if fn not in _SIMPLE_FNS and fn not in _PERCENTILE_FNS:
                raise SchemaError(f"unknown aggregate fn {fn!r}")
            if fn == "count":
                column = None  # count never reads a column
            elif not column:
                raise SchemaError(f"aggregate {fn!r} needs a column")
            self._aggs.append((name, fn, column))
        return self

    def select(self, *columns: str) -> "Query":
        self._select = list(columns)
        return self

    def limit(self, n: int) -> "Query":
        self._limit = max(0, int(n))
        return self

    # -- execution ------------------------------------------------------------

    def _needed_columns(self) -> list[str]:
        needed: list[str] = []
        for pred in self._predicates:
            needed.append(pred.column)
        needed.extend(self._group)
        for _, _, column in self._aggs:
            if column is not None:
                needed.append(column)
        if not self._aggs:
            needed.extend(self._select
                          if self._select is not None
                          else TABLES[self.table].fixed_names())
        seen: set[str] = set()
        unique = []
        for name in needed:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        return unique

    def run(self) -> QueryResult:
        stats = QueryStats()
        campaigns = (self._campaigns if self._campaigns is not None
                     else self.warehouse.campaigns())
        groups: dict[tuple, _GroupAcc] = {}
        raw_rows: list[dict] = []
        needed = self._needed_columns()
        aggregating = bool(self._aggs) or bool(self._group)
        for campaign in campaigns:
            try:
                manifest = self.warehouse.manifest(campaign)
            except WarehouseError:
                continue
            stats.campaigns += 1
            for seg in manifest.tables.get(self.table, ()):
                stats.segments_total += 1
                path = self.warehouse.segment_path(campaign, seg)
                header = read_header(path)
                if not self._segment_may_match(header):
                    stats.segments_pruned += 1
                    continue
                stats.segments_scanned += 1
                stats.rows_scanned += header.rows
                self._scan_segment(path, stats, groups, raw_rows,
                                   needed, aggregating)
                if (not aggregating and self._limit is not None
                        and len(raw_rows) >= self._limit):
                    return QueryResult(raw_rows[:self._limit], stats)
        if not aggregating:
            return QueryResult(raw_rows, stats)
        return QueryResult(self._render_groups(groups), stats)

    def _segment_may_match(self, header) -> bool:
        for pred in self._predicates:
            meta = header.column(pred.column)
            if meta is None:
                # Column never present in this segment ⇒ all cells
                # missing ⇒ no comparison can match.
                return False
            if not zone_overlaps(meta, pred.op, pred.value):
                return False
        return True

    def _scan_segment(self, path: str, stats: QueryStats,
                      groups: dict, raw_rows: list,
                      needed: list[str], aggregating: bool) -> None:
        data = read_segment(path, columns=needed)
        rows = data.header.rows
        # Per-predicate fast matchers: string columns become per-code
        # bitmaps (one vocabulary pass), numeric columns close over the
        # decoded array.
        checks = []
        for pred in self._predicates:
            meta = data.header.column(pred.column)
            kind = meta["type"]
            if kind == STR:
                vocab = data.dicts[pred.column]
                codes = data.codes[pred.column]
                match = pred.matcher(kind)
                ok = [value != "" and match(value) for value in vocab]
                checks.append(
                    lambda i, codes=codes, ok=ok: ok[codes[i]]
                )
            else:
                column = data.columns[pred.column]
                match = pred.matcher(kind)
                checks.append(
                    lambda i, column=column, match=match:
                    column[i] == column[i] and match(column[i])
                )
        matched = [index for index in range(rows)
                   if all(check(index) for check in checks)]
        stats.rows_matched += len(matched)
        if not matched:
            return
        if not aggregating:
            columns = (self._select if self._select is not None
                       else [meta["name"] for meta in data.header.columns
                             if meta["name"] in set(needed)])
            for index in matched:
                raw_rows.append({
                    name: self._cell(data, name, index) for name in columns
                })
                if (self._limit is not None
                        and len(raw_rows) >= self._limit):
                    return
            return
        group_getters = [self._getter(data, name) for name in self._group]
        # Accumulate once per (kind, column), not per agg spec — two
        # aggs over the same column (say mean + sum) share the state.
        kinds: dict[str, set[str]] = {
            "sums": set(), "mins": set(), "maxs": set(), "sketch": set(),
        }
        for _, fn, column in self._aggs:
            if column is None:
                continue
            if fn in ("sum", "mean"):
                kinds["sums"].add(column)
            elif fn == "min":
                kinds["mins"].add(column)
            elif fn == "max":
                kinds["maxs"].add(column)
            else:  # percentile
                kinds["sketch"].add(column)
        agg_columns = sorted(set().union(*kinds.values()))
        agg_getters = {column: self._getter(data, column)
                       for column in agg_columns}
        for index in matched:
            key = tuple(getter(index) for getter in group_getters)
            acc = groups.get(key)
            if acc is None:
                acc = groups[key] = _GroupAcc()
            acc.count += 1
            for column in agg_columns:
                value = agg_getters[column](index)
                if isinstance(value, float) and math.isnan(value):
                    continue
                if column in kinds["sums"]:
                    acc.sums[column] = acc.sums.get(column, 0.0) + value
                    acc.counts[column] = acc.counts.get(column, 0) + 1
                if column in kinds["mins"]:
                    if column not in acc.mins or value < acc.mins[column]:
                        acc.mins[column] = value
                if column in kinds["maxs"]:
                    if column not in acc.maxs or value > acc.maxs[column]:
                        acc.maxs[column] = value
                if column in kinds["sketch"]:
                    acc.sketch(column).observe(value)

    @staticmethod
    def _getter(data, name: str):
        if name in data.codes:
            vocab = data.dicts[name]
            codes = data.codes[name]
            return lambda i: vocab[codes[i]]
        column = data.columns.get(name)
        if column is None:
            return lambda i: None
        return lambda i: column[i]

    @staticmethod
    def _cell(data, name: str, index: int):
        if name in data.codes:
            return data.dicts[name][data.codes[name][index]]
        column = data.columns.get(name)
        return column[index] if column is not None else None

    def _render_groups(self, groups: dict) -> list[dict]:
        out = []
        for key in sorted(groups, key=lambda k: tuple(str(p) for p in k)):
            acc = groups[key]
            row: dict[str, Any] = dict(zip(self._group, key))
            for name, fn, column in self._aggs:
                if fn == "count":
                    row[name] = acc.count
                elif fn == "sum":
                    row[name] = acc.sums.get(column, 0.0)
                elif fn == "mean":
                    count = acc.counts.get(column, 0)
                    row[name] = (acc.sums.get(column, 0.0) / count
                                 if count else 0.0)
                elif fn == "min":
                    row[name] = acc.mins.get(column)
                elif fn == "max":
                    row[name] = acc.maxs.get(column)
                else:
                    sketch = acc.sketches.get(column)
                    row[name] = (sketch.quantile(_PERCENTILE_FNS[fn])
                                 if sketch is not None else 0.0)
            out.append(row)
        if self._limit is not None:
            out = out[:self._limit]
        return out


def rollup_percentiles(warehouse: Warehouse, campaign: str, stream: str,
                       quantiles: Iterable[float] = (0.5, 0.9, 0.99),
                       endpoint: Optional[str] = None) -> dict:
    """Percentiles straight from materialized rollups (no segment scan).

    The fast path for "what was this campaign's p99" — constant-time in
    the number of rows, exact same sketch machinery as a full query.
    """
    from repro.warehouse.rollup import load_rollups

    rollups = load_rollups(warehouse, campaign)
    scope = (rollups["total"] if endpoint is None
             else rollups["endpoints"].get(endpoint))
    if scope is None:
        raise WarehouseError(f"no rollup for endpoint {endpoint!r}")
    sketch = scope.sketches.get(stream)
    if sketch is None:
        raise WarehouseError(
            f"campaign {campaign!r} has no value stream {stream!r} "
            f"(have {sorted(scope.sketches)})"
        )
    return {f"p{q * 100:g}": sketch.quantile(q) for q in quantiles}
