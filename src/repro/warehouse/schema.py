"""Versioned record layout for the results warehouse.

Everything the warehouse stores flows through one schema: four tables
with fixed, typed columns (plus dynamic ``c_*`` counter columns on the
``results`` table), each row a plain dict. The layout is versioned —
``SCHEMA_VERSION`` is stamped into every segment header and manifest —
so a reader can refuse (or upgrade) data written by a different layout
instead of silently misinterpreting it.

Tables
------

``campaigns``
    One row per finished campaign: scheduling statistics plus the full
    canonical report JSON for archival.
``results``
    One row per finished job attempt-set (the scheduler's completion
    unit): identity, outcome, and the job's counter metrics flattened
    into dynamic float columns named ``c_<counter>``.
``samples``
    One row per raw measurement value (an RTT, a bandwidth estimate):
    the stream a campaign's quantile rollups are built from. This is
    the table that reaches millions of rows.
``events``
    One row per obs event (from a live ``EventBus`` ring or a
    ``JsonlSink`` export): virtual timestamp, layer, name, and the
    field dict as canonical JSON.

Column types are ``i64`` (integers), ``f64`` (floats; missing values
are NaN), and ``str`` (dictionary-encoded; missing values are ``""``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

# Bump when the record layout below changes shape incompatibly.
SCHEMA_VERSION = 1

I64 = "i64"
F64 = "f64"
STR = "str"

_TYPES = (I64, F64, STR)

# Prefix for dynamic per-counter columns on the results table.
COUNTER_PREFIX = "c_"

NAN = float("nan")


@dataclass(frozen=True)
class TableSchema:
    """Fixed columns (ordered) plus whether dynamic columns may appear."""

    name: str
    columns: tuple[tuple[str, str], ...]  # ((name, type), ...) in order
    dynamic: bool = False                 # extra f64 COUNTER_PREFIX cols
    sort_hint: tuple[str, ...] = ()       # natural append order (docs only)

    def column_type(self, column: str) -> Optional[str]:
        for name, kind in self.columns:
            if name == column:
                return kind
        if self.dynamic and column.startswith(COUNTER_PREFIX):
            return F64
        return None

    def fixed_names(self) -> list[str]:
        return [name for name, _ in self.columns]


CAMPAIGNS = TableSchema(
    name="campaigns",
    columns=(
        ("campaign", STR),
        ("seed", I64),
        ("jobs_total", I64),
        ("jobs_completed", I64),
        ("jobs_failed", I64),
        ("retries", I64),
        ("endpoints", I64),
        ("started", F64),
        ("finished", F64),
        ("makespan_s", F64),
        ("report_json", STR),
    ),
)

RESULTS = TableSchema(
    name="results",
    columns=(
        ("campaign", STR),
        ("job", STR),
        ("endpoint", STR),
        ("seq", I64),
        ("ok", I64),
        ("sim_time", F64),
        ("error", STR),
    ),
    dynamic=True,
    sort_hint=("seq",),
)

SAMPLES = TableSchema(
    name="samples",
    columns=(
        ("campaign", STR),
        ("job", STR),
        ("endpoint", STR),
        ("stream", STR),
        ("seq", I64),
        ("value", F64),
    ),
    sort_hint=("seq",),
)

EVENTS = TableSchema(
    name="events",
    columns=(
        ("campaign", STR),
        ("time", F64),
        ("layer", STR),
        ("name", STR),
        ("seq", I64),
        ("fields_json", STR),
    ),
    sort_hint=("seq",),
)

TABLES: dict[str, TableSchema] = {
    schema.name: schema
    for schema in (CAMPAIGNS, RESULTS, SAMPLES, EVENTS)
}


class SchemaError(ValueError):
    """A row or segment does not match the declared layout."""


def canonical_json(obj: Any) -> str:
    """The repo-wide byte-stable encoding (sorted keys, no spaces)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def coerce(value: Any, kind: str, column: str) -> Any:
    """Validate/coerce one cell to its column type (None = missing)."""
    if kind == I64:
        if value is None:
            return 0
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"column {column!r} wants i64, got {value!r}")
        return int(value)
    if kind == F64:
        if value is None:
            return NAN
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"column {column!r} wants f64, got {value!r}")
        return float(value)
    if kind == STR:
        if value is None:
            return ""
        if not isinstance(value, str):
            raise SchemaError(f"column {column!r} wants str, got {value!r}")
        return value
    raise SchemaError(f"unknown column type {kind!r}")


# -- row builders -------------------------------------------------------------


def campaign_row(report_dict: dict) -> dict:
    """Flatten a ``CampaignReport.to_dict()`` into one campaigns row."""
    jobs = report_dict.get("jobs") or {}
    sched = report_dict.get("schedule") or {}
    return {
        "campaign": report_dict.get("campaign", ""),
        "seed": int(report_dict.get("seed", 0)),
        "jobs_total": int(jobs.get("total", 0)),
        "jobs_completed": int(jobs.get("completed", 0)),
        "jobs_failed": int(jobs.get("failed", 0)),
        "retries": int(jobs.get("retries", 0)),
        "endpoints": int(sched.get("endpoints", 0)),
        "started": float(sched.get("started", 0.0)),
        "finished": float(sched.get("finished", 0.0)),
        "makespan_s": float(sched.get("makespan_s", 0.0)),
        "report_json": canonical_json(report_dict),
    }


def result_row(
    campaign: str,
    job: str,
    endpoint: str,
    seq: int,
    ok: bool,
    sim_time: float,
    error: str = "",
    counters: Optional[dict] = None,
) -> dict:
    row = {
        "campaign": campaign,
        "job": job,
        "endpoint": endpoint,
        "seq": int(seq),
        "ok": 1 if ok else 0,
        "sim_time": float(sim_time),
        "error": error or "",
    }
    for name, amount in (counters or {}).items():
        row[COUNTER_PREFIX + str(name)] = float(amount)
    return row


def sample_rows(
    campaign: str,
    job: str,
    endpoint: str,
    values: dict,
    seq_start: int,
) -> tuple[list[dict], int]:
    """Rows for one job's value streams; returns (rows, next_seq)."""
    rows: list[dict] = []
    seq = seq_start
    for stream in values:
        for value in values[stream]:
            rows.append({
                "campaign": campaign,
                "job": job,
                "endpoint": endpoint,
                "stream": str(stream),
                "seq": seq,
                "value": float(value),
            })
            seq += 1
    return rows, seq


def event_row(campaign: str, seq: int, event: Any) -> dict:
    """One obs event (an ``ObsEvent`` or a decoded JSONL dict)."""
    if isinstance(event, dict):
        time = float(event.get("time", 0.0))
        layer = str(event.get("layer", ""))
        name = str(event.get("name", ""))
        fields = event.get("fields") or {}
    else:
        time = float(event.time)
        layer = event.layer
        name = event.name
        from repro.obs.sinks import json_safe

        fields = {key: json_safe(value) for key, value in event.fields.items()}
    return {
        "campaign": campaign,
        "time": time,
        "layer": layer,
        "name": name,
        "seq": int(seq),
        "fields_json": canonical_json(fields),
    }


# -- column planning ----------------------------------------------------------


@dataclass
class ColumnPlan:
    """The ordered, typed column set for one segment's row batch."""

    names: list[str]
    types: list[str]
    extra: list[str] = field(default_factory=list)  # dynamic subset


def plan_columns(schema: TableSchema, rows: Iterable[dict]) -> ColumnPlan:
    """Fixed columns in schema order, then dynamic ones sorted by name.

    Sorting the dynamic tail keeps the physical layout a pure function
    of row *content*, never of dict insertion order — one of the things
    the byte-identical-segments guarantee rests on.
    """
    names = schema.fixed_names()
    types = [kind for _, kind in schema.columns]
    fixed = set(names)
    extra: set[str] = set()
    for row in rows:
        for key in row:
            if key in fixed:
                continue
            if not schema.dynamic or not key.startswith(COUNTER_PREFIX):
                raise SchemaError(
                    f"table {schema.name!r} has no column {key!r}"
                )
            extra.add(key)
    tail = sorted(extra)
    return ColumnPlan(names + tail, types + [F64] * len(tail), tail)


def is_missing(value: Any, kind: str) -> bool:
    if kind == F64:
        return isinstance(value, float) and math.isnan(value)
    if kind == STR:
        return value == ""
    return False
