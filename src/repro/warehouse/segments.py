"""Immutable columnar segments + the per-campaign manifest protocol.

Storage layout (one directory per campaign under the warehouse root)::

    <root>/<campaign>/
        MANIFEST.json              the only source of truth for readers
        results/seg-000000.seg     immutable columnar segments
        samples/seg-000000.seg
        ...
        rollups.json               materialized summaries (rollup.py)

Segment file format (version 1)::

    b"PLWH" | u16 format | u32 header_len | header JSON | column blobs

The header is canonical JSON describing the table, schema version, row
count, and per-column metadata: type, blob offset/length (relative to
the end of the header), a **zone map** (min/max over present values),
and — for string columns — the dictionary (sorted unique values; the
blob holds int64 codes). Numeric blobs are little-endian ``array('q')``
/ ``array('d')`` bytes. A reader can prune a segment from a query by
looking at zone maps alone, and can decode just the columns a query
touches by seeking to their blobs.

Durability / atomicity: segments are written to ``.tmp`` files, fsynced
and renamed; the manifest is rewritten the same way *after* every
segment it references is on disk. A crash mid-commit leaves at worst an
orphan ``.tmp`` / unreferenced segment, never a manifest pointing at a
truncated file — readers only ever trust the manifest.

Determinism: segment bytes are a pure function of row content (no
wall-clock, no dict-order dependence, fixed endianness), which is what
lets the benchmark assert byte-identical segments for same-seed
campaigns.
"""

from __future__ import annotations

import hashlib
import math
import os
import sys
from array import array
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.warehouse.schema import (
    F64,
    I64,
    SCHEMA_VERSION,
    STR,
    ColumnPlan,
    SchemaError,
    TABLES,
    TableSchema,
    canonical_json,
    coerce,
    is_missing,
    plan_columns,
)

MAGIC = b"PLWH"
FORMAT_VERSION = 1
DEFAULT_SEGMENT_ROWS = 65536

_BIG_ENDIAN = sys.byteorder == "big"


class WarehouseError(RuntimeError):
    """Corrupt segment, unknown campaign, or a broken commit protocol."""


def _pack(values: list, typecode: str) -> bytes:
    arr = array(typecode, values)
    if _BIG_ENDIAN:
        arr.byteswap()
    return arr.tobytes()


def _unpack(blob: bytes, typecode: str) -> array:
    arr = array(typecode)
    arr.frombytes(blob)
    if _BIG_ENDIAN:
        arr.byteswap()
    return arr


def _zone(values: Iterable, kind: str) -> tuple[Optional[Any], Optional[Any]]:
    """Min/max over present (non-missing) values; (None, None) if empty."""
    zmin = zmax = None
    for value in values:
        if is_missing(value, kind):
            continue
        if zmin is None or value < zmin:
            zmin = value
        if zmax is None or value > zmax:
            zmax = value
    return zmin, zmax


@dataclass
class SegmentMeta:
    """What the manifest records about one committed segment."""

    file: str       # path relative to the campaign directory
    rows: int
    nbytes: int
    sha256: str

    def to_dict(self) -> dict:
        return {"file": self.file, "rows": self.rows,
                "nbytes": self.nbytes, "sha256": self.sha256}

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentMeta":
        return cls(file=data["file"], rows=int(data["rows"]),
                   nbytes=int(data["nbytes"]), sha256=data["sha256"])


def encode_segment(schema: TableSchema, rows: list[dict]) -> bytes:
    """Serialize one batch of rows into immutable segment bytes."""
    if not rows:
        raise WarehouseError("refusing to encode an empty segment")
    plan: ColumnPlan = plan_columns(schema, rows)
    blobs: list[bytes] = []
    columns_meta: list[dict] = []
    offset = 0
    for name, kind in zip(plan.names, plan.types):
        cells = [coerce(row.get(name), kind, name) for row in rows]
        meta: dict[str, Any] = {"name": name, "type": kind}
        if kind == STR:
            vocab = sorted(set(cells))
            codes = {value: index for index, value in enumerate(vocab)}
            blob = _pack([codes[cell] for cell in cells], "q")
            meta["dict"] = vocab
        elif kind == I64:
            blob = _pack(cells, "q")
        else:
            blob = _pack(cells, "d")
        zmin, zmax = _zone(cells, kind)
        meta["zmin"] = zmin
        meta["zmax"] = zmax
        meta["offset"] = offset
        meta["nbytes"] = len(blob)
        offset += len(blob)
        blobs.append(blob)
        columns_meta.append(meta)
    header = canonical_json({
        "table": schema.name,
        "schema_version": SCHEMA_VERSION,
        "format": FORMAT_VERSION,
        "rows": len(rows),
        "columns": columns_meta,
    }).encode("utf-8")
    out = bytearray()
    out += MAGIC
    out += FORMAT_VERSION.to_bytes(2, "little")
    out += len(header).to_bytes(4, "little")
    out += header
    for blob in blobs:
        out += blob
    return bytes(out)


@dataclass
class SegmentHeader:
    table: str
    schema_version: int
    rows: int
    columns: list[dict]
    data_start: int

    def column(self, name: str) -> Optional[dict]:
        for meta in self.columns:
            if meta["name"] == name:
                return meta
        return None


def read_header(path: str) -> SegmentHeader:
    """Parse just the header (cheap: zone-map pruning never reads data)."""
    with open(path, "rb") as fh:
        preamble = fh.read(10)
        if len(preamble) < 10 or preamble[:4] != MAGIC:
            raise WarehouseError(f"{path}: not a warehouse segment")
        fmt = int.from_bytes(preamble[4:6], "little")
        if fmt != FORMAT_VERSION:
            raise WarehouseError(f"{path}: unknown format {fmt}")
        header_len = int.from_bytes(preamble[6:10], "little")
        header = fh.read(header_len)
    if len(header) < header_len:
        raise WarehouseError(f"{path}: truncated header")
    import json

    info = json.loads(header.decode("utf-8"))
    if info.get("schema_version") != SCHEMA_VERSION:
        raise WarehouseError(
            f"{path}: schema_version {info.get('schema_version')} "
            f"(this reader speaks {SCHEMA_VERSION})"
        )
    return SegmentHeader(
        table=info["table"],
        schema_version=info["schema_version"],
        rows=info["rows"],
        columns=info["columns"],
        data_start=10 + header_len,
    )


@dataclass
class SegmentData:
    """Decoded columns of one segment (only the requested ones)."""

    header: SegmentHeader
    columns: dict[str, Any]  # name -> array('q'|'d') or list[str] dicts
    dicts: dict[str, list]   # str column -> vocabulary
    codes: dict[str, array]  # str column -> raw int64 codes

    @property
    def rows(self) -> int:
        return self.header.rows

    def cell(self, name: str, index: int):
        if name in self.codes:
            return self.dicts[name][self.codes[name][index]]
        return self.columns[name][index]


def read_segment(path: str, columns: Optional[Iterable[str]] = None) -> SegmentData:
    """Decode a segment, materializing only the requested columns."""
    header = read_header(path)
    wanted = list(columns) if columns is not None else [
        meta["name"] for meta in header.columns
    ]
    out_cols: dict[str, Any] = {}
    dicts: dict[str, list] = {}
    codes: dict[str, array] = {}
    with open(path, "rb") as fh:
        for name in wanted:
            meta = header.column(name)
            if meta is None:
                # A column absent from this segment (e.g. a dynamic
                # counter another shard produced): all-missing.
                continue
            fh.seek(header.data_start + meta["offset"])
            blob = fh.read(meta["nbytes"])
            if len(blob) != meta["nbytes"]:
                raise WarehouseError(f"{path}: truncated column {name!r}")
            if meta["type"] == STR:
                dicts[name] = meta["dict"]
                codes[name] = _unpack(blob, "q")
            elif meta["type"] == I64:
                out_cols[name] = _unpack(blob, "q")
            else:
                out_cols[name] = _unpack(blob, "d")
    return SegmentData(header, out_cols, dicts, codes)


def iter_segment_rows(path: str) -> Iterable[dict]:
    """Row dicts of one segment (missing cells omitted) — compaction
    and rollup rebuilds use this; queries use the columnar path."""
    data = read_segment(path)
    header = data.header
    names = [meta["name"] for meta in header.columns]
    kinds = {meta["name"]: meta["type"] for meta in header.columns}
    for index in range(header.rows):
        row = {}
        for name in names:
            value = data.cell(name, index)
            if not is_missing(value, kinds[name]):
                row[name] = value
        yield row


def _fsync_write(path: str, payload: bytes) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _fsync_dir(path: str) -> None:
    # Directory fsync makes the rename itself durable; best-effort on
    # filesystems that refuse O_RDONLY directory handles.
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SegmentWriter:
    """Batched, append-only writer for one campaign table.

    Rows buffer in memory and flush as an immutable segment whenever
    ``segment_rows`` accumulate (or at ``finish()``). Flushed segments
    are *pending* until the owning :class:`CampaignWriter` commits the
    manifest — readers never see them early.
    """

    def __init__(self, directory: str, schema: TableSchema,
                 segment_rows: int = DEFAULT_SEGMENT_ROWS,
                 start_index: int = 0) -> None:
        self.directory = directory
        self.schema = schema
        self.segment_rows = max(1, segment_rows)
        self._buffer: list[dict] = []
        self._next_index = start_index
        self.pending: list[SegmentMeta] = []
        self.rows_written = 0

    def append(self, row: dict) -> None:
        self._buffer.append(row)
        if len(self._buffer) >= self.segment_rows:
            self.flush_segment()

    def append_rows(self, rows: Iterable[dict]) -> None:
        for row in rows:
            self.append(row)

    def flush_segment(self) -> Optional[SegmentMeta]:
        if not self._buffer:
            return None
        payload = encode_segment(self.schema, self._buffer)
        os.makedirs(self.directory, exist_ok=True)
        filename = f"seg-{self._next_index:06d}.seg"
        self._next_index += 1
        path = os.path.join(self.directory, filename)
        _fsync_write(path, payload)
        meta = SegmentMeta(
            file=os.path.join(self.schema.name, filename),
            rows=len(self._buffer),
            nbytes=len(payload),
            sha256=hashlib.sha256(payload).hexdigest(),
        )
        self.pending.append(meta)
        self.rows_written += len(self._buffer)
        self._buffer = []
        return meta

    def finish(self) -> list[SegmentMeta]:
        self.flush_segment()
        return self.pending


@dataclass
class Manifest:
    """The committed state of one campaign's data."""

    campaign: str
    state: str = "open"  # open | closed
    schema_version: int = SCHEMA_VERSION
    tables: dict[str, list[SegmentMeta]] = field(default_factory=dict)
    rollups: Optional[str] = None  # relative path of rollups.json
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "state": self.state,
            "schema_version": self.schema_version,
            "format": FORMAT_VERSION,
            "tables": {
                name: [seg.to_dict() for seg in segs]
                for name, segs in sorted(self.tables.items())
            },
            "rollups": self.rollups,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Manifest":
        if data.get("schema_version") != SCHEMA_VERSION:
            raise WarehouseError(
                f"manifest schema_version {data.get('schema_version')} "
                f"(this reader speaks {SCHEMA_VERSION})"
            )
        return cls(
            campaign=data["campaign"],
            state=data.get("state", "open"),
            schema_version=data["schema_version"],
            tables={
                name: [SegmentMeta.from_dict(seg) for seg in segs]
                for name, segs in (data.get("tables") or {}).items()
            },
            rollups=data.get("rollups"),
            meta=data.get("meta") or {},
        )

    def total_rows(self, table: Optional[str] = None) -> int:
        names = [table] if table else list(self.tables)
        return sum(seg.rows for name in names
                   for seg in self.tables.get(name, ()))


class Warehouse:
    """A directory of campaigns, each a manifest plus columnar segments."""

    MANIFEST = "MANIFEST.json"

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def campaign_dir(self, campaign: str) -> str:
        safe = campaign.replace(os.sep, "_")
        return os.path.join(self.root, safe)

    def manifest_path(self, campaign: str) -> str:
        return os.path.join(self.campaign_dir(campaign), self.MANIFEST)

    def segment_path(self, campaign: str, meta: SegmentMeta) -> str:
        return os.path.join(self.campaign_dir(campaign), meta.file)

    # -- read side -----------------------------------------------------------

    def campaigns(self) -> list[str]:
        """Committed campaigns (directories with a manifest), sorted."""
        found = []
        try:
            entries = sorted(os.listdir(self.root))
        except OSError:
            return []
        for entry in entries:
            if os.path.isfile(
                os.path.join(self.root, entry, self.MANIFEST)
            ):
                found.append(entry)
        return found

    def manifest(self, campaign: str) -> Manifest:
        path = self.manifest_path(campaign)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                import json

                data = json.load(fh)
        except OSError as exc:
            raise WarehouseError(f"no manifest for campaign "
                                 f"{campaign!r}: {exc}") from exc
        except ValueError as exc:
            raise WarehouseError(f"corrupt manifest for campaign "
                                 f"{campaign!r}: {exc}") from exc
        return Manifest.from_dict(data)

    def segments(self, campaign: str, table: str) -> list[SegmentMeta]:
        return list(self.manifest(campaign).tables.get(table, ()))

    # -- write side ----------------------------------------------------------

    def begin_campaign(self, campaign: str,
                       segment_rows: int = DEFAULT_SEGMENT_ROWS,
                       meta: Optional[dict] = None) -> "CampaignWriter":
        return CampaignWriter(self, campaign, segment_rows=segment_rows,
                              meta=meta)

    def commit_manifest(self, manifest: Manifest) -> None:
        directory = self.campaign_dir(manifest.campaign)
        os.makedirs(directory, exist_ok=True)
        payload = (canonical_json(manifest.to_dict()) + "\n").encode("utf-8")
        _fsync_write(os.path.join(directory, self.MANIFEST), payload)
        _fsync_dir(directory)

    # -- lifecycle: retention + compaction ------------------------------------

    def drop(self, campaign: str) -> None:
        """Delete one campaign (manifest first, so readers can't catch a
        half-deleted tree; then the now-unreferenced segments)."""
        directory = self.campaign_dir(campaign)
        manifest = os.path.join(directory, self.MANIFEST)
        if os.path.exists(manifest):
            os.remove(manifest)
        for dirpath, _, filenames in os.walk(directory, topdown=False):
            for filename in filenames:
                try:
                    os.remove(os.path.join(dirpath, filename))
                except OSError:
                    pass
            try:
                os.rmdir(dirpath)
            except OSError:
                pass

    def retain(self, keep: int) -> list[str]:
        """Drop the oldest *closed* campaigns beyond ``keep``; open
        campaigns are never touched. Returns what was dropped."""
        closed = [name for name in self.campaigns()
                  if self.manifest(name).state == "closed"]
        doomed = closed[:-keep] if keep > 0 else closed
        for name in doomed:
            self.drop(name)
        return doomed

    def compact(self, campaign: str,
                segment_rows: int = DEFAULT_SEGMENT_ROWS) -> dict:
        """Rewrite a *closed* campaign's tables into full-size segments.

        Many small segments (one flush per batch during ingestion)
        become ceil(rows / segment_rows) large ones; zone maps are
        recomputed over the bigger batches. Commit protocol: new
        segments land under fresh indexes, the manifest swaps over
        atomically, then the superseded files are deleted.
        """
        manifest = self.manifest(campaign)
        if manifest.state != "closed":
            raise WarehouseError(
                f"campaign {campaign!r} is still open; close it first"
            )
        directory = self.campaign_dir(campaign)
        stats = {"tables": {}, "segments_before": 0, "segments_after": 0}
        new_tables: dict[str, list[SegmentMeta]] = {}
        superseded: list[str] = []
        for table, segs in sorted(manifest.tables.items()):
            schema = TABLES.get(table)
            if schema is None:
                raise WarehouseError(f"unknown table {table!r} in manifest")
            start = _next_segment_index(
                os.path.join(directory, table)
            )
            writer = SegmentWriter(
                os.path.join(directory, table), schema,
                segment_rows=segment_rows, start_index=start,
            )
            for seg in segs:
                writer.append_rows(
                    iter_segment_rows(self.segment_path(campaign, seg))
                )
                superseded.append(self.segment_path(campaign, seg))
            new_tables[table] = writer.finish()
            stats["tables"][table] = {
                "before": len(segs), "after": len(new_tables[table]),
                "rows": writer.rows_written,
            }
            stats["segments_before"] += len(segs)
            stats["segments_after"] += len(new_tables[table])
        manifest.tables = new_tables
        self.commit_manifest(manifest)
        for path in superseded:
            try:
                os.remove(path)
            except OSError:
                pass
        return stats


def _next_segment_index(directory: str) -> int:
    """First unused seg-NNNNNN index in a table directory."""
    try:
        entries = os.listdir(directory)
    except OSError:
        return 0
    best = -1
    for entry in entries:
        if entry.startswith("seg-") and entry.endswith(".seg"):
            try:
                best = max(best, int(entry[4:-4]))
            except ValueError:
                pass
    return best + 1


class CampaignWriter:
    """Transactional writer for one campaign's tables.

    ``add_*`` calls buffer and flush segments; nothing is visible until
    ``commit()`` writes the manifest referencing every flushed segment.
    ``close()`` commits with ``state="closed"`` (the precondition for
    compaction and retention).
    """

    def __init__(self, warehouse: Warehouse, campaign: str,
                 segment_rows: int = DEFAULT_SEGMENT_ROWS,
                 meta: Optional[dict] = None) -> None:
        self.warehouse = warehouse
        self.campaign = campaign
        self.segment_rows = segment_rows
        directory = warehouse.campaign_dir(campaign)
        try:
            existing = warehouse.manifest(campaign)
        except WarehouseError:
            existing = Manifest(campaign=campaign)
        if existing.state == "closed":
            raise WarehouseError(
                f"campaign {campaign!r} is closed (append-only: reopening "
                f"a committed campaign is not allowed)"
            )
        self.manifest = existing
        self.manifest.meta.update(meta or {})
        self._writers: dict[str, SegmentWriter] = {}
        self._directory = directory

    def writer(self, table: str) -> SegmentWriter:
        writer = self._writers.get(table)
        if writer is None:
            schema = TABLES.get(table)
            if schema is None:
                raise SchemaError(f"unknown table {table!r}")
            directory = os.path.join(self._directory, table)
            start = len(self.manifest.tables.get(table, []))
            start = max(start, _next_segment_index(directory))
            writer = SegmentWriter(
                directory, schema,
                segment_rows=self.segment_rows, start_index=start,
            )
            self._writers[table] = writer
        return writer

    def add(self, table: str, row: dict) -> None:
        self.writer(table).append(row)

    def add_rows(self, table: str, rows: Iterable[dict]) -> None:
        self.writer(table).append_rows(rows)

    def commit(self, close: bool = False,
               rollups: Optional[str] = None) -> Manifest:
        for table, writer in sorted(self._writers.items()):
            flushed = writer.finish()
            if flushed:
                self.manifest.tables.setdefault(table, []).extend(flushed)
                writer.pending = []
        if rollups is not None:
            self.manifest.rollups = rollups
        if close:
            self.manifest.state = "closed"
        self.warehouse.commit_manifest(self.manifest)
        return self.manifest

    def close(self, rollups: Optional[str] = None) -> Manifest:
        return self.commit(close=True, rollups=rollups)


def segment_fingerprints(warehouse: Warehouse, campaign: str) -> dict:
    """{relative segment path: sha256} for one campaign — both a
    cheap integrity check and the benchmark's byte-identity probe."""
    manifest = warehouse.manifest(campaign)
    out: dict[str, str] = {}
    for table in sorted(manifest.tables):
        for seg in manifest.tables[table]:
            with open(warehouse.segment_path(campaign, seg), "rb") as fh:
                digest = hashlib.sha256(fh.read()).hexdigest()
            if digest != seg.sha256:
                raise WarehouseError(
                    f"segment {seg.file} content drifted from manifest"
                )
            out[seg.file] = digest
    return out


def zone_overlaps(meta: dict, op: str, value: Any) -> bool:
    """Could any row in a segment with this column zone map match
    ``col <op> value``? False ⇒ the segment is safely prunable.

    Missing values (NaN / "") are excluded from zone maps, and the
    query layer's comparison predicates never match missing cells, so
    pruning on the zone map alone is sound. A column with no present
    values (zmin is None) can't match any comparison.
    """
    zmin, zmax = meta.get("zmin"), meta.get("zmax")
    if zmin is None or zmax is None:
        return False
    if op == "==":
        return zmin <= value <= zmax
    if op == "!=":
        return not (zmin == value == zmax)
    if op == "<":
        return zmin < value
    if op == "<=":
        return zmin <= value
    if op == ">":
        return zmax > value
    if op == ">=":
        return zmax >= value
    if op == "in":
        return any(zmin <= item <= zmax for item in value)
    return True


def nan_safe(value: float) -> bool:
    return not (isinstance(value, float) and math.isnan(value))
