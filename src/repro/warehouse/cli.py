"""``python -m repro warehouse`` — the warehouse's operator console.

Subcommands::

    ls       list campaigns, tables, segment/row counts, states
    ingest   load artifacts: --events JSONL, --aggregate JSONL, --report JSON
    query    filter/group/aggregate over a table (zone-map pruned)
    rollup   (re)build materialized rollups from committed segments
    compact  rewrite a closed campaign into full-size segments
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.warehouse.query import OPS, Query, rollup_percentiles
from repro.warehouse.schema import F64, I64, TABLES, SchemaError
from repro.warehouse.segments import Warehouse, WarehouseError


def _parse_where(clauses: list[str], table: str) -> list[tuple]:
    """``col<op>value`` strings → (col, op, typed value) triples.

    Accepted forms: ``endpoint==ep1``, ``value>=0.25``, ``seq<100``,
    ``stream!=rtt_s``. Values are coerced to the column's type.
    """
    schema = TABLES[table]
    out = []
    for clause in clauses:
        for op in sorted(OPS, key=len, reverse=True):
            if op == "in":
                continue
            index = clause.find(op)
            if index > 0:
                column = clause[:index]
                raw = clause[index + len(op):]
                break
        else:
            raise SchemaError(
                f"cannot parse predicate {clause!r} (want col<op>value)"
            )
        kind = schema.column_type(column)
        if kind is None:
            raise SchemaError(
                f"table {table!r} has no column {column!r} "
                f"(have {schema.fixed_names()})"
            )
        value = (int(raw) if kind == I64
                 else float(raw) if kind == F64 else raw)
        out.append((column, op, value))
    return out


def _parse_aggs(specs: list[str]) -> dict:
    """Aggregate specs → Query.agg kwargs.

    Forms: ``count``, ``NAME:count``, ``FN:COL`` (output named
    ``FN_COL``), and ``NAME:FN:COL``.
    """
    out: dict = {}
    for spec in specs:
        parts = [part for part in spec.split(":") if part]
        if len(parts) == 1:
            out[parts[0]] = parts[0]
        elif len(parts) == 2:
            if parts[1] == "count":
                out[parts[0]] = "count"
            else:
                out[f"{parts[0]}_{parts[1]}"] = (parts[0], parts[1])
        else:
            out[parts[0]] = (parts[1], parts[2])
    return out


def cmd_ls(args) -> int:
    warehouse = Warehouse(args.root)
    campaigns = warehouse.campaigns()
    if not campaigns:
        print(f"(no campaigns under {args.root})")
        return 0
    for name in campaigns:
        manifest = warehouse.manifest(name)
        tables = " ".join(
            f"{table}={sum(seg.rows for seg in segs)}r"
            f"/{len(segs)}seg"
            for table, segs in sorted(manifest.tables.items())
        )
        rollups = "+rollups" if manifest.rollups else ""
        print(f"{name} [{manifest.state}]{rollups} {tables}")
    return 0


def cmd_ingest(args) -> int:
    from repro.warehouse.ingest import (
        ingest_aggregate_jsonl,
        ingest_events_jsonl,
        ingest_report_json,
    )

    warehouse = Warehouse(args.root)
    did = 0
    if args.events:
        if not args.campaign:
            print("error: --events needs --campaign", file=sys.stderr)
            return 2
        manifest = ingest_events_jsonl(
            warehouse, args.campaign, args.events, close=args.close
        )
        print(f"ingested events into {manifest.campaign!r} "
              f"({manifest.total_rows('events')} event rows)")
        did += 1
    if args.aggregate:
        manifest = ingest_aggregate_jsonl(
            warehouse, args.aggregate, campaign=args.campaign or None
        )
        print(f"ingested aggregate rollups into {manifest.campaign!r}")
        did += 1
    if args.report:
        manifest = ingest_report_json(warehouse, args.report)
        print(f"ingested campaign report into {manifest.campaign!r}")
        did += 1
    if not did:
        print("error: nothing to ingest "
              "(--events/--aggregate/--report)", file=sys.stderr)
        return 2
    return 0


def cmd_query(args) -> int:
    warehouse = Warehouse(args.root)
    if args.percentiles:
        if not args.campaign:
            print("error: --percentiles needs --campaign", file=sys.stderr)
            return 2
        result = rollup_percentiles(
            warehouse, args.campaign, args.percentiles,
            endpoint=args.endpoint or None,
        )
        print(json.dumps(result, sort_keys=True))
        return 0
    query = Query(
        warehouse, args.table,
        campaigns=[args.campaign] if args.campaign else None,
    )
    for column, op, value in _parse_where(args.where or [], args.table):
        query.where(column, op, value)
    if args.group_by:
        query.group_by(*args.group_by.split(","))
    if args.agg:
        query.agg(**_parse_aggs(args.agg))
    if args.limit is not None:
        query.limit(args.limit)
    result = query.run()
    for row in result.rows:
        print(json.dumps(row, sort_keys=True))
    if args.stats:
        print(json.dumps({"stats": result.stats.to_dict()}, sort_keys=True))
    return 0


def cmd_rollup(args) -> int:
    from repro.warehouse.rollup import build_rollups, rollup_summary

    warehouse = Warehouse(args.root)
    names = [args.campaign] if args.campaign else warehouse.campaigns()
    for name in names:
        rollups = build_rollups(warehouse, name)
        summary = rollup_summary(rollups)
        print(f"{name}: jobs={summary['jobs']} "
              f"failures={summary['failures']} "
              f"streams={sorted(rollups['total'].sketches)} "
              f"endpoints={len(rollups['endpoints'])}")
    return 0


def cmd_compact(args) -> int:
    warehouse = Warehouse(args.root)
    names = [args.campaign] if args.campaign else [
        name for name in warehouse.campaigns()
        if warehouse.manifest(name).state == "closed"
    ]
    for name in names:
        stats = warehouse.compact(name, segment_rows=args.segment_rows)
        print(f"{name}: {stats['segments_before']} -> "
              f"{stats['segments_after']} segments")
    if args.retain is not None:
        dropped = warehouse.retain(args.retain)
        for name in dropped:
            print(f"dropped {name} (retention keep={args.retain})")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro warehouse",
        description="Durable results warehouse over campaign output.",
    )
    parser.add_argument("--root", default="warehouse",
                        help="warehouse directory (default ./warehouse)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ls", help="list campaigns and their tables")

    p_ingest = sub.add_parser("ingest", help="load artifacts")
    p_ingest.add_argument("--campaign", default=None)
    p_ingest.add_argument("--events", metavar="JSONL",
                          help="obs JsonlSink export to ingest")
    p_ingest.add_argument("--aggregate", metavar="JSONL",
                          help="ResultAggregator export_jsonl file")
    p_ingest.add_argument("--report", metavar="JSON",
                          help="campaign report JSON (fleet --json)")
    p_ingest.add_argument("--close", action="store_true",
                          help="seal the campaign after ingesting")

    p_query = sub.add_parser("query", help="run a query")
    p_query.add_argument("--table", default="samples",
                         choices=sorted(TABLES))
    p_query.add_argument("--campaign", default=None)
    p_query.add_argument("--where", action="append", metavar="COL<OP>VAL")
    p_query.add_argument("--group-by", default=None, metavar="COL[,COL]")
    p_query.add_argument("--agg", action="append",
                         metavar="FN:COL | NAME:FN:COL")
    p_query.add_argument("--limit", type=int, default=None)
    p_query.add_argument("--stats", action="store_true",
                         help="print scan/pruning statistics")
    p_query.add_argument("--percentiles", metavar="STREAM", default=None,
                         help="fast path: p50/p90/p99 of STREAM from "
                              "materialized rollups")
    p_query.add_argument("--endpoint", default=None,
                         help="with --percentiles: per-endpoint scope")

    p_rollup = sub.add_parser("rollup", help="rebuild materialized rollups")
    p_rollup.add_argument("--campaign", default=None)

    p_compact = sub.add_parser("compact",
                               help="compact closed campaigns")
    p_compact.add_argument("--campaign", default=None)
    p_compact.add_argument("--segment-rows", type=int, default=65536)
    p_compact.add_argument("--retain", type=int, default=None,
                           help="afterwards, keep only the newest N "
                                "closed campaigns")

    args = parser.parse_args(argv)
    handler = {
        "ls": cmd_ls,
        "ingest": cmd_ingest,
        "query": cmd_query,
        "rollup": cmd_rollup,
        "compact": cmd_compact,
    }[args.command]
    try:
        return handler(args)
    except (WarehouseError, SchemaError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
