"""Durable results warehouse: campaign output as queryable artifacts.

Campaign results used to die with the process — in-memory mergeable
rollups plus a one-shot JSONL export. This package turns them into
durable, addressable data:

- :mod:`repro.warehouse.schema` — the versioned record layout (four
  tables: ``campaigns``, ``results``, ``samples``, ``events``);
- :mod:`repro.warehouse.segments` — append-only immutable columnar
  segments with per-column zone maps, committed atomically through a
  per-campaign manifest; retention + compaction for closed campaigns;
- :mod:`repro.warehouse.ingest` — schema'd ingestion from live
  campaigns (:class:`~repro.warehouse.ingest.RecordingAggregator`
  tee), obs event JSONL sinks, and aggregate exports;
- :mod:`repro.warehouse.rollup` — materialized per-campaign and
  per-endpoint summaries reusing the fleet's mergeable counter/sketch
  machinery, rebuildable from segments;
- :mod:`repro.warehouse.query` — filter/project/group-by/percentile
  over millions of rows with zone-map segment pruning;
- :mod:`repro.warehouse.cli` — the ``python -m repro warehouse``
  console (``ls``/``ingest``/``query``/``rollup``/``compact``).

The warehouse is *offline tooling*: it does real file I/O and may
stamp host metadata, but everything persisted from a campaign is a
pure function of the campaign's seed — same seed, byte-identical
segments.
"""

from repro.warehouse.ingest import (
    RecordingAggregator,
    ingest_aggregate_jsonl,
    ingest_events,
    ingest_events_jsonl,
    ingest_report_json,
    persist_campaign,
)
from repro.warehouse.query import Query, QueryResult, QueryStats, rollup_percentiles
from repro.warehouse.rollup import build_rollups, load_rollups
from repro.warehouse.schema import SCHEMA_VERSION, TABLES, SchemaError, TableSchema
from repro.warehouse.segments import (
    CampaignWriter,
    Manifest,
    SegmentMeta,
    SegmentWriter,
    Warehouse,
    WarehouseError,
    encode_segment,
    read_header,
    read_segment,
    segment_fingerprints,
)

__all__ = [
    "CampaignWriter",
    "Manifest",
    "Query",
    "QueryResult",
    "QueryStats",
    "RecordingAggregator",
    "SCHEMA_VERSION",
    "SchemaError",
    "SegmentMeta",
    "SegmentWriter",
    "TABLES",
    "TableSchema",
    "Warehouse",
    "WarehouseError",
    "build_rollups",
    "encode_segment",
    "ingest_aggregate_jsonl",
    "ingest_events",
    "ingest_events_jsonl",
    "ingest_report_json",
    "load_rollups",
    "persist_campaign",
    "read_header",
    "read_segment",
    "rollup_percentiles",
    "segment_fingerprints",
]
