"""Materialized rollups: mergeable summaries over warehouse segments.

The warehouse reuses the fleet's streaming aggregation machinery
(:class:`~repro.fleet.aggregate.CounterSet` /
:class:`~repro.fleet.aggregate.QuantileSketch` /
:class:`~repro.fleet.aggregate.Rollup`) as its rollup layer: for each
campaign a per-campaign and a per-endpoint summary is materialized to
``rollups.json`` next to the segments, and — because every piece of
state is *mergeable* — rollups can be built one segment at a time and
merged, rebuilt after compaction, or combined across campaigns, always
landing on the same answer as a single pass over the raw rows.

Two build paths produce identical files:

- ``from_aggregator`` — the campaign just ran; its
  :class:`~repro.fleet.aggregate.ResultAggregator` already holds the
  state (cheap, exact).
- ``build_rollups`` — recompute from committed segments, one partial
  rollup per segment merged into the totals (the recovery / audit
  path, and the proof that segment data is sufficient).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.fleet.aggregate import ResultAggregator, Rollup
from repro.warehouse.schema import COUNTER_PREFIX, canonical_json
from repro.warehouse.segments import (
    Warehouse,
    WarehouseError,
    _fsync_write,
    read_segment,
)

ROLLUPS_FILE = "rollups.json"


def rollups_state(campaign: str, total: Rollup,
                  per_endpoint: dict[str, Rollup],
                  jobs_observed: int) -> dict:
    return {
        "campaign": campaign,
        "jobs_observed": jobs_observed,
        "total": total.state_dict(),
        "endpoints": {
            name: per_endpoint[name].state_dict()
            for name in sorted(per_endpoint)
        },
    }


def write_rollups(warehouse: Warehouse, campaign: str, state: dict) -> str:
    """Persist a rollups state dict; returns the manifest-relative path."""
    directory = warehouse.campaign_dir(campaign)
    os.makedirs(directory, exist_ok=True)
    payload = (canonical_json(state) + "\n").encode("utf-8")
    _fsync_write(os.path.join(directory, ROLLUPS_FILE), payload)
    return ROLLUPS_FILE


def rollups_from_aggregator(warehouse: Warehouse, campaign: str,
                            aggregator: ResultAggregator) -> str:
    state = rollups_state(
        campaign, aggregator.total, aggregator.per_endpoint,
        aggregator.jobs_observed,
    )
    return write_rollups(warehouse, campaign, state)


def load_rollups(warehouse: Warehouse, campaign: str) -> dict:
    """{"total": Rollup, "endpoints": {name: Rollup}, "jobs_observed": n}."""
    manifest = warehouse.manifest(campaign)
    rel = manifest.rollups or ROLLUPS_FILE
    path = os.path.join(warehouse.campaign_dir(campaign), rel)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            import json

            state = json.load(fh)
    except OSError as exc:
        raise WarehouseError(
            f"campaign {campaign!r} has no materialized rollups "
            f"(run `warehouse rollup`): {exc}"
        ) from exc
    return {
        "campaign": state.get("campaign", campaign),
        "jobs_observed": int(state.get("jobs_observed", 0)),
        "total": Rollup.from_state(state.get("total") or {}),
        "endpoints": {
            name: Rollup.from_state(endpoint_state)
            for name, endpoint_state in (state.get("endpoints") or {}).items()
        },
    }


def _segment_partial(path: str, table: str) -> tuple[Rollup, dict[str, Rollup]]:
    """One segment's contribution: (campaign partial, per-endpoint partials)."""
    total = Rollup()
    per_endpoint: dict[str, Rollup] = {}

    def endpoint(name: str) -> Rollup:
        rollup = per_endpoint.get(name)
        if rollup is None:
            rollup = per_endpoint[name] = Rollup()
        return rollup

    data = read_segment(path)
    rows = data.rows
    if table == "results":
        header = data.header
        counter_cols = [meta["name"] for meta in header.columns
                        if meta["name"].startswith(COUNTER_PREFIX)]
        for index in range(rows):
            name = data.cell("endpoint", index)
            ok = data.cell("ok", index)
            for rollup in (total, endpoint(name)):
                rollup.jobs += 1
                if not ok:
                    rollup.failures += 1
            for column in counter_cols:
                value = data.cell(column, index)
                if value == value:  # skip NaN (counter absent on row)
                    counter = column[len(COUNTER_PREFIX):]
                    total.counters.add(counter, value)
                    endpoint(name).counters.add(counter, value)
    elif table == "samples":
        for index in range(rows):
            name = data.cell("endpoint", index)
            stream = data.cell("stream", index)
            value = data.cell("value", index)
            total.sketch(stream).observe(value)
            endpoint(name).sketch(stream).observe(value)
    else:
        raise WarehouseError(f"no rollup defined over table {table!r}")
    return total, per_endpoint


def build_rollups(warehouse: Warehouse, campaign: str,
                  write: bool = True) -> dict:
    """Recompute campaign rollups segment by segment, merging partials.

    Returns the loaded rollup dict; when ``write`` is set the result is
    also materialized to ``rollups.json`` and referenced from the
    manifest (commit order: rollups file first, manifest second).
    """
    manifest = warehouse.manifest(campaign)
    total = Rollup()
    per_endpoint: dict[str, Rollup] = {}
    jobs_observed = 0
    for table in ("results", "samples"):
        for seg in manifest.tables.get(table, ()):
            partial_total, partial_endpoints = _segment_partial(
                warehouse.segment_path(campaign, seg), table
            )
            if table == "results":
                jobs_observed += partial_total.jobs
            else:
                # Sample rows carry no job identity; jobs were already
                # counted from the results table partials.
                partial_total.jobs = 0
                for partial in partial_endpoints.values():
                    partial.jobs = 0
            total.merge(partial_total)
            for name, partial in partial_endpoints.items():
                existing = per_endpoint.get(name)
                if existing is None:
                    per_endpoint[name] = partial
                else:
                    existing.merge(partial)
    state = rollups_state(campaign, total, per_endpoint, jobs_observed)
    if write:
        rel = write_rollups(warehouse, campaign, state)
        manifest.rollups = rel
        warehouse.commit_manifest(manifest)
    return {
        "campaign": campaign,
        "jobs_observed": jobs_observed,
        "total": total,
        "endpoints": per_endpoint,
    }


def rollup_summary(rollups: dict, endpoint: Optional[str] = None) -> dict:
    """Display dict for one scope of a loaded rollups bundle."""
    if endpoint is None:
        scope = rollups["total"]
    else:
        scope = rollups["endpoints"].get(endpoint)
        if scope is None:
            raise WarehouseError(f"no rollup for endpoint {endpoint!r}")
    return scope.to_dict()
