"""Ingestion: campaign output → schema'd warehouse rows.

Three producers feed the warehouse:

- **Live campaigns** — :class:`RecordingAggregator` is a drop-in
  :class:`~repro.fleet.aggregate.ResultAggregator` that *tees* every
  job completion into buffered ``results``/``samples`` rows while the
  streaming rollups update as usual. Buffering is in-memory only: no
  file I/O happens inside simulated time, and row content is a pure
  function of the campaign (sim timestamps, job names, metrics), so
  same-seed campaigns persist byte-identical segments.
  :func:`persist_campaign` then writes everything post-run in one
  atomic manifest commit.
- **Obs events** — :func:`ingest_events` (a live ring sink or any
  iterable of events) and :func:`ingest_events_jsonl` (a
  :class:`~repro.obs.sinks.JsonlSink` export file; the tolerant reader
  skips a truncated tail).
- **Aggregate JSONL exports** — :func:`ingest_aggregate_jsonl` replays
  a schema-versioned ``export_jsonl`` file back into materialized
  rollups (the lossless ``state`` added in schema v2 makes this exact).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.fleet.aggregate import ResultAggregator
from repro.warehouse import schema as wschema
from repro.warehouse.rollup import rollups_from_aggregator, rollups_state, write_rollups
from repro.warehouse.segments import (
    DEFAULT_SEGMENT_ROWS,
    CampaignWriter,
    Manifest,
    Warehouse,
)


class RecordingAggregator(ResultAggregator):
    """A ResultAggregator that also buffers per-job warehouse rows.

    The campaign scheduler calls ``observe`` once per finished job; the
    tee records one ``results`` row (identity, outcome, flattened
    counters) and one ``samples`` row per raw measurement value, each
    stamped with a deterministic sequence number and the simulator's
    virtual completion time.
    """

    def __init__(self, campaign: str = "campaign",
                 time_fn: Optional[Callable[[], float]] = None) -> None:
        super().__init__(campaign)
        self._time_fn = time_fn
        self.result_rows: list[dict] = []
        self.sample_rows: list[dict] = []
        self._result_seq = 0
        self._sample_seq = 0

    def observe(self, endpoint_name: str, metrics: Optional[dict],
                failed: bool = False, job: Optional[str] = None,
                error: Optional[str] = None) -> None:
        super().observe(endpoint_name, metrics, failed=failed, job=job,
                        error=error)
        now = self._time_fn() if self._time_fn is not None else 0.0
        self.result_rows.append(wschema.result_row(
            campaign=self.campaign,
            job=job or "",
            endpoint=endpoint_name,
            seq=self._result_seq,
            ok=not failed,
            sim_time=now,
            error=error or "",
            counters=(metrics or {}).get("counters"),
        ))
        self._result_seq += 1
        values = (metrics or {}).get("values")
        if values:
            rows, self._sample_seq = wschema.sample_rows(
                self.campaign, job or "", endpoint_name, values,
                self._sample_seq,
            )
            self.sample_rows.extend(rows)


def persist_campaign(
    warehouse: Warehouse,
    report: Any,
    events: Optional[Iterable] = None,
    campaign: Optional[str] = None,
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    close: bool = True,
) -> Manifest:
    """Write one finished campaign into the warehouse.

    ``report`` is a :class:`~repro.fleet.scheduler.CampaignReport`; when
    its aggregator is a :class:`RecordingAggregator` the buffered
    per-job rows are persisted too, otherwise only the campaign summary
    row and the rollups are. Everything lands under one manifest
    commit; ``close=True`` seals the campaign (enabling compaction and
    retention).
    """
    name = campaign or report.name
    writer = warehouse.begin_campaign(name, segment_rows=segment_rows)
    writer.add("campaigns", wschema.campaign_row(report.to_dict()))
    aggregator = getattr(report, "aggregator", None)
    if isinstance(aggregator, RecordingAggregator):
        writer.add_rows("results", aggregator.result_rows)
        writer.add_rows("samples", aggregator.sample_rows)
    if events is not None:
        writer.add_rows("events", (
            wschema.event_row(name, seq, event)
            for seq, event in enumerate(events)
        ))
    rollups = None
    if aggregator is not None:
        rollups = rollups_from_aggregator(warehouse, name, aggregator)
    return writer.commit(close=close, rollups=rollups)


def ingest_events(
    warehouse: Warehouse,
    campaign: str,
    events: Iterable,
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    close: bool = False,
) -> Manifest:
    """Append obs events (ObsEvent objects or decoded JSONL dicts) to a
    campaign's ``events`` table (creating the campaign if needed)."""
    writer = warehouse.begin_campaign(campaign, segment_rows=segment_rows)
    start = warehouse_event_count(writer)
    writer.add_rows("events", (
        wschema.event_row(campaign, start + offset, event)
        for offset, event in enumerate(events)
    ))
    return writer.commit(close=close)


def warehouse_event_count(writer: CampaignWriter) -> int:
    """Committed event rows (sequence numbers continue across appends)."""
    return sum(seg.rows for seg in writer.manifest.tables.get("events", ()))


def ingest_events_jsonl(
    warehouse: Warehouse,
    campaign: str,
    path: str,
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    close: bool = False,
) -> Manifest:
    """Ingest a :class:`~repro.obs.sinks.JsonlSink` export file.

    Reads tolerantly: a truncated final line (sink killed mid-write)
    is skipped rather than poisoning the whole ingest.
    """
    from repro.obs.sinks import read_jsonl

    records = [record for record in read_jsonl(path, strict=False)
               if record.get("kind") == "event"]
    return ingest_events(warehouse, campaign, records,
                         segment_rows=segment_rows, close=close)


def ingest_aggregate_jsonl(
    warehouse: Warehouse,
    path: str,
    campaign: Optional[str] = None,
    close: bool = True,
) -> Manifest:
    """Replay an ``export_jsonl`` file into materialized rollups."""
    with open(path, "r", encoding="utf-8") as fh:
        aggregator = ResultAggregator.from_jsonl_lines(fh)
    name = campaign or aggregator.campaign
    writer = warehouse.begin_campaign(name)
    rel = write_rollups(warehouse, name, rollups_state(
        name, aggregator.total, aggregator.per_endpoint,
        aggregator.jobs_observed,
    ))
    return writer.commit(close=close, rollups=rel)


def ingest_report_json(
    warehouse: Warehouse,
    path: str,
    close: bool = True,
) -> Manifest:
    """Ingest a campaign report JSON file (``fleet --json`` output)."""
    import json

    with open(path, "r", encoding="utf-8") as fh:
        report_dict = json.load(fh)
    name = report_dict.get("campaign") or "campaign"
    writer = warehouse.begin_campaign(name)
    writer.add("campaigns", wschema.campaign_row(report_dict))
    return writer.commit(close=close)
