"""PacketLab (IMC 2017) reproduction: a universal measurement endpoint
interface, complete with the simulated Internet it runs on.

Public API highlights:

- :mod:`repro.core` — high-level testbed assembly and experiment running.
- :mod:`repro.endpoint` — the measurement endpoint agent (Table 1 interface).
- :mod:`repro.controller` — the experiment controller library.
- :mod:`repro.rendezvous` — the publish/subscribe rendezvous server.
- :mod:`repro.crypto` — certificates and delegation (Figure 1).
- :mod:`repro.cpf` / :mod:`repro.filtervm` — the monitor language and VM
  (Figure 2).
- :mod:`repro.experiments` — ping, traceroute, bandwidth, DNS, HTTP,
  telescope experiments built on the controller API.
- :mod:`repro.netsim` — the discrete-event network simulator substrate.
"""

__version__ = "1.0.0"


def __getattr__(name):
    """Lazy top-level conveniences: ``from repro import Testbed``."""
    if name == "Testbed":
        from repro.core import Testbed

        return Testbed
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
