"""Old-model compatibility: BSD-style sockets backed by PacketLab
commands — the library §3.5 promises for developers who want to keep
writing sequential socket code."""

from repro.compat.sockets import (
    CompatDatagramSocket,
    CompatError,
    CompatRawSocket,
    CompatStack,
    CompatStreamSocket,
)

__all__ = [
    "CompatDatagramSocket",
    "CompatError",
    "CompatRawSocket",
    "CompatStack",
    "CompatStreamSocket",
]
