"""BSD-socket-style compatibility layer over the PacketLab interface.

§3.5: "Developers will need to adjust to the PacketLab model... We plan to
develop libraries and VPN-style drivers to allow developers to code
experiments to the old model but run them on PacketLab nodes."

This module is that library: a :class:`CompatStack` exposes UDP, TCP, and
raw sockets whose ``sendto``/``recv``-style calls are transparently backed
by Table 1 commands. Experiment code written against these sockets reads
like ordinary on-endpoint networking code, while every packet still
originates at the remote endpoint and every byte still flows through
``nsend``/``npoll``.

The inherent cost is the one §3.5 admits: each blocking receive and each
immediate send pays controller-endpoint latency. Time-critical sends can
still be scheduled via ``sendto_at``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Union

from repro.controller.client import EndpointHandle
from repro.filtervm.program import FilterProgram
from repro.netsim.clock import NANOSECONDS
from repro.proto.constants import ST_OK


class CompatError(Exception):
    """Raised when a compat operation fails at the PacketLab layer."""


@dataclass
class ReceivedDatagram:
    data: bytes
    timestamp: int  # endpoint ticks


class CompatStack:
    """Shared npoll demultiplexer behind all compat sockets of a session."""

    def __init__(self, handle: EndpointHandle) -> None:
        self.handle = handle
        self._next_sktid = 0
        self._buffers: dict[int, list[ReceivedDatagram]] = {}
        self.dropped_packets = 0
        self.dropped_bytes = 0

    def _allocate(self) -> int:
        sktid = self._next_sktid
        self._next_sktid += 1
        return sktid

    # -- socket constructors (generators) ----------------------------------

    def udp_socket(self, remaddr: int, remport: int,
                   locport: int = 0) -> Generator:
        """``sock = yield from stack.udp_socket(addr, port)``."""
        sktid = self._allocate()
        status = yield from self.handle.nopen_udp(
            sktid, locport=locport, remaddr=remaddr, remport=remport
        )
        if status != ST_OK:
            raise CompatError(f"udp socket open failed (status {status})")
        self._buffers[sktid] = []
        return CompatDatagramSocket(self, sktid)

    def tcp_connect(self, remaddr: int, remport: int,
                    locport: int = 0) -> Generator:
        """``conn = yield from stack.tcp_connect(addr, port)``."""
        sktid = self._allocate()
        status = yield from self.handle.nopen_tcp(
            sktid, remaddr=remaddr, remport=remport, locport=locport
        )
        if status != ST_OK:
            raise CompatError(f"tcp connect failed (status {status})")
        self._buffers[sktid] = []
        return CompatStreamSocket(self, sktid)

    def raw_socket(self, capture_filter: Union[FilterProgram, bytes],
                   capture_seconds: float = 3600.0) -> Generator:
        """Raw socket with an already-installed capture filter."""
        sktid = self._allocate()
        status = yield from self.handle.nopen_raw(sktid)
        if status != ST_OK:
            raise CompatError(f"raw socket open failed (status {status})")
        now = yield from self.handle.read_clock()
        status = yield from self.handle.ncap(
            sktid, now + int(capture_seconds * NANOSECONDS), capture_filter
        )
        if status != ST_OK:
            raise CompatError(f"ncap failed (status {status})")
        self._buffers[sktid] = []
        return CompatRawSocket(self, sktid)

    # -- shared receive path ---------------------------------------------------

    def _pump(self, deadline_ticks: int) -> Generator:
        """One npoll; route records into per-socket buffers."""
        poll = yield from self.handle.npoll(deadline_ticks)
        self.dropped_packets += poll.dropped_packets
        self.dropped_bytes += poll.dropped_bytes
        for record in poll.records:
            buffer = self._buffers.get(record.sktid)
            if buffer is not None:
                buffer.append(ReceivedDatagram(record.data, record.timestamp))
        return bool(poll.records)

    def _recv_into(self, sktid: int, timeout: float) -> Generator:
        """Block until the socket's buffer is non-empty or timeout."""
        buffer = self._buffers[sktid]
        if buffer:
            return buffer.pop(0)
        start = yield from self.handle.read_clock()
        deadline = start + int(timeout * NANOSECONDS)
        while True:
            yield from self._pump(deadline)
            if buffer:
                return buffer.pop(0)
            now = yield from self.handle.read_clock()
            if now >= deadline:
                return None

    def _close(self, sktid: int) -> Generator:
        self._buffers.pop(sktid, None)
        yield from self.handle.nclose(sktid)


class _CompatSocketBase:
    def __init__(self, stack: CompatStack, sktid: int) -> None:
        self._stack = stack
        self.sktid = sktid
        self.closed = False

    def close(self) -> Generator:
        if not self.closed:
            self.closed = True
            yield from self._stack._close(self.sktid)


class CompatDatagramSocket(_CompatSocketBase):
    """A connected UDP socket with the familiar sendto/recvfrom shape."""

    def sendto(self, data: bytes) -> Generator:
        """Send immediately (pays one controller->endpoint trip)."""
        status = yield from self._stack.handle.nsend(self.sktid, 0, data)
        if status != ST_OK:
            raise CompatError(f"sendto failed (status {status})")

    def sendto_at(self, data: bytes, when_ticks: int) -> Generator:
        """Escape hatch into PacketLab's native scheduled send."""
        status = yield from self._stack.handle.nsend(self.sktid, when_ticks, data)
        if status != ST_OK:
            raise CompatError(f"sendto_at failed (status {status})")

    def recvfrom(self, timeout: float = 5.0) -> Generator:
        """Receive one datagram payload, or None on timeout."""
        received = yield from self._stack._recv_into(self.sktid, timeout)
        return received.data if received is not None else None


class CompatStreamSocket(_CompatSocketBase):
    """A connected TCP socket: send/recv over the endpoint's native TCP."""

    def send(self, data: bytes) -> Generator:
        status = yield from self._stack.handle.nsend(self.sktid, 0, data)
        if status != ST_OK:
            raise CompatError(f"send failed (status {status})")

    def recv(self, timeout: float = 5.0) -> Generator:
        """Receive the next stream chunk, or None on timeout."""
        received = yield from self._stack._recv_into(self.sktid, timeout)
        return received.data if received is not None else None

    def recv_exactly(self, count: int, timeout: float = 10.0) -> Generator:
        parts: list[bytes] = []
        remaining = count
        while remaining > 0:
            chunk = yield from self.recv(timeout)
            if chunk is None:
                raise CompatError(
                    f"timeout with {remaining} of {count} bytes unread"
                )
            take = chunk[:remaining]
            if len(chunk) > remaining:
                # Push back the excess for the next read.
                self._stack._buffers[self.sktid].insert(
                    0, ReceivedDatagram(chunk[remaining:], 0)
                )
            parts.append(take)
            remaining -= len(take)
        return b"".join(parts)


class CompatRawSocket(_CompatSocketBase):
    """A raw socket: inject IPv4 packets, receive captured ones."""

    def send_packet(self, packet_bytes: bytes) -> Generator:
        status = yield from self._stack.handle.nsend(self.sktid, 0, packet_bytes)
        if status != ST_OK:
            raise CompatError(f"send_packet failed (status {status})")

    def recv_packet(self, timeout: float = 5.0) -> Generator:
        """Receive one captured packet as (bytes, endpoint_ticks)."""
        received = yield from self._stack._recv_into(self.sktid, timeout)
        if received is None:
            return None
        return received.data, received.timestamp
