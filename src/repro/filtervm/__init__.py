"""The PacketLab filter/monitor virtual machine (§3.4).

A BPF-descendant stack VM with the two features the paper says BPF lacks:
persistent scratch memory (stateful filtering across packets) and endpoint
info-block access. Execution is bounded by fuel instead of acyclicity, so
loops are allowed but always terminate. All faults fail closed (verdict 0).
"""

from repro.filtervm import builtins
from repro.filtervm.assembler import AssemblyError, assemble, disassemble
from repro.filtervm.isa import Instruction, Op
from repro.filtervm.program import (
    ENTRY_INIT,
    ENTRY_RECV,
    ENTRY_SEND,
    FilterProgram,
    Function,
    ProgramError,
)
from repro.filtervm.verify import (
    Finding,
    VerifierReport,
    VerifyRejected,
    verify,
    verify_or_raise,
)
from repro.filtervm.vm import (
    DEFAULT_FUEL,
    VERDICT_CONSUME,
    VERDICT_DROP,
    VERDICT_MIRROR,
    BytesInfo,
    FilterVM,
)

__all__ = [
    "AssemblyError",
    "BytesInfo",
    "DEFAULT_FUEL",
    "ENTRY_INIT",
    "ENTRY_RECV",
    "ENTRY_SEND",
    "FilterProgram",
    "FilterVM",
    "Finding",
    "Function",
    "Instruction",
    "Op",
    "ProgramError",
    "VERDICT_CONSUME",
    "VERDICT_DROP",
    "VERDICT_MIRROR",
    "VerifierReport",
    "VerifyRejected",
    "assemble",
    "builtins",
    "disassemble",
    "verify",
    "verify_or_raise",
]
