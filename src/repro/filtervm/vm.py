"""The filter VM interpreter.

Every invocation is bounded by a fuel budget; every fault — out-of-bounds
access, stack underflow, division by zero, fuel exhaustion, call-depth
overflow — aborts with verdict 0 (deny). Monitors therefore fail closed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

from repro.filtervm.isa import MASK64, Op, to_signed, to_unsigned
from repro.filtervm.program import FilterProgram, ProgramError

if TYPE_CHECKING:
    from repro.obs import Observability

DEFAULT_FUEL = 10_000
MAX_CALL_DEPTH = 32
MAX_STACK = 1024

# Verdicts returned by filters attached with ncap (§3.1): whether a packet
# is ignored, consumed, or mirrored. A monitor's send/recv entry points use
# plain zero/nonzero (deny/allow), so Figure 2's ``return len`` works.
VERDICT_DROP = 0
VERDICT_CONSUME = 1
VERDICT_MIRROR = 2


class VmFault(Exception):
    """Internal: aborts an invocation; callers see verdict 0."""


class InfoSource(Protocol):
    """Read access to the endpoint info block (big-endian loads)."""

    def read(self, offset: int, size: int) -> bytes: ...


class BytesInfo:
    """Adapt a plain ``bytes`` buffer as an :class:`InfoSource`."""

    def __init__(self, data: bytes) -> None:
        self._data = data

    def read(self, offset: int, size: int) -> bytes:
        if offset < 0 or offset + size > len(self._data):
            raise VmFault(f"info read [{offset}:{offset + size}] out of bounds")
        return self._data[offset : offset + size]


class FilterVM:
    """An instantiated program with its persistent globals.

    One ``FilterVM`` lives for the duration of an experiment: its globals
    survive across invocations (the paper's stateful-filtering requirement)
    while stack and locals are per-invocation.
    """

    def __init__(
        self,
        program: FilterProgram,
        info: Optional[InfoSource] = None,
        fuel_limit: int = DEFAULT_FUEL,
        obs: Optional["Observability"] = None,
    ) -> None:
        program.verify()
        self.program = program
        self.info = info or BytesInfo(b"")
        self.fuel_limit = fuel_limit
        self.globals = bytearray(program.globals_size)
        self.invocations = 0
        self.faults = 0
        self.instructions_executed = 0
        self.last_fault: Optional[str] = None
        self._obs = obs

    def has_entry(self, name: str) -> bool:
        return self.program.function_named(name) is not None

    def run_init(self) -> None:
        """Run the optional ``init`` entry point once, if present."""
        if self.has_entry("init"):
            self.invoke("init", packet=b"", args=())

    def invoke(
        self,
        entry: str,
        packet: bytes = b"",
        args: tuple[int, ...] = (),
        fuel: Optional[int] = None,
    ) -> int:
        """Run an entry point; returns its verdict (0 on any fault)."""
        function = self.program.function_named(entry)
        if function is None:
            raise ProgramError(f"program has no entry point {entry!r}")
        if len(args) != function.n_args:
            raise ProgramError(
                f"entry {entry!r} takes {function.n_args} args, got {len(args)}"
            )
        self.invocations += 1
        budget = fuel or self.fuel_limit
        obs = self._obs
        try:
            verdict, fuel_left = self._execute(function, packet, args, budget)
        except VmFault as fault:
            self.faults += 1
            self.last_fault = str(fault)
            if obs is not None and obs.enabled:
                obs.counter("filtervm.invocations").inc()
                obs.counter("filtervm.faults").inc()
                obs.counter("filtervm.deny").inc()
            return 0
        self.instructions_executed += budget - fuel_left
        if obs is not None and obs.enabled:
            obs.counter("filtervm.invocations").inc()
            obs.counter("filtervm.instructions").inc(budget - fuel_left)
            obs.counter("filtervm.allow" if verdict else "filtervm.deny").inc()
        return verdict

    # -- interpreter core ----------------------------------------------------

    def _execute(
        self, function, packet: bytes, args: tuple[int, ...], fuel: int
    ) -> tuple[int, int]:
        """Run to completion; returns ``(verdict, fuel_remaining)``."""
        code = self.program.code
        functions = self.program.functions
        stack: list[int] = []
        locals_: list[int] = [to_unsigned(a) for a in args] + [0] * (
            function.n_locals - function.n_args
        )
        frames: list[tuple[int, list[int]]] = []  # (return pc, saved locals)
        pc = function.offset

        def pop() -> int:
            if not stack:
                raise VmFault("stack underflow")
            return stack.pop()

        def push(value: int) -> None:
            if len(stack) >= MAX_STACK:
                raise VmFault("stack overflow")
            stack.append(value & MASK64)

        while True:
            if fuel <= 0:
                raise VmFault("fuel exhausted")
            fuel -= 1
            if pc >= len(code):
                raise VmFault(f"pc {pc} ran off the end of code")
            instruction = code[pc]
            op = instruction.op
            pc += 1

            if op == Op.PUSH:
                push(to_unsigned(instruction.operand))
            elif op == Op.POP:
                pop()
            elif op == Op.DUP:
                value = pop()
                push(value)
                push(value)
            elif op == Op.SWAP:
                a = pop()
                b = pop()
                push(a)
                push(b)
            elif op == Op.LDL:
                index = instruction.operand
                if not 0 <= index < len(locals_):
                    raise VmFault(f"local {index} out of range")
                push(locals_[index])
            elif op == Op.STL:
                index = instruction.operand
                if not 0 <= index < len(locals_):
                    raise VmFault(f"local {index} out of range")
                locals_[index] = pop()
            elif op in _BINARY_HANDLERS:
                rhs = pop()
                lhs = pop()
                push(_BINARY_HANDLERS[op](lhs, rhs))
            elif op == Op.BNOT:
                push(~pop())
            elif op == Op.NEG:
                push(-pop())
            elif op == Op.LNOT:
                push(0 if pop() else 1)
            elif op == Op.JMP:
                pc = instruction.operand
            elif op == Op.JZ:
                if pop() == 0:
                    pc = instruction.operand
            elif op == Op.JNZ:
                if pop() != 0:
                    pc = instruction.operand
            elif op == Op.CALL:
                if len(frames) >= MAX_CALL_DEPTH:
                    raise VmFault("call depth exceeded")
                callee = functions[instruction.operand]
                call_args = [pop() for _ in range(callee.n_args)][::-1]
                frames.append((pc, locals_))
                locals_ = call_args + [0] * (callee.n_locals - callee.n_args)
                pc = callee.offset
            elif op == Op.RET:
                result = pop()
                if not frames:
                    return result, fuel
                pc, locals_ = frames.pop()
                push(result)
            elif op == Op.PKTLEN:
                push(len(packet))
            elif op in (Op.PKTLD8, Op.PKTLD16, Op.PKTLD32):
                size = {Op.PKTLD8: 1, Op.PKTLD16: 2, Op.PKTLD32: 4}[op]
                offset = to_signed(pop())
                if offset < 0 or offset + size > len(packet):
                    raise VmFault(
                        f"packet read [{offset}:{offset + size}] out of bounds "
                        f"(len {len(packet)})"
                    )
                push(int.from_bytes(packet[offset : offset + size], "big"))
            elif op in (Op.INFOLD8, Op.INFOLD16, Op.INFOLD32, Op.INFOLD64):
                size = {
                    Op.INFOLD8: 1,
                    Op.INFOLD16: 2,
                    Op.INFOLD32: 4,
                    Op.INFOLD64: 8,
                }[op]
                offset = to_signed(pop())
                data = self.info.read(offset, size)
                push(int.from_bytes(data, "big"))
            elif op in (Op.GLD8, Op.GLD16, Op.GLD32, Op.GLD64):
                size = {Op.GLD8: 1, Op.GLD16: 2, Op.GLD32: 4, Op.GLD64: 8}[op]
                offset = to_signed(pop())
                self._check_globals(offset, size)
                push(int.from_bytes(self.globals[offset : offset + size], "big"))
            elif op in (Op.GST8, Op.GST16, Op.GST32, Op.GST64):
                size = {Op.GST8: 1, Op.GST16: 2, Op.GST32: 4, Op.GST64: 8}[op]
                offset = to_signed(pop())
                value = pop()
                self._check_globals(offset, size)
                self.globals[offset : offset + size] = (
                    value & ((1 << (8 * size)) - 1)
                ).to_bytes(size, "big")
            else:  # pragma: no cover - verifier rejects unknown opcodes
                raise VmFault(f"unhandled opcode {op}")

    def _check_globals(self, offset: int, size: int) -> None:
        if offset < 0 or offset + size > len(self.globals):
            raise VmFault(
                f"globals access [{offset}:{offset + size}] out of bounds "
                f"(size {len(self.globals)})"
            )


def _div_u(lhs: int, rhs: int) -> int:
    if rhs == 0:
        raise VmFault("division by zero")
    return lhs // rhs


def _mod_u(lhs: int, rhs: int) -> int:
    if rhs == 0:
        raise VmFault("division by zero")
    return lhs % rhs


def _div_s(lhs: int, rhs: int) -> int:
    if rhs == 0:
        raise VmFault("division by zero")
    a, b = to_signed(lhs), to_signed(rhs)
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return to_unsigned(quotient)


def _mod_s(lhs: int, rhs: int) -> int:
    if rhs == 0:
        raise VmFault("division by zero")
    a, b = to_signed(lhs), to_signed(rhs)
    remainder = abs(a) % abs(b)
    if a < 0:
        remainder = -remainder
    return to_unsigned(remainder)


def _shift_amount(rhs: int) -> int:
    return rhs & 63


_BINARY_HANDLERS = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.DIVU: _div_u,
    Op.MODU: _mod_u,
    Op.DIVS: _div_s,
    Op.MODS: _mod_s,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << _shift_amount(b),
    Op.SHRU: lambda a, b: a >> _shift_amount(b),
    Op.SHRS: lambda a, b: to_unsigned(to_signed(a) >> _shift_amount(b)),
    Op.EQ: lambda a, b: int(a == b),
    Op.NE: lambda a, b: int(a != b),
    Op.LTU: lambda a, b: int(a < b),
    Op.LEU: lambda a, b: int(a <= b),
    Op.GTU: lambda a, b: int(a > b),
    Op.GEU: lambda a, b: int(a >= b),
    Op.LTS: lambda a, b: int(to_signed(a) < to_signed(b)),
    Op.LES: lambda a, b: int(to_signed(a) <= to_signed(b)),
    Op.GTS: lambda a, b: int(to_signed(a) > to_signed(b)),
    Op.GES: lambda a, b: int(to_signed(a) >= to_signed(b)),
}
