"""Textual assembler and disassembler for the filter VM.

Assembly syntax::

    globals 16                ; persistent memory size in bytes

    func send args=2 locals=4 ; entry point with 2 args, 4 local slots
        ldl 0                 ; push local 0
        push 9
        pktld8                ; load packet byte at popped offset
        jz deny               ; labels resolve across the whole program
        push 1
        ret
    deny:
        push 0
        ret

Comments start with ``;`` or ``#``. ``call`` takes a function name.
"""

from __future__ import annotations

from repro.filtervm.isa import OPS_WITH_OPERAND, Instruction, Op
from repro.filtervm.program import FilterProgram, Function, ProgramError


class AssemblyError(Exception):
    """Raised on malformed assembly input."""


_OP_BY_NAME = {op.name.lower(): op for op in Op}


def assemble(source: str) -> FilterProgram:
    """Assemble text into a verified :class:`FilterProgram`."""
    code: list[Instruction] = []
    functions: list[Function] = []
    globals_size = 0
    labels: dict[str, int] = {}
    fixups: list[tuple[int, str, int]] = []  # (code index, label, line number)
    call_fixups: list[tuple[int, str, int]] = []
    current_function: dict | None = None

    def finish_function() -> None:
        nonlocal current_function
        if current_function is not None:
            if current_function["offset"] == len(code):
                raise AssemblyError(
                    f"line {current_function['line']}: function "
                    f"{current_function['name']!r} has an empty body"
                )
            functions.append(
                Function(
                    name=current_function["name"],
                    offset=current_function["offset"],
                    n_args=current_function["args"],
                    n_locals=current_function["locals"],
                )
            )
            current_function = None

    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label.isidentifier():
                raise AssemblyError(f"line {line_number}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(f"line {line_number}: duplicate label {label!r}")
            labels[label] = len(code)
            continue
        parts = line.split()
        head = parts[0].lower()
        if head == "globals":
            if len(parts) != 2:
                raise AssemblyError(f"line {line_number}: globals takes one argument")
            globals_size = _parse_int(parts[1], line_number)
            continue
        if head == "func":
            finish_function()
            if len(parts) < 2:
                raise AssemblyError(f"line {line_number}: func needs a name")
            spec = {
                "name": parts[1],
                "offset": len(code),
                "args": 0,
                "locals": 0,
                "line": line_number,
            }
            for extra in parts[2:]:
                if "=" not in extra:
                    raise AssemblyError(
                        f"line {line_number}: expected key=value, got {extra!r}"
                    )
                key, _, value = extra.partition("=")
                if key not in ("args", "locals"):
                    raise AssemblyError(f"line {line_number}: unknown key {key!r}")
                spec[key] = _parse_int(value, line_number)
            spec["locals"] = max(spec["locals"], spec["args"])
            current_function = spec
            continue
        if current_function is None:
            raise AssemblyError(
                f"line {line_number}: instruction outside any function"
            )
        op = _OP_BY_NAME.get(head)
        if op is None:
            raise AssemblyError(f"line {line_number}: unknown instruction {head!r}")
        if op in OPS_WITH_OPERAND:
            if len(parts) != 2:
                raise AssemblyError(f"line {line_number}: {head} takes one operand")
            operand_text = parts[1]
            if op in (Op.JMP, Op.JZ, Op.JNZ) and not _is_int(operand_text):
                fixups.append((len(code), operand_text, line_number))
                code.append(Instruction(op, 0))
            elif op == Op.CALL and not _is_int(operand_text):
                call_fixups.append((len(code), operand_text, line_number))
                code.append(Instruction(op, 0))
            else:
                code.append(Instruction(op, _parse_int(operand_text, line_number)))
        else:
            if len(parts) != 1:
                raise AssemblyError(f"line {line_number}: {head} takes no operand")
            code.append(Instruction(op))
    finish_function()

    for index, label, line_number in fixups:
        if label not in labels:
            raise AssemblyError(f"line {line_number}: undefined label {label!r}")
        target = labels[label]
        # The VM's bounds check is 0 <= pc < len(code); a label declared
        # after the last instruction resolves to one-past-the-end and
        # would fault at runtime. Report it here, with the line number.
        if target >= len(code):
            raise AssemblyError(
                f"line {line_number}: label {label!r} resolves to "
                f"{target}, one past the end of the {len(code)}-instruction "
                "program (no instruction follows it)"
            )
        code[index] = Instruction(code[index].op, target)
    name_to_index = {function.name: i for i, function in enumerate(functions)}
    for index, name, line_number in call_fixups:
        if name not in name_to_index:
            raise AssemblyError(f"line {line_number}: undefined function {name!r}")
        code[index] = Instruction(Op.CALL, name_to_index[name])

    program = FilterProgram(code=code, functions=functions, globals_size=globals_size)
    try:
        program.verify()
    except ProgramError as exc:
        raise AssemblyError(str(exc)) from exc
    return program


def disassemble(program: FilterProgram) -> str:
    """Produce a readable listing (labels synthesized at jump targets)."""
    targets = {
        instruction.operand
        for instruction in program.code
        if instruction.op in (Op.JMP, Op.JZ, Op.JNZ)
    }
    starts = {function.offset: function for function in program.functions}
    lines = [f"globals {program.globals_size}", ""]
    for index, instruction in enumerate(program.code):
        if index in starts:
            function = starts[index]
            lines.append(
                f"func {function.name} args={function.n_args} "
                f"locals={function.n_locals}"
            )
        if index in targets:
            lines.append(f"L{index}:")
        if instruction.op in (Op.JMP, Op.JZ, Op.JNZ):
            lines.append(f"    {instruction.op.name.lower()} L{instruction.operand}")
        elif instruction.op == Op.CALL:
            name = program.functions[instruction.operand].name
            lines.append(f"    call {name}")
        else:
            lines.append(f"    {instruction!r}")
    return "\n".join(lines)


def _is_int(text: str) -> bool:
    try:
        int(text, 0)
        return True
    except ValueError:
        return False


def _parse_int(text: str, line_number: int) -> int:
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblyError(f"line {line_number}: bad integer {text!r}") from exc
