"""Prebuilt filter programs for common cases.

These cover the everyday ``ncap`` filters an experimenter installs (capture
everything, capture one protocol, capture one UDP/TCP port) without writing
Cpf. The packet seen by a filter is a raw IPv4 packet, so offsets follow
the IPv4 header layout (protocol at byte 9, source at 12, destination at
16, L4 ports at 20/22 when IHL=5).
"""

from __future__ import annotations

from repro.filtervm.assembler import assemble
from repro.filtervm.program import FilterProgram
from repro.filtervm.vm import VERDICT_CONSUME, VERDICT_MIRROR

IP_PROTO_OFFSET = 9
IP_SRC_OFFSET = 12
IP_DST_OFFSET = 16
L4_SPORT_OFFSET = 20
L4_DPORT_OFFSET = 22
ICMP_TYPE_OFFSET = 20


def capture_all(verdict: int = VERDICT_CONSUME) -> FilterProgram:
    """Capture every packet with the given verdict."""
    return assemble(
        f"""
        func recv args=2
            push {verdict}
            ret
        """
    )


def mirror_all() -> FilterProgram:
    """Passive capture: mirror everything to the controller, leave the OS
    alone (the paper's network-telescope use case)."""
    return capture_all(VERDICT_MIRROR)


def allow_all_monitor() -> FilterProgram:
    """A monitor that allows every send and recv (for open endpoints)."""
    return assemble(
        """
        func send args=2
            ldl 1
            ret
        func recv args=2
            ldl 1
            ret
        """
    )


def deny_all_monitor() -> FilterProgram:
    """A monitor that denies everything (lockdown)."""
    return assemble(
        """
        func send args=2
            push 0
            ret
        func recv args=2
            push 0
            ret
        """
    )


def capture_protocol(proto: int, verdict: int = VERDICT_CONSUME) -> FilterProgram:
    """Capture only packets of one IP protocol."""
    return assemble(
        f"""
        func recv args=2
            push {IP_PROTO_OFFSET}
            pktld8
            push {proto}
            eq
            jz deny
            push {verdict}
            ret
        deny:
            push 0
            ret
        """
    )


def capture_udp_port(port: int, verdict: int = VERDICT_CONSUME) -> FilterProgram:
    """Capture UDP packets to or from a given port."""
    return assemble(
        f"""
        func recv args=2
            push {IP_PROTO_OFFSET}
            pktld8
            push 17
            eq
            jz deny
            push {L4_DPORT_OFFSET}
            pktld16
            push {port}
            eq
            jnz accept
            push {L4_SPORT_OFFSET}
            pktld16
            push {port}
            eq
            jnz accept
            jmp deny
        accept:
            push {verdict}
            ret
        deny:
            push 0
            ret
        """
    )


def capture_from_host(addr: int, verdict: int = VERDICT_CONSUME) -> FilterProgram:
    """Capture packets whose source address matches."""
    return assemble(
        f"""
        func recv args=2
            push {IP_SRC_OFFSET}
            pktld32
            push {addr}
            eq
            jz deny
            push {verdict}
            ret
        deny:
            push 0
            ret
        """
    )


def icmp_echo_monitor() -> FilterProgram:
    """Hand-assembled equivalent of Figure 2's corrected traceroute monitor.

    ``send``: allow only ICMP echo requests originating from this endpoint;
    remember the destination in persistent global 0.
    ``recv``: allow echo replies from the remembered destination, and
    time-exceeded errors whose quoted header matches the original probe.

    Globals layout: [0:4] = ping_dst.
    The endpoint's own address is read from the info block (offset 8, per
    :mod:`repro.endpoint.memory`).
    """
    return assemble(
        """
        globals 4

        func send args=2
            ; IPv4 version/IHL byte must be 0x45
            push 0
            pktld8
            push 0x45
            eq
            jz deny_send
            ; protocol must be ICMP (1)
            push 9
            pktld8
            push 1
            eq
            jz deny_send
            ; source must equal the endpoint address (info offset 8)
            push 12
            pktld32
            push 8
            infold32
            eq
            jz deny_send
            ; ICMP type must be echo request (8)
            push 20
            pktld8
            push 8
            eq
            jz deny_send
            ; remember destination: ping_dst = pkt->ip.dst
            push 16
            pktld32
            push 0
            gst32
            ; allow: return len
            ldl 1
            ret
        deny_send:
            push 0
            ret

        func recv args=2
            ; must be IPv4, IHL 5
            push 0
            pktld8
            push 0x45
            eq
            jz deny_recv
            ; must be ICMP
            push 9
            pktld8
            push 1
            eq
            jz deny_recv
            ; echo reply from ping_dst?
            push 20
            pktld8
            push 0
            eq
            jz not_reply
            push 12
            pktld32
            push 0
            gld32
            eq
            jz deny_recv
            ldl 1
            ret
        not_reply:
            ; time exceeded (type 11) quoting our original probe?
            push 20
            pktld8
            push 11
            eq
            jz deny_recv
            ; quoted original IP header starts at offset 28:
            ; orig.src (28+12) == our address
            push 40
            pktld32
            push 8
            infold32
            eq
            jz deny_recv
            ; orig.dst (28+16) == ping_dst
            push 44
            pktld32
            push 0
            gld32
            eq
            jz deny_recv
            ldl 1
            ret
        deny_recv:
            push 0
            ret
        """
    )
