"""Instruction set of the PacketLab filter VM.

The paper (§3.4) wants a BPF-descendant with two extras plain BPF lacks:
scratch memory that **persists across packets** (stateful filtering, e.g.
Figure 2's ``ping_dst`` global) and access to the endpoint info block. It
also notes BPF's acyclicity rule and leaves the final design open. This VM
keeps BPF's safety property — bounded execution — but enforces it with a
per-invocation fuel limit instead of forbidding loops, so Cpf ``while``
loops are expressible.

Model: a 64-bit stack machine.

- **stack** — unsigned 64-bit values (arithmetic wraps mod 2^64),
- **locals** — per-call frame slots (function arguments first),
- **globals** — a byte-addressable memory persisting for the experiment
  (the monitor's private state),
- **packet** — the read-only bytes of the packet under consideration;
  multi-byte packet loads are big-endian (network order),
- **info** — the read-only endpoint info block (§3.1), also big-endian.

Any fault (out-of-bounds load, division by zero, stack underflow, fuel
exhaustion) aborts the invocation with verdict 0 — deny — matching the
safe-default philosophy of packet filters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

class Op(enum.IntEnum):
    """Opcodes. Operand column: I = signed 64-bit immediate, - = none."""

    # Stack manipulation.
    PUSH = 0x01  # I: push immediate
    POP = 0x02
    DUP = 0x03
    SWAP = 0x04

    # Locals.
    LDL = 0x10  # I: push locals[i]
    STL = 0x11  # I: locals[i] = pop

    # Arithmetic (binary ops pop rhs then lhs, push result).
    ADD = 0x20
    SUB = 0x21
    MUL = 0x22
    DIVU = 0x23
    MODU = 0x24
    DIVS = 0x25
    MODS = 0x26
    AND = 0x27
    OR = 0x28
    XOR = 0x29
    SHL = 0x2A
    SHRU = 0x2B
    SHRS = 0x2C
    BNOT = 0x2D  # unary bitwise not
    NEG = 0x2E  # unary arithmetic negation

    # Comparisons (result 0 or 1).
    EQ = 0x30
    NE = 0x31
    LTU = 0x32
    LEU = 0x33
    GTU = 0x34
    GEU = 0x35
    LTS = 0x36
    LES = 0x37
    GTS = 0x38
    GES = 0x39
    LNOT = 0x3A  # unary logical not

    # Control flow (absolute code offsets).
    JMP = 0x40  # I
    JZ = 0x41  # I: jump if pop == 0
    JNZ = 0x42  # I: jump if pop != 0
    CALL = 0x43  # I: function index
    RET = 0x44  # return pop as function result

    # Packet access (offset popped from stack).
    PKTLEN = 0x50
    PKTLD8 = 0x51
    PKTLD16 = 0x52
    PKTLD32 = 0x53

    # Info block access (offset popped from stack).
    INFOLD8 = 0x58
    INFOLD16 = 0x59
    INFOLD32 = 0x5A
    INFOLD64 = 0x5B

    # Globals (persistent memory). Loads pop offset; stores pop offset,
    # then value.
    GLD8 = 0x60
    GLD16 = 0x61
    GLD32 = 0x62
    GLD64 = 0x63
    GST8 = 0x68
    GST16 = 0x69
    GST32 = 0x6A
    GST64 = 0x6B


# Opcodes that carry a 64-bit immediate operand.
OPS_WITH_OPERAND = frozenset(
    {Op.PUSH, Op.LDL, Op.STL, Op.JMP, Op.JZ, Op.JNZ, Op.CALL}
)

# Binary ALU operations (pop two, push one).
BINARY_OPS = frozenset(
    {
        Op.ADD, Op.SUB, Op.MUL, Op.DIVU, Op.MODU, Op.DIVS, Op.MODS,
        Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHRU, Op.SHRS,
        Op.EQ, Op.NE, Op.LTU, Op.LEU, Op.GTU, Op.GEU,
        Op.LTS, Op.LES, Op.GTS, Op.GES,
    }
)

UNARY_OPS = frozenset({Op.BNOT, Op.NEG, Op.LNOT})

MASK64 = (1 << 64) - 1


def to_signed(value: int) -> int:
    """Interpret an unsigned 64-bit value as two's-complement signed."""
    return value - (1 << 64) if value & (1 << 63) else value


def to_unsigned(value: int) -> int:
    return value & MASK64


@dataclass(frozen=True)
class Instruction:
    op: Op
    operand: int = 0

    def __post_init__(self) -> None:
        if self.op in OPS_WITH_OPERAND:
            if not -(1 << 63) <= self.operand < (1 << 63):
                raise ValueError(f"operand {self.operand} out of i64 range")
        elif self.operand != 0:
            raise ValueError(f"{self.op.name} takes no operand")

    def __repr__(self) -> str:
        if self.op in OPS_WITH_OPERAND:
            return f"{self.op.name.lower()} {self.operand}"
        return self.op.name.lower()


_OP_VALUES = {op.value for op in Op}


def valid_opcode(value: int) -> bool:
    return value in _OP_VALUES
