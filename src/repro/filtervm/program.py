"""Filter VM program container: functions, code, serialization, verification.

A program is what travels inside a certificate's ``monitor`` restriction or
an ``ncap`` command's ``filt`` argument: a flat code array, a function
table with named entry points (``send``, ``recv``, optionally ``init``),
and a declared persistent-globals size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filtervm.isa import (
    OPS_WITH_OPERAND,
    Instruction,
    Op,
    valid_opcode,
)
from repro.util.byteio import ByteReader, ByteWriter, DecodeError

_PROGRAM_MAGIC = 0x43504656  # "CPFV"
_PROGRAM_VERSION = 1

MAX_GLOBALS_SIZE = 64 * 1024
MAX_CODE_LENGTH = 64 * 1024
MAX_FUNCTIONS = 256
MAX_LOCALS = 256

ENTRY_SEND = "send"
ENTRY_RECV = "recv"
ENTRY_INIT = "init"


class ProgramError(Exception):
    """Raised for structurally invalid filter programs."""


@dataclass(frozen=True)
class Function:
    name: str
    offset: int  # index into the code array
    n_args: int
    n_locals: int  # total local slots including arguments

    def __post_init__(self) -> None:
        if self.n_args > self.n_locals:
            raise ProgramError(
                f"function {self.name}: {self.n_args} args exceed "
                f"{self.n_locals} locals"
            )


@dataclass
class FilterProgram:
    """A verified-on-load filter/monitor program."""

    code: list[Instruction] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
    globals_size: int = 0

    def function_named(self, name: str) -> Function | None:
        for function in self.functions:
            if function.name == name:
                return function
        return None

    def function_index(self, name: str) -> int:
        for index, function in enumerate(self.functions):
            if function.name == name:
                return index
        raise ProgramError(f"no function named {name!r}")

    @property
    def entry_points(self) -> list[str]:
        return [function.name for function in self.functions]

    # -- verification -------------------------------------------------------

    def verify(self) -> "FilterProgram":
        """Structural checks; raises ProgramError. Returns self for chaining."""
        if len(self.code) > MAX_CODE_LENGTH:
            raise ProgramError(f"code too long: {len(self.code)}")
        if len(self.functions) > MAX_FUNCTIONS:
            raise ProgramError(f"too many functions: {len(self.functions)}")
        if not 0 <= self.globals_size <= MAX_GLOBALS_SIZE:
            raise ProgramError(f"bad globals size: {self.globals_size}")
        names = [function.name for function in self.functions]
        if len(set(names)) != len(names):
            raise ProgramError("duplicate function names")
        for function in self.functions:
            # Strictly less than len(code): a function must own at least
            # one instruction, or the VM faults "pc ran off the end" on
            # the very first fetch (offset == len(code) is one-past-the-
            # end, not a body).
            if not 0 <= function.offset < len(self.code):
                raise ProgramError(
                    f"function {function.name} offset {function.offset} out of range"
                )
            if function.n_locals > MAX_LOCALS:
                raise ProgramError(f"function {function.name} has too many locals")
        for index, instruction in enumerate(self.code):
            if instruction.op in (Op.JMP, Op.JZ, Op.JNZ):
                if not 0 <= instruction.operand < len(self.code):
                    raise ProgramError(
                        f"jump at {index} targets {instruction.operand}, "
                        f"outside code of length {len(self.code)}"
                    )
            elif instruction.op == Op.CALL:
                if not 0 <= instruction.operand < len(self.functions):
                    raise ProgramError(
                        f"call at {index} references function {instruction.operand}"
                    )
        return self

    # -- serialization -------------------------------------------------------

    def encode(self) -> bytes:
        writer = ByteWriter()
        writer.u32(_PROGRAM_MAGIC)
        writer.u8(_PROGRAM_VERSION)
        writer.u32(self.globals_size)
        writer.u8(len(self.functions))
        for function in self.functions:
            writer.str_u16(function.name)
            writer.u32(function.offset)
            writer.u8(function.n_args)
            writer.u16(function.n_locals)
        writer.u32(len(self.code))
        for instruction in self.code:
            writer.u8(instruction.op.value)
            if instruction.op in OPS_WITH_OPERAND:
                writer.i64(instruction.operand)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "FilterProgram":
        reader = ByteReader(data)
        magic = reader.u32()
        if magic != _PROGRAM_MAGIC:
            raise DecodeError(f"bad filter program magic {magic:#x}")
        version = reader.u8()
        if version != _PROGRAM_VERSION:
            raise DecodeError(f"unsupported filter program version {version}")
        globals_size = reader.u32()
        functions = []
        for _ in range(reader.u8()):
            name = reader.str_u16()
            offset = reader.u32()
            n_args = reader.u8()
            n_locals = reader.u16()
            try:
                functions.append(
                    Function(name=name, offset=offset, n_args=n_args, n_locals=n_locals)
                )
            except ProgramError as exc:
                raise DecodeError(str(exc)) from exc
        code = []
        for _ in range(reader.u32()):
            opcode = reader.u8()
            if not valid_opcode(opcode):
                raise DecodeError(f"invalid opcode {opcode:#x}")
            op = Op(opcode)
            operand = reader.i64() if op in OPS_WITH_OPERAND else 0
            code.append(Instruction(op, operand))
        reader.expect_end()
        program = cls(code=code, functions=functions, globals_size=globals_size)
        try:
            program.verify()
        except ProgramError as exc:
            raise DecodeError(str(exc)) from exc
        return program
