"""Static verifier for filter VM programs (§3.4's BPF admission property).

The paper grounds the monitor mechanism in BPF's key property: untrusted
filter code whose safety is checked *before* it runs. The VM already fails
closed at runtime (fuel, fault-to-deny), but a broken monitor then denies
every packet one invocation at a time, and the experimenter only learns
mid-session. This module is the missing static layer: endpoints verify a
monitor once, at install time, and reject programs that can provably fault
— in the spirit of the classic BPF/eBPF verifier, adapted to this VM's
stack machine (BPF forbids loops outright; we allow them and fall back to
the runtime fuel bound, reporting a static worst-case fuel bound whenever
the program is loop-free).

Checks, in order:

1. **Structure** — function table sanity (offsets on instruction
   boundaries inside the code, locals/args limits), jump targets and call
   indices in range, entry-point signatures (``send``/``recv`` take two
   arguments, ``init`` takes none).
2. **Control flow** — per-function CFG over the function's code extent;
   control may not fall off the end of a function or jump into another
   one (the VM has no function boundaries, so such programs would
   silently run foreign code with the wrong frame).
3. **Stack discipline** — abstract interpretation computing a per
   -instruction interval of possible stack depths, proving no path
   underflows and depth never exceeds ``MAX_STACK``.
4. **Call graph** — recursion is rejected; the deepest acyclic call chain
   must fit ``MAX_CALL_DEPTH``.
5. **Constant propagation** — flags guaranteed faults reachable from the
   entry: out-of-bounds ``globals``/``locals``/``info`` access at constant
   offsets, constant division by zero, constant-negative packet offsets.
6. **Unreachable code** — dead instructions are reported as warnings (the
   verdict stays ACCEPT; dead code is suspicious, not unsafe).
7. **Fuel bound** — for loop-free functions, the worst-case instruction
   count, compared against the runtime fuel limit.

Soundness contract (tested property): a program accepted by
:func:`verify` never raises a stack-underflow, stack-overflow, call-depth,
invalid-jump, or out-of-range-local :class:`~repro.filtervm.vm.VmFault`
at runtime. Dynamic faults that depend on data (packet bounds, non-constant
division) remain the runtime's job and still fail closed.

Command line::

    python -m repro.filtervm.verify monitor.plf
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.filtervm.isa import BINARY_OPS, UNARY_OPS, Instruction, Op
from repro.filtervm.program import (
    ENTRY_INIT,
    ENTRY_RECV,
    ENTRY_SEND,
    MAX_CODE_LENGTH,
    MAX_FUNCTIONS,
    MAX_GLOBALS_SIZE,
    MAX_LOCALS,
    FilterProgram,
    Function,
)
from repro.filtervm.vm import DEFAULT_FUEL, MAX_CALL_DEPTH, MAX_STACK

SEV_ERROR = "error"
SEV_WARNING = "warning"

# Entry points whose signatures the endpoint relies on: send/recv receive
# (offset, length); init receives nothing.
ENTRY_SIGNATURES = {ENTRY_SEND: 2, ENTRY_RECV: 2, ENTRY_INIT: 0}

# How many times one instruction's depth interval may be refined before we
# widen straight to the overflow bound. Balanced loops converge in two or
# three passes; only a net-growing loop keeps refining, and such a loop
# really can reach any depth.
_WIDEN_AFTER = 16

_LOAD_SIZES = {
    Op.PKTLD8: 1, Op.PKTLD16: 2, Op.PKTLD32: 4,
    Op.INFOLD8: 1, Op.INFOLD16: 2, Op.INFOLD32: 4, Op.INFOLD64: 8,
    Op.GLD8: 1, Op.GLD16: 2, Op.GLD32: 4, Op.GLD64: 8,
}
_STORE_SIZES = {Op.GST8: 1, Op.GST16: 2, Op.GST32: 4, Op.GST64: 8}
_DIV_OPS = frozenset({Op.DIVU, Op.MODU, Op.DIVS, Op.MODS})
_JUMPS = frozenset({Op.JMP, Op.JZ, Op.JNZ})


@dataclass(frozen=True)
class Finding:
    """One verifier diagnostic, anchored to a function and instruction."""

    severity: str  # SEV_ERROR | SEV_WARNING
    code: str  # short kebab-case rule name, e.g. "stack-underflow"
    message: str
    function: str = ""
    pc: Optional[int] = None  # absolute code index

    def render(self) -> str:
        where = ""
        if self.function:
            where = f" {self.function}"
            if self.pc is not None:
                where += f"+{self.pc}"
        return f"{self.severity}[{self.code}]{where}: {self.message}"


@dataclass
class VerifierReport:
    """The outcome of verifying one program."""

    findings: list[Finding] = field(default_factory=list)
    # Worst-case fuel per entry point; None = contains loops/recursion and
    # is bounded only by the runtime fuel limit.
    fuel_bounds: dict[str, Optional[int]] = field(default_factory=dict)
    n_instructions: int = 0
    n_functions: int = 0
    globals_size: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEV_ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEV_WARNING]

    @property
    def ok(self) -> bool:
        """Accepted: no errors (warnings do not block admission)."""
        return not self.errors

    def error(self, code: str, message: str, function: str = "",
              pc: Optional[int] = None) -> None:
        self.findings.append(Finding(SEV_ERROR, code, message, function, pc))

    def warn(self, code: str, message: str, function: str = "",
             pc: Optional[int] = None) -> None:
        self.findings.append(Finding(SEV_WARNING, code, message, function, pc))

    def render(self) -> str:
        """Human-readable multi-line report (what AuthFail carries)."""
        verdict = "ACCEPT" if self.ok else "REJECT"
        lines = [
            f"filter program: {self.n_functions} function(s), "
            f"{self.n_instructions} instruction(s), "
            f"{self.globals_size} B globals",
            f"verdict: {verdict} ({len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s))",
        ]
        lines.extend(f"  {finding.render()}" for finding in self.findings)
        if self.fuel_bounds:
            bounds = ", ".join(
                f"{name} <= {bound}" if bound is not None
                else f"{name}: loops (runtime fuel bound applies)"
                for name, bound in sorted(self.fuel_bounds.items())
            )
            lines.append(f"worst-case fuel: {bounds}")
        return "\n".join(lines)


@dataclass
class FunctionExtent:
    """A function's half-open slice of the flat code array."""

    function: Function
    start: int
    end: int


# ---------------------------------------------------------------------------
# Stack effects
# ---------------------------------------------------------------------------


# (pops, pushes) for every opcode except CALL, whose pops depend on the
# callee's arity. Precomputed so the abstract interpreters can look up
# effects in O(1) instead of probing a chain of opcode sets per visit.
_FIXED_EFFECTS: dict[Op, tuple[int, int]] = {
    **{op: (2, 1) for op in BINARY_OPS},
    **{op: (1, 1) for op in UNARY_OPS},
    Op.PUSH: (0, 1), Op.LDL: (0, 1), Op.PKTLEN: (0, 1),
    Op.POP: (1, 0), Op.STL: (1, 0), Op.JZ: (1, 0), Op.JNZ: (1, 0),
    Op.RET: (1, 0),
    Op.DUP: (1, 2),
    Op.SWAP: (2, 2),
    Op.JMP: (0, 0),
    **{op: (1, 1) for op in _LOAD_SIZES},
    **{op: (2, 0) for op in _STORE_SIZES},
}


def stack_effect(instruction: Instruction,
                 functions: list[Function]) -> tuple[int, int]:
    """(pops, pushes) of one instruction; CALL depends on the callee."""
    op = instruction.op
    if op == Op.CALL:
        callee = functions[instruction.operand]
        return callee.n_args, 1
    effect = _FIXED_EFFECTS.get(op)
    if effect is None:
        raise AssertionError(f"unhandled opcode {op}")  # pragma: no cover
    return effect


# ---------------------------------------------------------------------------
# Per-function control flow
# ---------------------------------------------------------------------------


class FunctionCfg:
    """Successor map + basic blocks for one function's extent.

    Successors that leave the extent (fall-through past the end, jumps
    into another function) are recorded as escapes rather than edges; the
    verifier turns reachable escapes into errors.
    """

    def __init__(self, code: list[Instruction], extent: FunctionExtent) -> None:
        self.extent = extent
        self._blocks: Optional[list[tuple[int, int]]] = None
        self._dfs_result: Optional[tuple[bool, list[int]]] = None
        self.successors: dict[int, list[int]] = {}
        # pc -> description of where control escapes to (or None for a
        # well-behaved instruction).
        self.escapes: dict[int, str] = {}
        end = extent.end
        for pc in range(extent.start, end):
            instruction = code[pc]
            op = instruction.op
            if op == Op.RET:
                self.successors[pc] = []
                continue
            if op == Op.JMP:
                targets = [instruction.operand]
            elif op == Op.JZ or op == Op.JNZ:
                targets = [instruction.operand, pc + 1]
            elif pc + 1 < end:  # plain fall-through, the common case
                self.successors[pc] = [pc + 1]
                continue
            else:
                targets = [pc + 1]
            kept = []
            for target in targets:
                if extent.start <= target < extent.end:
                    kept.append(target)
                elif target == extent.end and op not in _JUMPS:
                    self.escapes[pc] = "control falls off the end of the function"
                else:
                    self.escapes[pc] = (
                        f"jump to {target} leaves the function "
                        f"[{extent.start}, {extent.end})"
                    )
            self.successors[pc] = kept

    def reachable(self) -> set[int]:
        seen = {self.extent.start}
        stack = [self.extent.start]
        while stack:
            pc = stack.pop()
            for successor in self.successors[pc]:
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return seen

    def basic_blocks(self) -> list[tuple[int, int]]:
        """Half-open (start, end) block boundaries, in code order."""
        if self._blocks is not None:
            return self._blocks
        starts = {self.extent.start}
        for pc in range(self.extent.start, self.extent.end):
            for successor in self.successors[pc]:
                if successor != pc + 1 or len(self.successors[pc]) > 1:
                    starts.add(successor)
                    starts.add(pc + 1)
        starts.discard(self.extent.end)
        ordered = sorted(starts)
        blocks = []
        for index, start in enumerate(ordered):
            end = ordered[index + 1] if index + 1 < len(ordered) else self.extent.end
            blocks.append((start, end))
        self._blocks = blocks
        return blocks

    def dfs(self) -> tuple[bool, list[int]]:
        """One DFS from the entry: (is_acyclic, postorder of reachable pcs).

        For an acyclic CFG the postorder visits every pc after all of its
        successors, which is exactly the order longest-path propagation
        needs. Cached: both the cycle check and the fuel bound use it.
        """
        if self._dfs_result is not None:
            return self._dfs_result
        WHITE, GREY, BLACK = 0, 1, 2
        color = {pc: WHITE for pc in self.successors}
        postorder: list[int] = []
        acyclic = True
        stack: list[tuple[int, int]] = [(self.extent.start, 0)]
        color[self.extent.start] = GREY
        while stack:
            pc, index = stack[-1]
            successors = self.successors[pc]
            if index < len(successors):
                stack[-1] = (pc, index + 1)
                successor = successors[index]
                if color[successor] == GREY:
                    acyclic = False
                elif color[successor] == WHITE:
                    color[successor] = GREY
                    stack.append((successor, 0))
            else:
                color[pc] = BLACK
                postorder.append(pc)
                stack.pop()
        self._dfs_result = (acyclic, postorder)
        return self._dfs_result

    def is_acyclic(self) -> bool:
        """DFS cycle check over the successor graph."""
        return self.dfs()[0]


# ---------------------------------------------------------------------------
# The verifier
# ---------------------------------------------------------------------------


class _Verifier:
    def __init__(self, program: FilterProgram, info_size: Optional[int],
                 fuel_limit: int) -> None:
        self.program = program
        self.info_size = info_size
        self.fuel_limit = fuel_limit
        self.report = VerifierReport(
            n_instructions=len(program.code),
            n_functions=len(program.functions),
            globals_size=program.globals_size,
        )
        self.extents: list[FunctionExtent] = []
        self.cfgs: dict[str, FunctionCfg] = {}
        self.reachable: dict[str, set[int]] = {}

    # -- driver -------------------------------------------------------------

    def run(self) -> VerifierReport:
        if not self.check_structure():
            return self.report
        self.check_entry_signatures()
        self.build_extents()
        for extent in self.extents:
            self.analyze_function(extent)
        self.check_call_graph()
        self.check_unused_functions()
        self.compute_fuel_bounds()
        return self.report

    # -- 1. structure -------------------------------------------------------

    def check_structure(self) -> bool:
        """Table/range sanity; returns False when analysis cannot proceed."""
        program = self.program
        report = self.report
        ok = True
        if len(program.code) > MAX_CODE_LENGTH:
            report.error("code-too-long",
                         f"{len(program.code)} instructions exceed "
                         f"{MAX_CODE_LENGTH}")
            ok = False
        if len(program.functions) > MAX_FUNCTIONS:
            report.error("too-many-functions",
                         f"{len(program.functions)} functions exceed "
                         f"{MAX_FUNCTIONS}")
            ok = False
        if not 0 <= program.globals_size <= MAX_GLOBALS_SIZE:
            report.error("bad-globals-size",
                         f"declared globals size {program.globals_size} "
                         f"outside [0, {MAX_GLOBALS_SIZE}]")
            ok = False
        names = [function.name for function in program.functions]
        if len(set(names)) != len(names):
            report.error("duplicate-function",
                         "duplicate function names in the function table")
            ok = False
        for function in program.functions:
            if not 0 <= function.offset < len(program.code):
                report.error(
                    "bad-function-offset",
                    f"offset {function.offset} outside code of length "
                    f"{len(program.code)} (a function must have a body)",
                    function=function.name,
                )
                ok = False
            if function.n_locals > MAX_LOCALS:
                report.error("too-many-locals",
                             f"{function.n_locals} locals exceed {MAX_LOCALS}",
                             function=function.name)
            if function.n_args > function.n_locals:
                report.error("bad-signature",
                             f"{function.n_args} args exceed "
                             f"{function.n_locals} locals",
                             function=function.name)
                ok = False
        offsets = [f.offset for f in program.functions]
        if len(set(offsets)) != len(offsets):
            report.error("duplicate-offset",
                         "two functions share a code offset")
            ok = False
        for pc, instruction in enumerate(program.code):
            if instruction.op in _JUMPS:
                if not 0 <= instruction.operand < len(program.code):
                    report.error(
                        "bad-jump",
                        f"jump targets {instruction.operand}, outside code "
                        f"of length {len(program.code)}",
                        pc=pc,
                    )
                    ok = False
            elif instruction.op == Op.CALL:
                if not 0 <= instruction.operand < len(program.functions):
                    report.error(
                        "bad-call",
                        f"call references function index "
                        f"{instruction.operand} of "
                        f"{len(program.functions)}",
                        pc=pc,
                    )
                    ok = False
        if not program.functions:
            report.error("no-functions", "program defines no functions")
            ok = False
        return ok

    def check_entry_signatures(self) -> None:
        report = self.report
        found = False
        for name, n_args in ENTRY_SIGNATURES.items():
            function = self.program.function_named(name)
            if function is None:
                continue
            found = True
            if function.n_args != n_args:
                report.error(
                    "bad-entry-signature",
                    f"entry point takes {function.n_args} argument(s), "
                    f"expected {n_args}",
                    function=name,
                )
        if not found:
            report.error(
                "no-entry-point",
                "program defines none of the recognized entry points "
                f"({ENTRY_SEND}/{ENTRY_RECV}/{ENTRY_INIT})",
            )

    def build_extents(self) -> None:
        ordered = sorted(self.program.functions, key=lambda f: f.offset)
        code_len = len(self.program.code)
        for index, function in enumerate(ordered):
            end = ordered[index + 1].offset if index + 1 < len(ordered) else code_len
            self.extents.append(FunctionExtent(function, function.offset, end))
        if ordered and ordered[0].offset > 0:
            self.report.warn(
                "orphan-code",
                f"instructions 0..{ordered[0].offset - 1} precede the first "
                "function and can never execute",
                pc=0,
            )

    # -- 2..3. per-function CFG + stack discipline --------------------------

    def analyze_function(self, extent: FunctionExtent) -> None:
        function = extent.function
        cfg = FunctionCfg(self.program.code, extent)
        self.cfgs[function.name] = cfg
        reachable = cfg.reachable()
        self.reachable[function.name] = reachable

        for pc in sorted(cfg.escapes):
            if pc in reachable:
                self.report.error("control-escape", cfg.escapes[pc],
                                  function=function.name, pc=pc)
        self.check_locals(extent, reachable)
        self.report_unreachable(extent, reachable)
        if any(pc in cfg.escapes for pc in reachable):
            # Depth analysis on an escaping CFG would chase foreign code.
            return
        # Shared by both abstract interpreters: pc -> (pops, pushes).
        code = self.program.code
        functions = self.program.functions
        effects: dict[int, tuple[int, int]] = {}
        for pc in range(extent.start, extent.end):
            op = code[pc].op
            if op == Op.CALL:
                effects[pc] = (functions[code[pc].operand].n_args, 1)
            else:
                effects[pc] = _FIXED_EFFECTS[op]
        depths = self.check_stack_depths(extent, cfg, reachable, effects)
        if depths is not None:
            self.propagate_constants(extent, cfg, reachable, depths, effects)

    def check_locals(self, extent: FunctionExtent, reachable: set[int]) -> None:
        """LDL/STL operands must name an existing frame slot."""
        function = extent.function
        code = self.program.code
        for pc in range(extent.start, extent.end):
            instruction = code[pc]
            if (instruction.op == Op.LDL or instruction.op == Op.STL) \
                    and pc in reachable:
                if not 0 <= instruction.operand < function.n_locals:
                    self.report.error(
                        "bad-local",
                        f"{instruction.op.name.lower()} {instruction.operand} "
                        f"outside the {function.n_locals} frame slot(s)",
                        function=function.name, pc=pc,
                    )

    def report_unreachable(self, extent: FunctionExtent,
                           reachable: set[int]) -> None:
        """One warning per maximal run of dead instructions."""
        run_start: Optional[int] = None
        for pc in range(extent.start, extent.end + 1):
            dead = pc < extent.end and pc not in reachable
            if dead and run_start is None:
                run_start = pc
            elif not dead and run_start is not None:
                count = pc - run_start
                span = (f"instruction {run_start}" if count == 1
                        else f"instructions {run_start}..{pc - 1}")
                self.report.warn(
                    "unreachable-code",
                    f"{span} can never execute",
                    function=extent.function.name, pc=run_start,
                )
                run_start = None

    def check_stack_depths(
        self, extent: FunctionExtent, cfg: FunctionCfg, reachable: set[int],
        effects: dict[int, tuple[int, int]],
    ) -> Optional[dict[int, tuple[int, int]]]:
        """Interval analysis of operand-stack depth on entry to each pc.

        Returns the per-pc depth intervals, or None when an error makes
        further value analysis meaningless.
        """
        function = extent.function
        code = self.program.code
        successors = cfg.successors
        # The worklist runs over basic blocks, not instructions: interior
        # pcs of a block have a single fall-through successor, so their
        # intervals are propagated in a tight straight-line walk and only
        # block entries live in the merge map.
        block_end = {start: end for start, end in cfg.basic_blocks()}
        depths: dict[int, tuple[int, int]] = {extent.start: (0, 0)}
        updates: dict[int, int] = {}
        worklist = [extent.start]
        flagged: set[int] = set()
        ok = True
        while worklist:
            start = worklist.pop()
            lo, hi = depths[start]
            end = block_end[start]
            pc = start
            while pc < end:
                pops, pushes = effects[pc]
                if lo < pops and pc not in flagged:
                    flagged.add(pc)
                    ok = False
                    self.report.error(
                        "stack-underflow",
                        f"{code[pc].op.name.lower()} needs {pops} value(s) "
                        f"but the stack may hold only {lo}",
                        function=function.name, pc=pc,
                    )
                out_lo = (lo - pops if lo > pops else 0) + pushes
                out_hi = (hi - pops if hi > pops else 0) + pushes
                if out_hi > MAX_STACK and pc not in flagged:
                    flagged.add(pc)
                    ok = False
                    self.report.error(
                        "stack-overflow",
                        f"stack depth may reach {out_hi}, exceeding "
                        f"MAX_STACK={MAX_STACK}",
                        function=function.name, pc=pc,
                    )
                if code[pc].op == Op.RET and hi > 1 and lo > 1:
                    self.report.warn(
                        "stack-residue",
                        f"{lo - 1} value(s) left on the stack at return",
                        function=function.name, pc=pc,
                    )
                lo = out_lo
                hi = min(out_hi, MAX_STACK + 1)
                pc += 1
            for successor in successors[end - 1]:
                seen = depths.get(successor)
                if seen is None:
                    merged = (lo, hi)
                else:
                    merged = (min(seen[0], lo), max(seen[1], hi))
                if merged != seen:
                    count = updates.get(successor, 0) + 1
                    updates[successor] = count
                    if count > _WIDEN_AFTER:
                        merged = (0, MAX_STACK + 1)
                        if successor not in flagged:
                            flagged.add(successor)
                            ok = False
                            self.report.error(
                                "stack-overflow",
                                "loop grows the stack without bound",
                                function=function.name, pc=successor,
                            )
                    if depths.get(successor) != merged:
                        depths[successor] = merged
                        worklist.append(successor)
        return depths if ok else None

    # -- 5. constant propagation -------------------------------------------

    def propagate_constants(
        self,
        extent: FunctionExtent,
        cfg: FunctionCfg,
        reachable: set[int],
        depths: dict[int, tuple[int, int]],
        effects: dict[int, tuple[int, int]],
    ) -> None:
        """Flag guaranteed faults at constant operands.

        The abstract value lattice is Const(v) | Top (None). Stacks are
        tracked only where the depth interval is exact; a merge of
        different depths falls back to an all-Top stack of the lower
        depth, which loses precision but never misses a *guaranteed*
        fault on the precise paths.
        """
        code = self.program.code
        function = extent.function
        globals_size = self.program.globals_size
        # Like the depth analysis, the worklist runs over basic blocks:
        # interior pcs thread one mutable abstract stack straight through,
        # and only block entries are merged/stored.
        block_end = {start: end for start, end in cfg.basic_blocks()}
        states: dict[int, tuple] = {extent.start: ()}
        worklist = [extent.start]
        visits: dict[int, int] = {}
        flagged: set[int] = set()

        def fault(pc: int, code_name: str, message: str) -> None:
            if pc not in flagged:
                flagged.add(pc)
                self.report.error(code_name, message,
                                  function=function.name, pc=pc)

        while worklist:
            start = worklist.pop()
            count = visits.get(start, 0) + 1
            visits[start] = count
            if count > _WIDEN_AFTER:
                continue
            stack: list[Optional[int]] = list(states[start])
            end = block_end[start]
            pc = start
            imprecise = False
            while pc < end:
                instruction = code[pc]
                op = instruction.op
                # Fast paths for the ops that dominate real programs; the
                # generic popped/result machinery below handles the rest.
                if op == Op.PUSH:
                    stack.append(instruction.operand)
                    pc += 1
                    continue
                if op == Op.LDL or op == Op.PKTLEN:
                    stack.append(None)
                    pc += 1
                    continue
                pops, pushes = effects[pc]
                if len(stack) < pops:
                    # Depth analysis proved this cannot happen on precise
                    # paths; an imprecise (merged) state just stops here.
                    imprecise = True
                    break
                if op in BINARY_OPS:
                    rhs = stack.pop()
                    lhs = stack.pop()
                    if op in _DIV_OPS and rhs == 0:
                        fault(pc, "div-by-zero",
                              f"{op.name.lower()} divides by constant zero")
                        stack.append(None)
                    elif lhs is not None and rhs is not None:
                        stack.append(_fold_binary(op, lhs, rhs))
                    else:
                        stack.append(None)
                    pc += 1
                    continue
                # popped[0] is the top of stack (last pushed).
                if pops:
                    popped = stack[-1:-pops - 1:-1]
                    del stack[-pops:]
                else:
                    popped = []
                result: list[Optional[int]] = [None] * pushes
                if op == Op.DUP:
                    result = [popped[0], popped[0]]
                elif op == Op.SWAP:
                    result = [popped[1], popped[0]]
                elif op in _STORE_SIZES:
                    offset = popped[0]
                    size = _STORE_SIZES[op]
                    if offset is not None and not (
                        0 <= _as_signed(offset)
                        and _as_signed(offset) + size <= globals_size
                    ):
                        fault(pc, "oob-globals",
                              f"{op.name.lower()} at constant offset "
                              f"{_as_signed(offset)} outside the "
                              f"{globals_size}-byte globals")
                elif op in _LOAD_SIZES:
                    offset = popped[0]
                    size = _LOAD_SIZES[op]
                    if offset is not None:
                        signed = _as_signed(offset)
                        if op in (Op.GLD8, Op.GLD16, Op.GLD32, Op.GLD64):
                            if not 0 <= signed <= globals_size - size:
                                fault(pc, "oob-globals",
                                      f"{op.name.lower()} at constant offset "
                                      f"{signed} outside the "
                                      f"{globals_size}-byte globals")
                        elif op in (Op.INFOLD8, Op.INFOLD16, Op.INFOLD32,
                                    Op.INFOLD64):
                            if signed < 0 or (
                                self.info_size is not None
                                and signed + size > self.info_size
                            ):
                                fault(pc, "oob-info",
                                      f"{op.name.lower()} at constant offset "
                                      f"{signed} outside the info block")
                        else:  # packet loads: length is dynamic, sign is not
                            if signed < 0:
                                fault(pc, "oob-packet",
                                      f"{op.name.lower()} at constant "
                                      f"negative offset {signed}")
                elif op in UNARY_OPS and popped[0] is not None:
                    result = [_fold_unary(op, popped[0])]
                stack.extend(reversed(result))
                pc += 1
            if imprecise:
                continue
            out = tuple(stack)
            for successor in cfg.successors[end - 1]:
                seen = states.get(successor)
                if seen is None:
                    merged = out
                elif len(seen) != len(out):
                    merged = (None,) * min(len(seen), len(out))
                else:
                    merged = tuple(
                        a if a == b else None for a, b in zip(seen, out)
                    )
                if merged != seen:
                    states[successor] = merged
                    worklist.append(successor)

    # -- 4. call graph ------------------------------------------------------

    def call_edges(self) -> dict[str, set[str]]:
        cached = getattr(self, "_call_edges", None)
        if cached is not None:
            return cached
        edges: dict[str, set[str]] = {f.name: set() for f in
                                      self.program.functions}
        for extent in self.extents:
            callees = edges[extent.function.name]
            reachable = self.reachable.get(extent.function.name, set())
            for pc in range(extent.start, extent.end):
                if pc not in reachable:
                    continue
                instruction = self.program.code[pc]
                if instruction.op == Op.CALL:
                    callees.add(self.program.functions[instruction.operand].name)
        self._call_edges = edges
        return edges

    def check_call_graph(self) -> None:
        edges = self.call_edges()
        # Iterative DFS cycle detection with path tracking.
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in edges}
        self._call_cycle = False
        for root in edges:
            if color[root] != WHITE:
                continue
            stack: list[tuple[str, list[str]]] = [(root, sorted(edges[root]))]
            color[root] = GREY
            while stack:
                name, rest = stack[-1]
                if rest:
                    callee = rest.pop(0)
                    if color.get(callee, BLACK) == GREY:
                        self._call_cycle = True
                        cycle = [frame[0] for frame in stack]
                        cycle = cycle[cycle.index(callee):] + [callee]
                        self.report.error(
                            "recursion",
                            "recursive call cycle "
                            + " -> ".join(cycle)
                            + f" (the VM caps call depth at {MAX_CALL_DEPTH} "
                            "but recursion depth is input-dependent)",
                            function=callee,
                        )
                    elif color.get(callee) == WHITE:
                        color[callee] = GREY
                        stack.append((callee, sorted(edges[callee])))
                else:
                    color[name] = BLACK
                    stack.pop()
        if self._call_cycle:
            return
        # Longest chain of nested calls from each entry point (frames the
        # VM must hold at the deepest moment).
        depth_cache: dict[str, int] = {}

        def chain_depth(name: str) -> int:
            if name in depth_cache:
                return depth_cache[name]
            best = 0
            for callee in edges.get(name, ()):
                best = max(best, 1 + chain_depth(callee))
            depth_cache[name] = best
            return best

        for entry in ENTRY_SIGNATURES:
            if self.program.function_named(entry) is None:
                continue
            depth = chain_depth(entry)
            if depth > MAX_CALL_DEPTH:
                self.report.error(
                    "call-depth",
                    f"call chain of depth {depth} exceeds "
                    f"MAX_CALL_DEPTH={MAX_CALL_DEPTH}",
                    function=entry,
                )

    def check_unused_functions(self) -> None:
        edges = self.call_edges()
        live = {name for name in ENTRY_SIGNATURES
                if self.program.function_named(name) is not None}
        worklist = list(live)
        while worklist:
            name = worklist.pop()
            for callee in edges.get(name, ()):
                if callee not in live:
                    live.add(callee)
                    worklist.append(callee)
        for function in self.program.functions:
            if function.name not in live:
                self.report.warn(
                    "unused-function",
                    "never called from any entry point",
                    function=function.name,
                )

    # -- 7. fuel bound ------------------------------------------------------

    def compute_fuel_bounds(self) -> None:
        """Worst-case instruction count per entry, for loop-free programs.

        A function's bound is the longest path through its (acyclic) CFG
        where a CALL also accounts for the callee's bound. Any CFG cycle
        or call-graph cycle makes the bound None — execution is then
        bounded only by runtime fuel.
        """
        if getattr(self, "_call_cycle", False):
            for entry in ENTRY_SIGNATURES:
                if self.program.function_named(entry) is not None:
                    self.report.fuel_bounds[entry] = None
            return
        bounds: dict[str, Optional[int]] = {}

        def function_bound(name: str) -> Optional[int]:
            if name in bounds:
                return bounds[name]
            cfg = self.cfgs.get(name)
            if cfg is None:
                bounds[name] = None
                return None
            code = self.program.code
            functions = self.program.functions
            # Longest path over the *block* graph: any CFG cycle must pass
            # through a jump target (a block start), so acyclicity at the
            # block level is equivalent, and the graph is ~an order of
            # magnitude smaller than the per-pc one.
            blocks = cfg.basic_blocks()
            block_end = dict(blocks)
            bsucc = {start: cfg.successors[end - 1] for start, end in blocks}
            WHITE, GREY, BLACK = 0, 1, 2
            color = dict.fromkeys(bsucc, WHITE)
            postorder: list[int] = []
            acyclic = True
            dfs_stack: list[tuple[int, int]] = [(cfg.extent.start, 0)]
            color[cfg.extent.start] = GREY
            while dfs_stack:
                block, index = dfs_stack[-1]
                succ = bsucc[block]
                if index < len(succ):
                    dfs_stack[-1] = (block, index + 1)
                    successor = succ[index]
                    if color[successor] == GREY:
                        acyclic = False
                    elif color[successor] == WHITE:
                        color[successor] = GREY
                        dfs_stack.append((successor, 0))
                else:
                    color[block] = BLACK
                    postorder.append(block)
                    dfs_stack.pop()
            if not acyclic:
                bounds[name] = None
                return None
            memo: dict[int, Optional[int]] = {}
            for block in postorder:  # reverse topological: successors first
                # Every instruction costs one fetch; a CALL additionally
                # costs the callee's bound (its RET is inside that bound).
                cost: Optional[int] = block_end[block] - block
                for pc in range(block, block_end[block]):
                    if code[pc].op == Op.CALL:
                        callee_bound = function_bound(
                            functions[code[pc].operand].name
                        )
                        if callee_bound is None:
                            cost = None
                            break
                        cost += callee_bound
                best: Optional[int] = 0
                for successor in bsucc[block]:
                    if successor not in memo:
                        continue  # pragma: no cover - defensive
                    successor_bound = memo[successor]
                    if successor_bound is None:
                        best = None
                        break
                    if best is not None:
                        best = max(best, successor_bound)
                if cost is None or best is None:
                    memo[block] = None
                else:
                    memo[block] = cost + best
            bounds[name] = memo.get(cfg.extent.start)
            return bounds[name]

        for entry in ENTRY_SIGNATURES:
            if self.program.function_named(entry) is None:
                continue
            bound = function_bound(entry)
            self.report.fuel_bounds[entry] = bound
            if bound is not None and bound > self.fuel_limit:
                self.report.warn(
                    "fuel-bound",
                    f"worst-case cost {bound} exceeds the fuel limit "
                    f"{self.fuel_limit}; some paths would be aborted",
                    function=entry,
                )


# ---------------------------------------------------------------------------
# Constant folding helpers (mirror vm.py semantics, but pure)
# ---------------------------------------------------------------------------

_MASK64 = (1 << 64) - 1


def _as_signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value & (1 << 63) else value


def _fold_binary(op: Op, lhs: int, rhs: int) -> Optional[int]:
    """Fold a binary op over constants; None for faulting/unknown cases."""
    lhs &= _MASK64
    rhs &= _MASK64
    signed_l, signed_r = _as_signed(lhs), _as_signed(rhs)
    shift = rhs & 63
    table = {
        Op.ADD: lhs + rhs, Op.SUB: lhs - rhs, Op.MUL: lhs * rhs,
        Op.AND: lhs & rhs, Op.OR: lhs | rhs, Op.XOR: lhs ^ rhs,
        Op.SHL: lhs << shift, Op.SHRU: lhs >> shift,
        Op.SHRS: signed_l >> shift,
        Op.EQ: int(lhs == rhs), Op.NE: int(lhs != rhs),
        Op.LTU: int(lhs < rhs), Op.LEU: int(lhs <= rhs),
        Op.GTU: int(lhs > rhs), Op.GEU: int(lhs >= rhs),
        Op.LTS: int(signed_l < signed_r), Op.LES: int(signed_l <= signed_r),
        Op.GTS: int(signed_l > signed_r), Op.GES: int(signed_l >= signed_r),
    }
    if op in table:
        return table[op] & _MASK64
    if rhs == 0:
        return None  # division fault; reported separately
    if op == Op.DIVU:
        return (lhs // rhs) & _MASK64
    if op == Op.MODU:
        return (lhs % rhs) & _MASK64
    if op == Op.DIVS:
        quotient = abs(signed_l) // abs(signed_r)
        if (signed_l < 0) != (signed_r < 0):
            quotient = -quotient
        return quotient & _MASK64
    if op == Op.MODS:
        remainder = abs(signed_l) % abs(signed_r)
        if signed_l < 0:
            remainder = -remainder
        return remainder & _MASK64
    return None  # pragma: no cover


def _fold_unary(op: Op, value: int) -> int:
    value &= _MASK64
    if op == Op.BNOT:
        return ~value & _MASK64
    if op == Op.NEG:
        return -value & _MASK64
    return 0 if value else 1  # LNOT


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def verify(
    program: FilterProgram,
    *,
    info_size: Optional[int] = None,
    fuel_limit: int = DEFAULT_FUEL,
) -> VerifierReport:
    """Statically verify a filter/monitor program.

    ``info_size`` bounds constant info-block offsets when the caller knows
    the block it will expose (the endpoint passes its memory size);
    ``fuel_limit`` is only used to warn when a loop-free program's
    worst-case cost exceeds it.
    """
    return _Verifier(program, info_size, fuel_limit).run()


def verify_or_raise(program: FilterProgram, **kwargs) -> VerifierReport:
    """verify(), raising :class:`VerifyRejected` when the program fails."""
    report = verify(program, **kwargs)
    if not report.ok:
        raise VerifyRejected(report)
    return report


class VerifyRejected(Exception):
    """A program failed static verification; carries the full report."""

    def __init__(self, report: VerifierReport) -> None:
        super().__init__(report.render())
        self.report = report


def _main(argv: Optional[list[str]] = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.filtervm.verify",
        description="Statically verify a serialized filter VM program",
    )
    parser.add_argument("program",
                        help="serialized program (.plf; '-' for stdin)")
    parser.add_argument("--info-size", type=int, default=None,
                        help="bound constant info-block offsets")
    parser.add_argument("--fuel-limit", type=int, default=DEFAULT_FUEL,
                        help="runtime fuel limit to compare bounds against")
    args = parser.parse_args(argv)
    if args.program == "-":
        data = sys.stdin.buffer.read()
    else:
        try:
            with open(args.program, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.program}: {exc}",
                  file=sys.stderr)
            return 2
    from repro.util.byteio import DecodeError

    try:
        program = FilterProgram.decode(data)
    except DecodeError as exc:
        print(f"{args.program}: does not decode: {exc}", file=sys.stderr)
        return 2
    report = verify(program, info_size=args.info_size,
                    fuel_limit=args.fuel_limit)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(_main())
