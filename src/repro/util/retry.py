"""Exponential backoff with jitter, shared by every reconnect loop.

A :class:`RetryPolicy` is a pure description — it owns no RNG and no
clock, so the same policy object can drive the controller's reconnect
loop and the endpoint's supervisor without coupling their randomness.
Jitter draws come from whatever seeded ``random.Random`` the caller
passes in, keeping fault-injection runs deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule: ``base * multiplier**attempt``,
    capped at ``max_delay``, with ``±jitter`` fractional randomization.

    ``attempt`` is zero-based: ``delay_for(0)`` is the wait before the
    first retry.
    """

    max_attempts: int = 5
    base_delay: float = 0.2
    max_delay: float = 10.0
    multiplier: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay <= 0:
            raise ValueError(f"base_delay must be positive, got {self.base_delay}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay_for(self, attempt: int, rng: Random) -> float:
        """Backoff delay before retry number ``attempt`` (zero-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if self.jitter > 0:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return delay

    def delays(self, rng: Random):
        """Iterate the full schedule (``max_attempts`` delays)."""
        for attempt in range(self.max_attempts):
            yield self.delay_for(attempt, rng)
