"""IPv4 address arithmetic.

Addresses are plain ``int`` everywhere inside the simulator and packet
codecs; these helpers convert between dotted-quad strings and integers and
implement the prefix operations the routing code needs. ``ipaddress`` from
the standard library would work too, but integer addresses keep the
simulator's hot path allocation-free.
"""

from __future__ import annotations


def parse_ip(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer.

    >>> hex(parse_ip("10.0.0.1"))
    '0xa000001'
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"invalid IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255 or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"invalid IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(addr: int) -> str:
    """Format an integer IPv4 address as a dotted quad.

    >>> format_ip(0x0A000001)
    '10.0.0.1'
    """
    if not 0 <= addr <= 0xFFFFFFFF:
        raise ValueError(f"invalid IPv4 address integer: {addr}")
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix_mask(prefix_len: int) -> int:
    """Netmask for a prefix length, as an integer.

    >>> hex(prefix_mask(24))
    '0xffffff00'
    """
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"invalid prefix length: {prefix_len}")
    if prefix_len == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF


def network_of(addr: int, prefix_len: int) -> int:
    """Network address of ``addr`` under the given prefix length."""
    return addr & prefix_mask(prefix_len)


def ip_in_network(addr: int, network: int, prefix_len: int) -> bool:
    """True if ``addr`` falls inside ``network/prefix_len``."""
    return network_of(addr, prefix_len) == network_of(network, prefix_len)
