"""Shared low-level helpers: binary I/O, IPv4 address arithmetic.

These utilities are deliberately dependency-free; every other subpackage
(packet codecs, the wire protocol, the certificate encoding) builds on them.
"""

from repro.util.byteio import ByteReader, ByteWriter, DecodeError
from repro.util.inet import (
    format_ip,
    ip_in_network,
    network_of,
    parse_ip,
    prefix_mask,
)

__all__ = [
    "ByteReader",
    "ByteWriter",
    "DecodeError",
    "format_ip",
    "ip_in_network",
    "network_of",
    "parse_ip",
    "prefix_mask",
]
