"""Binary reader/writer with explicit byte order.

All PacketLab wire structures (protocol messages, certificates, packet
headers) are encoded big-endian ("network order"). ``ByteWriter`` and
``ByteReader`` provide a small, checked API over ``bytes`` so that encoders
and decoders stay symmetric and out-of-bounds reads raise ``DecodeError``
instead of ``struct.error`` or silent truncation.
"""

from __future__ import annotations

import struct


class DecodeError(Exception):
    """Raised when a binary structure cannot be decoded."""


class ByteWriter:
    """Accumulates a big-endian binary encoding."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def _append(self, chunk: bytes) -> None:
        self._chunks.append(chunk)
        self._length += len(chunk)

    def u8(self, value: int) -> "ByteWriter":
        self._check_range(value, 0xFF)
        self._append(struct.pack(">B", value))
        return self

    def u16(self, value: int) -> "ByteWriter":
        self._check_range(value, 0xFFFF)
        self._append(struct.pack(">H", value))
        return self

    def u32(self, value: int) -> "ByteWriter":
        self._check_range(value, 0xFFFFFFFF)
        self._append(struct.pack(">I", value))
        return self

    def u64(self, value: int) -> "ByteWriter":
        self._check_range(value, 0xFFFFFFFFFFFFFFFF)
        self._append(struct.pack(">Q", value))
        return self

    def i64(self, value: int) -> "ByteWriter":
        if not -(1 << 63) <= value < (1 << 63):
            raise ValueError(f"value {value} out of range for i64")
        self._append(struct.pack(">q", value))
        return self

    def f64(self, value: float) -> "ByteWriter":
        self._append(struct.pack(">d", value))
        return self

    def raw(self, data: bytes) -> "ByteWriter":
        self._append(bytes(data))
        return self

    def bytes_u16(self, data: bytes) -> "ByteWriter":
        """Length-prefixed (16-bit) byte string."""
        if len(data) > 0xFFFF:
            raise ValueError(f"byte string too long: {len(data)}")
        self.u16(len(data))
        self._append(bytes(data))
        return self

    def bytes_u32(self, data: bytes) -> "ByteWriter":
        """Length-prefixed (32-bit) byte string."""
        if len(data) > 0xFFFFFFFF:
            raise ValueError(f"byte string too long: {len(data)}")
        self.u32(len(data))
        self._append(bytes(data))
        return self

    def str_u16(self, text: str) -> "ByteWriter":
        """Length-prefixed UTF-8 string."""
        return self.bytes_u16(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    @staticmethod
    def _check_range(value: int, maximum: int) -> None:
        if not 0 <= value <= maximum:
            raise ValueError(f"value {value} out of range [0, {maximum}]")


class ByteReader:
    """Sequential reader over a ``bytes`` buffer.

    Every accessor raises :class:`DecodeError` when the buffer is exhausted,
    so decoders never need explicit bounds checks.
    """

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset

    @property
    def position(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    def _take(self, count: int) -> bytes:
        if count < 0 or self._pos + count > len(self._data):
            raise DecodeError(
                f"buffer underrun: need {count} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self._take(8))[0]

    def i64(self) -> int:
        return struct.unpack(">q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def raw(self, count: int) -> bytes:
        return self._take(count)

    def bytes_u16(self) -> bytes:
        return self._take(self.u16())

    def bytes_u32(self) -> bytes:
        return self._take(self.u32())

    def str_u16(self) -> str:
        try:
            return self.bytes_u16().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid UTF-8 string: {exc}") from exc

    def rest(self) -> bytes:
        """All remaining bytes."""
        chunk = self._data[self._pos :]
        self._pos = len(self._data)
        return chunk

    def expect_end(self) -> None:
        if not self.at_end():
            raise DecodeError(f"{self.remaining()} trailing bytes after structure")
