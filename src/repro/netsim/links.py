"""Point-to-point duplex links with bandwidth, delay, queueing, and loss.

Each direction of a link models:

- **serialization delay** — ``bytes * 8 / bandwidth_bps``, with back-to-back
  packets queueing behind each other (tracked by a per-direction
  ``busy_until`` time),
- **drop-tail queueing** — the backlog implied by ``busy_until`` is
  converted to bytes; a packet that would push the backlog past
  ``queue_bytes`` is dropped,
- **propagation delay** — a constant added after serialization completes,
- **random loss** — an independent Bernoulli drop with a seeded RNG, applied
  to packets that survived the queue.

This fluid-backlog model is deterministic and cheap while still producing
the phenomena the paper's experiments depend on: bandwidth-limited bursts,
queueing delay under load, and contention between control and measurement
traffic sharing an access link.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from collections import deque

from repro.netsim.kernel import Simulator, Timer
from repro.packet.ipv4 import IPv4Packet

if TYPE_CHECKING:
    from repro.netsim.faults import DirectionFaults
    from repro.netsim.node import Interface

# Fixed per-packet link-layer overhead (approximates an Ethernet header).
LINK_OVERHEAD_BYTES = 14

LinkObserver = Callable[[float, "LinkDirection", IPv4Packet, str], None]

# Outcome string -> obs counter suffix (see repro.obs naming convention).
_OUTCOME_METRIC = {
    "sent": "tx",
    "delivered": "delivered",
    "drop-queue": "dropped_queue",
    "drop-loss": "dropped_loss",
    "drop-fault": "dropped_fault",
}


@dataclass
class LinkStats:
    """Per-direction counters."""

    packets_sent: int = 0
    bytes_sent: int = 0
    packets_dropped_queue: int = 0
    packets_dropped_loss: int = 0
    packets_dropped_fault: int = 0


class LinkDirection:
    """One direction of a duplex link."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float,
        delay: float,
        queue_bytes: int,
        loss_rate: float,
        rng: Random,
        jitter: float = 0.0,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self._sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.jitter = jitter
        self.queue_bytes = queue_bytes
        self.loss_rate = loss_rate
        self._rng = rng
        self._busy_until = 0.0
        # In-flight packets awaiting delivery, ordered by arrival time.
        # One armed timer covers the head of the queue; a timer firing
        # drains every due arrival in a batch, so a bulk transfer costs
        # one scheduler entry per wave instead of one per packet.
        self._pending: deque[tuple[float, IPv4Packet]] = deque()
        self._timer: Optional[Timer] = None
        self._delivering = False
        self.dst_iface: Optional["Interface"] = None
        self.stats = LinkStats()
        self._observers: list[LinkObserver] = []
        self._obs = sim.obs
        # Armed by repro.netsim.faults.FaultPlan; None keeps the hot
        # transmit path at one attribute load + branch.
        self.faults: Optional["DirectionFaults"] = None

    def add_observer(self, observer: LinkObserver) -> LinkObserver:
        """Register a ground-truth observer for this direction.

        The only sanctioned way to watch a direction (PacketTrace and the
        obs layer both come through here); the observer list itself is
        private.
        """
        self._observers.append(observer)
        return observer

    def remove_observer(self, observer: LinkObserver) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    @property
    def observed(self) -> bool:
        return bool(self._observers)

    def _notify(self, packet: IPv4Packet, outcome: str) -> None:
        # Slow path — entered only when observed or telemetry is enabled.
        for observer in self._observers:
            observer(self._sim.now, self, packet, outcome)
        obs = self._obs
        if obs.enabled:
            obs.counter(f"links.{_OUTCOME_METRIC[outcome]}", link=self.name).inc()
            if outcome == "sent":
                obs.counter("links.bytes_sent", link=self.name).inc(
                    packet.total_length + LINK_OVERHEAD_BYTES
                )
            elif outcome in ("drop-queue", "drop-loss"):
                obs.emit(
                    "links", "drop", link=self.name, reason=outcome,
                    proto=packet.proto, src=packet.src, dst=packet.dst,
                    size=packet.total_length,
                )

    def backlog_bytes(self) -> float:
        """Bytes currently queued for serialization (fluid approximation)."""
        backlog_time = max(0.0, self._busy_until - self._sim.now)
        return backlog_time * self.bandwidth_bps / 8.0

    def queueing_delay(self) -> float:
        """Time a packet arriving now would wait before serialization."""
        return max(0.0, self._busy_until - self._sim.now)

    def transmit(self, packet: IPv4Packet) -> bool:
        """Attempt to transmit; returns False if dropped at the queue."""
        if self.dst_iface is None:
            raise RuntimeError(f"link direction {self.name} not attached")
        size = packet.total_length + LINK_OVERHEAD_BYTES
        watched = self._observers or self._obs.enabled
        faults = self.faults
        if faults is not None and faults.down > 0:
            # Link outage window: the frame never reaches the wire.
            self.stats.packets_dropped_fault += 1
            faults.plan.note_packet_fault("packet-outage-drop", self, packet)
            if watched:
                self._notify(packet, "drop-fault")
            return False
        if self.backlog_bytes() + size > self.queue_bytes:
            self.stats.packets_dropped_queue += 1
            if watched:
                self._notify(packet, "drop-queue")
            return False
        now = self._sim.now
        tx_start = max(now, self._busy_until)
        tx_time = size * 8.0 / self.bandwidth_bps
        self._busy_until = tx_start + tx_time
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.stats.packets_dropped_loss += 1
            if watched:
                self._notify(packet, "drop-loss")
            return True  # consumed link time, but lost in flight
        if (
            faults is not None
            and faults.corrupt_prob > 0
            and faults.rng.random() < faults.corrupt_prob
        ):
            # Corruption: the frame occupies the link, then fails its
            # checksum at the receiver — consume link time and discard.
            self.stats.packets_dropped_fault += 1
            faults.plan.note_packet_fault("packet-corrupted", self, packet)
            if watched:
                self._notify(packet, "drop-fault")
            return True
        arrival = self._busy_until + self.delay
        if self.jitter > 0:
            # Uniform per-packet jitter; may reorder packets (realistic).
            arrival += self._rng.uniform(0.0, self.jitter)
        if faults is not None:
            if (
                faults.reorder_prob > 0
                and faults.rng.random() < faults.reorder_prob
            ):
                # Hold this packet back so later ones overtake it.
                arrival += faults.reorder_delay
                faults.plan.note_packet_fault("packet-reordered", self, packet)
            if (
                faults.duplicate_prob > 0
                and faults.rng.random() < faults.duplicate_prob
            ):
                # A back-to-back second copy of the frame.
                faults.plan.note_packet_fault("packet-duplicated", self, packet)
                self._enqueue_delivery(arrival + tx_time, packet)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += size
        if watched:
            self._notify(packet, "sent")
        self._enqueue_delivery(arrival, packet)
        return True

    def _enqueue_delivery(self, arrival: float, packet: IPv4Packet) -> None:
        """Queue a packet for arrival, keeping the queue arrival-sorted.

        Arrivals are monotonic on the common path (``busy_until`` only
        advances), so this is an O(1) append; jitter and fault reordering
        occasionally require a short linear insert from the tail.
        """
        pending = self._pending
        if pending and arrival < pending[-1][0]:
            index = len(pending) - 1
            while index > 0 and pending[index - 1][0] > arrival:
                index -= 1
            pending.insert(index, (arrival, packet))
        else:
            pending.append((arrival, packet))
        if not self._delivering:
            head = pending[0][0]
            timer = self._timer
            if timer is None or timer.cancelled:
                self._timer = self._sim.schedule_at(head, self._deliver_due)
            elif head < timer.time:
                # New head arrives before the armed timer: re-arm earlier.
                timer.cancel()
                self._timer = self._sim.schedule_at(head, self._deliver_due)

    def _deliver_due(self) -> None:
        """Deliver every packet whose arrival time has been reached."""
        assert self.dst_iface is not None
        pending = self._pending
        now = self._sim.now
        deliver = self.dst_iface.deliver
        # Reentrancy guard: a delivery can synchronously forward onto this
        # same direction; new arrivals are strictly in the future (positive
        # serialization time), so they wait for the re-arm below.
        self._delivering = True
        try:
            while pending and pending[0][0] <= now:
                packet = pending.popleft()[1]
                if self._observers or self._obs.enabled:
                    self._notify(packet, "delivered")
                deliver(packet)
        finally:
            self._delivering = False
        if pending:
            self._timer = self._sim.schedule_at(pending[0][0], self._deliver_due)
        else:
            self._timer = None


class Link:
    """A duplex point-to-point link between two interfaces."""

    def __init__(
        self,
        sim: Simulator,
        iface_a: "Interface",
        iface_b: "Interface",
        bandwidth_bps: float = 100e6,
        delay: float = 0.001,
        queue_bytes: int = 256 * 1024,
        loss_rate: float = 0.0,
        seed: int = 0,
        bandwidth_up_bps: Optional[float] = None,
        delay_up: Optional[float] = None,
        jitter: float = 0.0,
    ) -> None:
        """Connect two interfaces.

        The a->b direction uses ``bandwidth_bps``/``delay``; the b->a
        direction uses ``bandwidth_up_bps``/``delay_up`` when given
        (asymmetric access links), else the same values.
        """
        name = f"{iface_a.full_name}<->{iface_b.full_name}"
        rng = Random(seed)
        self.forward = LinkDirection(
            sim, f"{name}:fwd", bandwidth_bps, delay, queue_bytes, loss_rate,
            rng, jitter=jitter,
        )
        self.reverse = LinkDirection(
            sim,
            f"{name}:rev",
            bandwidth_up_bps if bandwidth_up_bps is not None else bandwidth_bps,
            delay_up if delay_up is not None else delay,
            queue_bytes,
            loss_rate,
            rng,
            jitter=jitter,
        )
        self.forward.dst_iface = iface_b
        self.reverse.dst_iface = iface_a
        iface_a.attach(self.forward)
        iface_b.attach(self.reverse)
        self.name = name

    def add_observer(self, observer: LinkObserver) -> None:
        self.forward.add_observer(observer)
        self.reverse.add_observer(observer)

    def remove_observer(self, observer: LinkObserver) -> None:
        self.forward.remove_observer(observer)
        self.reverse.remove_observer(observer)
