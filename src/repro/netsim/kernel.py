"""Deterministic discrete-event simulation kernel.

The simulator drives everything in this repository: links, protocol stacks,
endpoints, controllers, and rendezvous servers are all simulated processes
exchanging events in virtual time.

Design:

- Virtual time is a ``float`` number of seconds. Events scheduled for the
  same instant run in scheduling order (a monotonically increasing sequence
  number breaks ties), which makes every run bit-for-bit reproducible.
- The pending-event set lives in a pluggable :class:`EventScheduler`. Two
  implementations ship: the classic binary heap (:class:`HeapScheduler`,
  the default) and a calendar queue (:class:`CalendarScheduler`) whose
  push/pop cost stays flat as the pending set grows to fleet scale. Both
  drain events in exactly the same ``(time, seq)`` total order, so a
  same-seed run is byte-identical regardless of the scheduler — the
  differential determinism suite asserts this.
- Cancelled timers are purged lazily: each scheduler counts cancellations
  and compacts its storage once more than half of the stored entries are
  dead, so tight create/cancel loops (RPC timeouts, retry backoff,
  ``any_of`` losers) cannot bloat the pending set.
- Concurrency uses plain Python generators (SimPy style). A process is a
  generator that ``yield``s what it wants to wait for:

  * a number — sleep that many seconds of virtual time,
  * an :class:`Event` — resume when the event fires (receiving its value),
  * a :class:`Process` — resume when that process finishes (receiving its
    return value, or re-raising its exception),
  * ``None`` — yield the scheduler for one tick (resume at the same time).

- A process finishes by returning; its return value becomes the result seen
  by joiners. An uncaught exception inside a process is delivered to its
  joiners, or — if nothing ever joins it — re-raised out of
  :meth:`Simulator.run` so that failures never pass silently.
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional, Union

from repro.obs import Observability

ProcessGen = Generator[Any, Any, Any]

# Compact when more than half the stored entries are cancelled, but never
# bother below this floor (tiny pending sets are cheap to carry).
_PURGE_MIN = 64


class SimError(Exception):
    """Raised for misuse of the simulation kernel."""


class Timer:
    """Handle for a scheduled callback; may be cancelled before it fires."""

    __slots__ = ("time", "_callback", "_args", "cancelled", "_sched")

    def __init__(self, time: float, callback: Callable[..., None], args: tuple):
        self.time = time
        self._callback = callback
        self._args = args
        self.cancelled = False
        # The scheduler currently storing this timer; used for lazy-purge
        # accounting and cleared when the timer is popped or dropped.
        self._sched: Optional["EventScheduler"] = None

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            sched = self._sched
            if sched is not None:
                sched._note_cancel()

    def _fire(self) -> None:
        if not self.cancelled:
            self._callback(*self._args)


# A scheduler entry. The tuple shape keeps comparisons in C: ``seq`` is
# unique, so ordering never reaches the (incomparable) Timer.
Entry = "tuple[float, int, Timer]"


class EventScheduler:
    """Ordered storage for pending timers: the kernel's hot data structure.

    The contract every implementation must honor:

    - :meth:`push` stores an entry; :meth:`pop` returns the live entry with
      the smallest ``(time, seq)`` (skipping and discarding cancelled
      timers), or ``None`` when drained.
    - ``len(sched)`` is the number of *live* (non-cancelled) entries.
    - ``(time, seq)`` pop order is a strict total order identical across
      implementations — this is what keeps same-seed runs byte-identical
      under any scheduler.
    - ``_note_cancel`` is called by :meth:`Timer.cancel` while the timer is
      stored; implementations use it to trigger lazy compaction.
    """

    name = "abstract"

    def push(self, time: float, seq: int, timer: Timer) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[tuple]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def _note_cancel(self) -> None:
        raise NotImplementedError


class HeapScheduler(EventScheduler):
    """The classic binary-heap scheduler (seed behavior) with lazy purge."""

    name = "heap"

    __slots__ = ("_heap", "_cancelled")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Timer]] = []
        self._cancelled = 0

    def push(self, time: float, seq: int, timer: Timer) -> None:
        timer._sched = self
        heapq.heappush(self._heap, (time, seq, timer))

    def pop(self) -> Optional[tuple]:
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            timer = entry[2]
            timer._sched = None
            if timer.cancelled:
                self._cancelled -= 1
                continue
            return entry
        return None

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if self._cancelled > _PURGE_MIN and self._cancelled * 2 > len(self._heap):
            self._purge()

    def _purge(self) -> None:
        live = []
        for entry in self._heap:
            if entry[2].cancelled:
                entry[2]._sched = None
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap = live
        self._cancelled = 0


class CalendarScheduler(EventScheduler):
    """A calendar-queue (bucketed) scheduler with O(1) amortized push/pop.

    Entries hash into ``nbuckets`` circular buckets by epoch number
    ``int(time * 1/width)``; the queue maintains a sorted *ready* run for
    the current epoch and advances epoch by epoch, sorting one bucket's
    due entries at a time. An empty full cycle jumps straight to the
    earliest epoch, so sparse regions cost one scan instead of a spin.

    The bucket width auto-tunes from an EWMA of observed inter-event gaps
    at each growth rebuild; pass ``bucket_width`` to pin it. Pop order is
    strictly ``(time, seq)`` — identical to :class:`HeapScheduler`.
    """

    name = "calendar"

    MIN_BUCKETS = 256

    __slots__ = (
        "_buckets", "_nbuck", "_width", "_inv_width", "_fixed_width",
        "_epoch", "_ready", "_ri", "_count", "_cancelled",
        "_last_pop_time", "_gap_ewma",
    )

    def __init__(self, bucket_width: Optional[float] = None,
                 bucket_count: int = MIN_BUCKETS) -> None:
        if bucket_width is not None and bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self._fixed_width = bucket_width is not None
        self._width = float(bucket_width) if bucket_width else 1e-3
        self._inv_width = 1.0 / self._width
        self._nbuck = max(4, bucket_count)
        self._buckets: list[list] = [[] for _ in range(self._nbuck)]
        self._epoch = 0  # entries with epoch key <= _epoch live in _ready
        self._ready: list = []  # ascending (time, seq, timer)
        self._ri = 0  # consumed prefix of _ready
        self._count = 0  # stored entries, live + cancelled
        self._cancelled = 0
        self._last_pop_time = 0.0
        self._gap_ewma = self._width

    def push(self, time: float, seq: int, timer: Timer) -> None:
        timer._sched = self
        entry = (time, seq, timer)
        # The epoch key must be computed with the exact same float
        # expression everywhere, or boundary rounding could misfile an
        # entry and break the (time, seq) total order.
        if int(time * self._inv_width) <= self._epoch:
            # Belongs to the already-open window: merge into the ready run.
            # Insert at or after the consumed prefix, never before it —
            # anything behind `_ri` is invisible to the drain cursor.
            insort(self._ready, entry, lo=self._ri)
        else:
            self._buckets[int(time * self._inv_width) % self._nbuck].append(entry)
        self._count += 1
        if self._count > 8 * self._nbuck:
            self._rebuild(self._nbuck * 2)

    def pop(self) -> Optional[tuple]:
        while self._count:
            ready = self._ready
            ri = self._ri
            if ri < len(ready):
                entry = ready[ri]
                self._ri = ri + 1
                self._count -= 1
                timer = entry[2]
                timer._sched = None
                if timer.cancelled:
                    self._cancelled -= 1
                    continue
                time = entry[0]
                gap = time - self._last_pop_time
                if gap > 0.0:
                    self._gap_ewma += 0.05 * (gap - self._gap_ewma)
                    self._last_pop_time = time
                return entry
            self._advance()
        return None

    def __len__(self) -> int:
        return self._count - self._cancelled

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if self._cancelled > _PURGE_MIN and self._cancelled * 2 > self._count:
            self._rebuild(self._nbuck)

    # -- internals --------------------------------------------------------

    def _advance(self) -> None:
        """Open the next non-empty epoch window into the ready run."""
        if self._ri:
            del self._ready[: self._ri]
            self._ri = 0
        nbuck = self._nbuck
        buckets = self._buckets
        inv = self._inv_width
        epoch = self._epoch
        for _ in range(nbuck):
            epoch += 1
            bucket = buckets[epoch % nbuck]
            if bucket:
                take = [e for e in bucket if int(e[0] * inv) <= epoch]
                if take:
                    if len(take) == len(bucket):
                        bucket.clear()
                    else:
                        buckets[epoch % nbuck] = [
                            e for e in bucket if int(e[0] * inv) > epoch
                        ]
                    take.sort()
                    self._ready = take
                    self._ri = 0
                    self._epoch = epoch
                    return
        # A full cycle found nothing due: jump straight to the earliest
        # epoch present (sparse region / long idle gap).
        best = None
        for bucket in buckets:
            for e in bucket:
                key = int(e[0] * inv)
                if best is None or key < best:
                    best = key
        assert best is not None  # _count > 0 guarantees entries exist
        bucket = buckets[best % nbuck]
        take = [e for e in bucket if int(e[0] * inv) <= best]
        keep = [e for e in bucket if int(e[0] * inv) > best]
        buckets[best % nbuck] = keep
        take.sort()
        self._ready = take
        self._ri = 0
        self._epoch = best

    def _rebuild(self, nbuck: int) -> None:
        """Re-bucket everything: grow, retune width, and drop cancelled."""
        live = []
        for e in self._ready[self._ri:]:
            if e[2].cancelled:
                e[2]._sched = None
            else:
                live.append(e)
        for bucket in self._buckets:
            for e in bucket:
                if e[2].cancelled:
                    e[2]._sched = None
                else:
                    live.append(e)
        if not self._fixed_width:
            # Aim for a handful of events per bucket-window at the
            # observed drain rate; clamp against degenerate gaps.
            width = min(max(4.0 * self._gap_ewma, 1e-9), 3600.0)
            self._width = width
            self._inv_width = 1.0 / width
        self._nbuck = max(4, nbuck)
        self._buckets = [[] for _ in range(self._nbuck)]
        self._count = len(live)
        self._cancelled = 0
        inv = self._inv_width
        # Re-anchor the epoch at the drain point: everything still stored
        # is at or after the last popped time.
        self._epoch = epoch = int(self._last_pop_time * inv)
        ready = []
        for entry in live:
            if int(entry[0] * inv) <= epoch:
                ready.append(entry)
            else:
                self._buckets[int(entry[0] * inv) % self._nbuck].append(entry)
        ready.sort()
        self._ready = ready
        self._ri = 0


_SCHEDULERS = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}


def make_scheduler(
    scheduler: Union[None, str, EventScheduler] = None,
) -> EventScheduler:
    """Resolve the ``Simulator(scheduler=...)`` argument."""
    if scheduler is None:
        return HeapScheduler()
    if isinstance(scheduler, str):
        try:
            return _SCHEDULERS[scheduler]()
        except KeyError:
            raise SimError(
                f"unknown scheduler {scheduler!r} "
                f"(available: {sorted(_SCHEDULERS)})"
            ) from None
    if isinstance(scheduler, EventScheduler):
        return scheduler
    raise SimError(f"scheduler must be a name or EventScheduler, got {scheduler!r}")


class Event:
    """One-shot broadcast event carrying an optional value.

    Processes wait on an event by yielding it. Firing resumes every waiter
    (at the current virtual time) with the fired value; waiters arriving
    after the fire resume immediately.
    """

    __slots__ = ("_sim", "_fired", "_value", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._fired = False
        self._value: Any = None
        self._waiters: list[Process] = []
        self.name = name

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def fire(self, value: Any = None) -> None:
        if self._fired:
            raise SimError(f"event {self.name or id(self)} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        if waiters:
            sim = self._sim
            if len(waiters) == 1:
                sim._resume_soon(waiters[0], value)
            else:
                # One timer resumes the whole cohort in waiter order —
                # same relative order as per-waiter timers (they would
                # have held consecutive sequence numbers), minus the
                # per-waiter Timer and scheduler traffic.
                sim._resume_batch(waiters, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._fired:
            self._sim._resume_soon(proc, self._value)
        else:
            self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Queue:
    """Unbounded FIFO queue with blocking ``get`` for simulated processes.

    ``put`` never blocks. ``get`` returns an :class:`Event` to yield on; if
    an item is already available the event is pre-fired, so ``item = yield
    queue.get()`` works uniformly.
    """

    __slots__ = ("_sim", "_items", "_getters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.name = name

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().fire(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self._sim, name=f"queue-get:{self.name}")
        if self._items:
            event.fire(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def peek_all(self) -> list[Any]:
        return list(self._items)


class Process:
    """A running simulated process wrapping a generator."""

    __slots__ = (
        "_sim",
        "_gen",
        "name",
        "alive",
        "result",
        "error",
        "_completion",
        "_waiting_on",
        "_joined",
    )

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        self._sim = sim
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._completion = Event(sim, name=f"completion:{self.name}")
        self._waiting_on: Any = None
        self._joined = False

    @property
    def completion(self) -> Event:
        """Event fired (with the result) when the process finishes."""
        return self._completion

    def kill(self) -> None:
        """Terminate the process without running it further."""
        if not self.alive:
            return
        self.alive = False
        if isinstance(self._waiting_on, Event):
            self._waiting_on._remove_waiter(self)
        elif isinstance(self._waiting_on, Timer):
            self._waiting_on.cancel()
        self._waiting_on = None
        self._gen.close()
        if not self._completion.fired:
            self._joined = True  # killed on purpose; never re-raise at run()
            self._completion.fire(None)

    def _add_waiter(self, proc: "Process") -> None:
        """Support ``yield process`` (join)."""
        self._joined = True
        self._completion._add_waiter(proc)

    def _step(self, send_value: Any = None, throw: Optional[BaseException] = None) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(send_value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self._completion.fire(_Result(stop.value, None))
            return
        except BaseException as exc:  # noqa: BLE001 - delivered to joiners
            self.alive = False
            self.error = exc
            sim = self._sim
            if sim.obs.enabled:
                sim.obs.counter("kernel.process_failures").inc()
            if not self._joined:
                sim._record_orphan_error(self, exc)
            self._completion.fire(_Result(None, exc))
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        sim = self._sim
        if target is None:
            sim._resume_soon(self, None)
        elif isinstance(target, (int, float)):
            if target < 0:
                raise SimError(f"process {self.name} yielded negative delay {target}")
            self._waiting_on = sim.schedule(target, self._step, None)
        elif isinstance(target, Event):
            self._waiting_on = target
            target._add_waiter(self)
        elif isinstance(target, Process):
            self._waiting_on = target._completion
            target._add_waiter(self)
        else:
            raise SimError(
                f"process {self.name} yielded unsupported object {target!r}"
            )


class _Result:
    """Internal wrapper distinguishing results from exceptions at resume."""

    __slots__ = ("value", "error")

    def __init__(self, value: Any, error: Optional[BaseException]):
        self.value = value
        self.error = error


class Simulator:
    """The discrete-event scheduler."""

    def __init__(
        self,
        obs: Optional[Observability] = None,
        scheduler: Union[None, str, EventScheduler] = None,
    ) -> None:
        self._now = 0.0
        self._sched = make_scheduler(scheduler)
        self._seq = 0
        self._orphan_errors: list[tuple[Process, BaseException]] = []
        self._running = False
        self._halt = False
        # Per-simulator observability hub; disabled unless a caller opts in.
        self.obs = obs if obs is not None else Observability()
        self.obs.bind_clock(lambda: self._now)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def scheduler(self) -> EventScheduler:
        return self._sched

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimError(f"cannot schedule at {time} < now {self._now}")
        timer = Timer(time, callback, args)
        self._seq += 1
        self._sched.push(time, self._seq, timer)
        return timer

    def _resume_soon(self, proc: Process, value: Any) -> None:
        if isinstance(value, _Result):
            if value.error is not None:
                self.schedule(0.0, proc._step, None, value.error)
            else:
                self.schedule(0.0, proc._step, value.value)
        else:
            self.schedule(0.0, proc._step, value)

    def _resume_batch(self, procs: list[Process], value: Any) -> None:
        """Resume a cohort of waiters with one scheduler entry."""
        self.schedule(0.0, self._step_batch, procs, value)

    def _step_batch(self, procs: list[Process], value: Any) -> None:
        if isinstance(value, _Result):
            if value.error is not None:
                error = value.error
                for proc in procs:
                    proc._step(None, error)
                return
            value = value.value
        for proc in procs:
            proc._step(value)

    # -- processes --------------------------------------------------------

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process from a generator; it runs from the next tick."""
        proc = Process(self, gen, name=name)
        self.schedule(0.0, proc._step, None)
        if self.obs.enabled:
            self.obs.counter("kernel.processes_spawned").inc()
        return proc

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def queue(self, name: str = "") -> Queue:
        return Queue(self, name=name)

    def _record_orphan_error(self, proc: Process, exc: BaseException) -> None:
        self._orphan_errors.append((proc, exc))
        if self.obs.enabled:
            self.obs.emit(
                "kernel", "process-failed", process=proc.name,
                error=type(exc).__name__,
            )

    # -- execution --------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Run queued events until the scheduler drains or ``until`` is
        reached.

        Raises the first exception that escaped a process nobody joined.
        """
        if self._running:
            raise SimError("re-entrant Simulator.run")
        self._running = True
        # Hot loop: the scheduler's pop already filters cancelled timers,
        # the callback is invoked without the _fire indirection, and the
        # orphan check only runs when an error is actually pending.
        # Telemetry accumulates in locals and is flushed once per run()
        # call, so a disabled run pays nothing beyond the `enabled` read.
        sched = self._sched
        pop = sched.pop
        orphans = self._orphan_errors
        enabled = self.obs.enabled
        events = 0
        max_depth = 0
        try:
            while True:
                entry = pop()
                if entry is None:
                    break
                time = entry[0]
                if until is not None and time > until:
                    sched.push(time, entry[1], entry[2])
                    break
                self._now = time
                timer = entry[2]
                timer._callback(*timer._args)
                if orphans:
                    self._check_orphans()
                events += 1
                if enabled:
                    depth = len(sched)
                    if depth > max_depth:
                        max_depth = depth
                if self._halt:
                    # halt() leaves queued events in place (the clock is
                    # NOT advanced to `until`); a later run() resumes.
                    break
                if events >= max_events:
                    raise SimError(f"event budget exhausted ({max_events} events)")
            if until is not None and self._now < until and not self._halt:
                self._now = until
        finally:
            self._running = False
            self._halt = False
            if enabled:
                obs = self.obs
                obs.counter("kernel.run_calls").inc()
                if events:
                    obs.counter("kernel.events").inc(events)
                obs.gauge("kernel.heap_depth_max").set_max(max_depth)

    def halt(self) -> None:
        """Make the in-flight :meth:`run` return after the current event.

        Unlike reaching ``until``, a halt neither drains nor fast-forwards:
        pending events stay queued at their times and ``now`` stays put,
        so a later ``run()`` continues seamlessly.
        """
        self._halt = True

    def _halt_when_fired(self, completion: Event) -> ProcessGen:
        try:
            yield completion
        except GeneratorExit:
            raise
        except BaseException:  # noqa: BLE001 - the orphan path reports it
            pass
        self.halt()

    def run_process(self, gen: ProcessGen, name: str = "",
                    timeout: Optional[float] = None,
                    halt_on_completion: bool = False) -> Any:
        """Spawn ``gen``, run until it completes, and return its result.

        Convenience used heavily by tests and examples. By default the
        run keeps draining events after the process finishes (work the
        process pre-scheduled — future ``nsend`` deliveries, in-flight
        packets — still lands). With ``halt_on_completion`` the run
        stops at the process's last event instead, so perpetual
        background processes (heartbeat publishers, reconnect
        supervisors) do not force the simulation to grind on to
        ``timeout`` after the work is done.
        """
        proc = self.spawn(gen, name=name)
        deadline = None if timeout is None else self._now + timeout
        if halt_on_completion:
            self.spawn(self._halt_when_fired(proc.completion),
                       name=f"halt-on:{proc.name}")
        self.run(until=deadline)
        if proc.error is not None:
            raise proc.error
        if proc.alive:
            raise SimError(f"process {proc.name} did not finish (timeout={timeout})")
        return proc.result

    def _check_orphans(self) -> None:
        if self._orphan_errors:
            proc, exc = self._orphan_errors[0]
            self._orphan_errors.clear()
            raise SimError(f"process {proc.name!r} failed: {exc!r}") from exc


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that fires (with a list of values) when all ``events`` have."""
    events = list(events)
    combined = sim.event(name="all_of")
    pending = len(events)
    values: list[Any] = [None] * len(events)
    if pending == 0:
        combined.fire([])
        return combined

    def waiter(index: int, event: Event) -> ProcessGen:
        value = yield event
        nonlocal pending
        values[index] = value
        pending -= 1
        if pending == 0:
            combined.fire(values)

    for index, event in enumerate(events):
        sim.spawn(waiter(index, event), name=f"all_of[{index}]")
    return combined


def any_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that fires with ``(index, value)`` of the first to fire.

    The losing waiters are killed when a winner fires, detaching them
    from their events — long-lived events (timeouts that never trip,
    queues that never drain) do not accumulate dead waiters.
    """
    events = list(events)
    combined = sim.event(name="any_of")
    procs: list[Process] = []

    def waiter(index: int, event: Event) -> ProcessGen:
        value = yield event
        if not combined.fired:
            combined.fire((index, value))
            for other_index, proc in enumerate(procs):
                if other_index != index and proc.alive:
                    proc.kill()

    for index, event in enumerate(events):
        procs.append(sim.spawn(waiter(index, event), name=f"any_of[{index}]"))
    return combined
