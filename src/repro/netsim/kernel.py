"""Deterministic discrete-event simulation kernel.

The simulator drives everything in this repository: links, protocol stacks,
endpoints, controllers, and rendezvous servers are all simulated processes
exchanging events in virtual time.

Design:

- Virtual time is a ``float`` number of seconds. Events scheduled for the
  same instant run in scheduling order (a monotonically increasing sequence
  number breaks ties), which makes every run bit-for-bit reproducible.
- Concurrency uses plain Python generators (SimPy style). A process is a
  generator that ``yield``s what it wants to wait for:

  * a number — sleep that many seconds of virtual time,
  * an :class:`Event` — resume when the event fires (receiving its value),
  * a :class:`Process` — resume when that process finishes (receiving its
    return value, or re-raising its exception),
  * ``None`` — yield the scheduler for one tick (resume at the same time).

- A process finishes by returning; its return value becomes the result seen
  by joiners. An uncaught exception inside a process is delivered to its
  joiners, or — if nothing ever joins it — re-raised out of
  :meth:`Simulator.run` so that failures never pass silently.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs import Observability

ProcessGen = Generator[Any, Any, Any]


class SimError(Exception):
    """Raised for misuse of the simulation kernel."""


class Timer:
    """Handle for a scheduled callback; may be cancelled before it fires."""

    __slots__ = ("time", "_callback", "_args", "cancelled")

    def __init__(self, time: float, callback: Callable[..., None], args: tuple):
        self.time = time
        self._callback = callback
        self._args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def _fire(self) -> None:
        if not self.cancelled:
            self._callback(*self._args)


class Event:
    """One-shot broadcast event carrying an optional value.

    Processes wait on an event by yielding it. Firing resumes every waiter
    (at the current virtual time) with the fired value; waiters arriving
    after the fire resume immediately.
    """

    __slots__ = ("_sim", "_fired", "_value", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._fired = False
        self._value: Any = None
        self._waiters: list[Process] = []
        self.name = name

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def fire(self, value: Any = None) -> None:
        if self._fired:
            raise SimError(f"event {self.name or id(self)} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim._resume_soon(proc, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._fired:
            self._sim._resume_soon(proc, self._value)
        else:
            self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Queue:
    """Unbounded FIFO queue with blocking ``get`` for simulated processes.

    ``put`` never blocks. ``get`` returns an :class:`Event` to yield on; if
    an item is already available the event is pre-fired, so ``item = yield
    queue.get()`` works uniformly.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._items: list[Any] = []
        self._getters: list[Event] = []
        self.name = name

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.pop(0)
            getter.fire(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self._sim, name=f"queue-get:{self.name}")
        if self._items:
            event.fire(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if self._items:
            return self._items.pop(0)
        return None

    def peek_all(self) -> list[Any]:
        return list(self._items)


class Process:
    """A running simulated process wrapping a generator."""

    __slots__ = (
        "_sim",
        "_gen",
        "name",
        "alive",
        "result",
        "error",
        "_completion",
        "_waiting_on",
        "_joined",
    )

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        self._sim = sim
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._completion = Event(sim, name=f"completion:{self.name}")
        self._waiting_on: Any = None
        self._joined = False

    @property
    def completion(self) -> Event:
        """Event fired (with the result) when the process finishes."""
        return self._completion

    def kill(self) -> None:
        """Terminate the process without running it further."""
        if not self.alive:
            return
        self.alive = False
        if isinstance(self._waiting_on, Event):
            self._waiting_on._remove_waiter(self)
        elif isinstance(self._waiting_on, Timer):
            self._waiting_on.cancel()
        self._waiting_on = None
        self._gen.close()
        if not self._completion.fired:
            self._joined = True  # killed on purpose; never re-raise at run()
            self._completion.fire(None)

    def _add_waiter(self, proc: "Process") -> None:
        """Support ``yield process`` (join)."""
        self._joined = True
        self._completion._add_waiter(proc)

    def _step(self, send_value: Any = None, throw: Optional[BaseException] = None) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(send_value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self._completion.fire(_Result(stop.value, None))
            return
        except BaseException as exc:  # noqa: BLE001 - delivered to joiners
            self.alive = False
            self.error = exc
            sim = self._sim
            if sim.obs.enabled:
                sim.obs.counter("kernel.process_failures").inc()
            if not self._joined:
                sim._record_orphan_error(self, exc)
            self._completion.fire(_Result(None, exc))
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        sim = self._sim
        if target is None:
            sim._resume_soon(self, None)
        elif isinstance(target, (int, float)):
            if target < 0:
                raise SimError(f"process {self.name} yielded negative delay {target}")
            self._waiting_on = sim.schedule(target, self._step, None)
        elif isinstance(target, Event):
            self._waiting_on = target
            target._add_waiter(self)
        elif isinstance(target, Process):
            self._waiting_on = target._completion
            target._add_waiter(self)
        else:
            raise SimError(
                f"process {self.name} yielded unsupported object {target!r}"
            )


class _Result:
    """Internal wrapper distinguishing results from exceptions at resume."""

    __slots__ = ("value", "error")

    def __init__(self, value: Any, error: Optional[BaseException]):
        self.value = value
        self.error = error


class Simulator:
    """The discrete-event scheduler."""

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Timer]] = []
        self._seq = 0
        self._orphan_errors: list[tuple[Process, BaseException]] = []
        self._running = False
        # Per-simulator observability hub; disabled unless a caller opts in.
        self.obs = obs if obs is not None else Observability()
        self.obs.bind_clock(lambda: self._now)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimError(f"cannot schedule at {time} < now {self._now}")
        timer = Timer(time, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, timer))
        return timer

    def _resume_soon(self, proc: Process, value: Any) -> None:
        if isinstance(value, _Result):
            if value.error is not None:
                self.schedule(0.0, proc._step, None, value.error)
            else:
                self.schedule(0.0, proc._step, value.value)
        else:
            self.schedule(0.0, proc._step, value)

    # -- processes --------------------------------------------------------

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process from a generator; it runs from the next tick."""
        proc = Process(self, gen, name=name)
        self.schedule(0.0, proc._step, None)
        if self.obs.enabled:
            self.obs.counter("kernel.processes_spawned").inc()
        return proc

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def queue(self, name: str = "") -> Queue:
        return Queue(self, name=name)

    def _record_orphan_error(self, proc: Process, exc: BaseException) -> None:
        self._orphan_errors.append((proc, exc))
        if self.obs.enabled:
            self.obs.emit(
                "kernel", "process-failed", process=proc.name,
                error=type(exc).__name__,
            )

    # -- execution --------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Run queued events until the heap drains or ``until`` is reached.

        Raises the first exception that escaped a process nobody joined.
        """
        if self._running:
            raise SimError("re-entrant Simulator.run")
        self._running = True
        # Hot loop: locals for the heap/ops, pop-then-maybe-push-back instead
        # of peek+pop (one heap access per event), and the orphan check only
        # when an error is actually pending. Telemetry accumulates in locals
        # and is flushed once per run() call, so a disabled run pays nothing
        # beyond the initial `enabled` read.
        heap = self._heap
        orphans = self._orphan_errors
        heappop, heappush = heapq.heappop, heapq.heappush
        enabled = self.obs.enabled
        events = 0
        max_depth = 0
        try:
            while heap:
                entry = heappop(heap)
                time = entry[0]
                if until is not None and time > until:
                    heappush(heap, entry)
                    break
                timer = entry[2]
                if timer.cancelled:
                    continue
                self._now = time
                timer._fire()
                if orphans:
                    self._check_orphans()
                events += 1
                if enabled and len(heap) > max_depth:
                    max_depth = len(heap)
                if events >= max_events:
                    raise SimError(f"event budget exhausted ({max_events} events)")
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            if enabled:
                obs = self.obs
                obs.counter("kernel.run_calls").inc()
                if events:
                    obs.counter("kernel.events").inc(events)
                obs.gauge("kernel.heap_depth_max").set_max(max_depth)

    def run_process(self, gen: ProcessGen, name: str = "",
                    timeout: Optional[float] = None) -> Any:
        """Spawn ``gen``, run until it completes, and return its result.

        Convenience used heavily by tests and examples.
        """
        proc = self.spawn(gen, name=name)
        deadline = None if timeout is None else self._now + timeout
        self.run(until=deadline)
        if proc.error is not None:
            raise proc.error
        if proc.alive:
            raise SimError(f"process {proc.name} did not finish (timeout={timeout})")
        return proc.result

    def _check_orphans(self) -> None:
        if self._orphan_errors:
            proc, exc = self._orphan_errors[0]
            self._orphan_errors.clear()
            raise SimError(f"process {proc.name!r} failed: {exc!r}") from exc


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that fires (with a list of values) when all ``events`` have."""
    events = list(events)
    combined = sim.event(name="all_of")
    pending = len(events)
    values: list[Any] = [None] * len(events)
    if pending == 0:
        combined.fire([])
        return combined

    def waiter(index: int, event: Event) -> ProcessGen:
        value = yield event
        nonlocal pending
        values[index] = value
        pending -= 1
        if pending == 0:
            combined.fire(values)

    for index, event in enumerate(events):
        sim.spawn(waiter(index, event), name=f"all_of[{index}]")
    return combined


def any_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that fires with ``(index, value)`` of the first to fire."""
    events = list(events)
    combined = sim.event(name="any_of")

    def waiter(index: int, event: Event) -> ProcessGen:
        value = yield event
        if not combined.fired:
            combined.fire((index, value))

    for index, event in enumerate(events):
        sim.spawn(waiter(index, event), name=f"any_of[{index}]")
    return combined
