"""Seeded, deterministic fault injection for the simulated network.

A :class:`FaultPlan` describes adversity — link outage windows, per-link
corruption/duplication/reordering probabilities, endpoint
crash-and-restart, rendezvous server restarts — and arms it on a
simulator. Everything is driven by the simulator clock and a single
``random.Random(seed)``, so two runs with the same plan, seed, and
workload produce bit-identical schedules and bit-identical ``fault.*``
event traces on ``sim.obs``.

Design notes:

- Links keep a ``faults`` slot that is ``None`` by default; the hot
  transmit path pays one attribute load and a branch when no plan is
  armed (same discipline as the observability guards).
- "Corruption" is modeled as consume-link-time-then-discard: the frame
  occupies the link exactly as a real transmission would, then is
  dropped, which is transport-equivalent to a checksum rejection at the
  receiver without manufacturing undecodable packet objects.
- Component faults (endpoint crash, rendezvous restart) only schedule
  calls into the components' own ``crash``/``restart``/``stop`` hooks;
  the recovery behavior lives with the component, the *timing* lives
  here.
"""

from __future__ import annotations

from random import Random
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.netsim.kernel import Simulator
from repro.netsim.links import Link, LinkDirection

if TYPE_CHECKING:
    from repro.endpoint.endpoint import Endpoint
    from repro.rendezvous.server import RendezvousServer

LinkLike = Union[Link, LinkDirection]


class DirectionFaults:
    """Mutable fault state consulted by ``LinkDirection.transmit``.

    ``down`` is a nesting counter so overlapping outage windows compose;
    the probability fields are set/cleared by impairment window timers.
    """

    __slots__ = (
        "plan",
        "down",
        "corrupt_prob",
        "duplicate_prob",
        "reorder_prob",
        "reorder_delay",
    )

    def __init__(self, plan: "FaultPlan") -> None:
        self.plan = plan
        self.down = 0
        self.corrupt_prob = 0.0
        self.duplicate_prob = 0.0
        self.reorder_prob = 0.0
        self.reorder_delay = 0.0

    @property
    def rng(self) -> Random:
        return self.plan.rng


class FaultPlan:
    """A deterministic schedule of network and component faults.

    Describe faults with :meth:`link_outage`, :meth:`link_impairment`,
    :meth:`endpoint_crash`, and :meth:`rendezvous_restart`, then arm the
    plan with :meth:`install`. Faults described after installation are
    armed immediately.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = Random(seed)
        self._sim: Optional[Simulator] = None
        self._pending: list = []  # deferred (callable, args) until install
        self.faults_injected = 0
        # (time, endpoint, downtime-or-None) tuples from endpoint_churn().
        self.churn_events: list = []

    # -- plumbing -------------------------------------------------------------

    def install(self, sim: Simulator) -> "FaultPlan":
        """Arm the plan on a simulator; idempotent for the same simulator."""
        if self._sim is sim:
            return self
        if self._sim is not None:
            raise RuntimeError("FaultPlan is already installed on a simulator")
        self._sim = sim
        pending, self._pending = self._pending, []
        for arm, args in pending:
            arm(*args)
        return self

    @property
    def installed(self) -> bool:
        return self._sim is not None

    def _arm(self, arm, *args) -> None:
        if self._sim is None:
            self._pending.append((arm, args))
        else:
            arm(*args)

    def _emit(self, name: str, **fields) -> None:
        assert self._sim is not None
        obs = self._sim.obs
        if obs.enabled:
            obs.counter(f"fault.{name.replace('-', '_')}").inc()
            obs.emit("fault", name, **fields)

    def note_packet_fault(self, name: str, direction: LinkDirection,
                          packet) -> None:
        """Per-packet fault accounting (called from the link layer)."""
        self.faults_injected += 1
        obs = direction._sim.obs
        if obs.enabled:
            obs.counter(f"fault.{name.replace('-', '_')}",
                        link=direction.name).inc()
            obs.emit(
                "fault", name, link=direction.name, proto=packet.proto,
                src=packet.src, dst=packet.dst, size=packet.total_length,
            )

    @staticmethod
    def _directions(link: LinkLike, direction: str) -> Iterable[LinkDirection]:
        if isinstance(link, LinkDirection):
            return (link,)
        if direction == "both":
            return (link.forward, link.reverse)
        if direction == "forward":
            return (link.forward,)
        if direction == "reverse":
            return (link.reverse,)
        raise ValueError(f"unknown direction {direction!r}")

    def _state_for(self, direction: LinkDirection) -> DirectionFaults:
        state = direction.faults
        if state is None:
            state = DirectionFaults(self)
            direction.faults = state
        elif state.plan is not self:
            raise RuntimeError(
                f"link {direction.name} is already driven by another FaultPlan"
            )
        return state

    # -- link faults ----------------------------------------------------------

    def link_outage(self, link: LinkLike, start: float, duration: float,
                    direction: str = "both") -> "FaultPlan":
        """Take ``link`` down for ``[start, start+duration)`` sim seconds.

        Packets offered to a downed direction are dropped before they
        consume any link time. Overlapping windows nest.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        states = [self._state_for(d) for d in self._directions(link, direction)]

        def arm() -> None:
            sim = self._sim
            assert sim is not None

            def begin() -> None:
                for state in states:
                    state.down += 1
                self.faults_injected += 1
                self._emit("link-down",
                           links=[d.name for d in
                                  self._directions(link, direction)],
                           until=start + duration)

            def end() -> None:
                for state in states:
                    state.down -= 1
                self._emit("link-up",
                           links=[d.name for d in
                                  self._directions(link, direction)])

            sim.schedule_at(start, begin)
            sim.schedule_at(start + duration, end)

        self._arm(arm)
        return self

    def link_impairment(
        self,
        link: LinkLike,
        corrupt: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        reorder_delay: float = 0.05,
        start: float = 0.0,
        duration: Optional[float] = None,
        direction: str = "both",
    ) -> "FaultPlan":
        """Impair ``link`` with per-packet fault probabilities.

        ``corrupt`` drops the frame after it has consumed its link time
        (checksum-failure analog); ``duplicate`` delivers a back-to-back
        second copy; ``reorder`` holds a packet back ``reorder_delay``
        seconds so later packets overtake it. Active from ``start`` for
        ``duration`` seconds (forever when ``duration`` is None).
        """
        for prob in (corrupt, duplicate, reorder):
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"probability out of range: {prob}")
        states = [self._state_for(d) for d in self._directions(link, direction)]

        def arm() -> None:
            sim = self._sim
            assert sim is not None

            def begin() -> None:
                for state in states:
                    state.corrupt_prob = corrupt
                    state.duplicate_prob = duplicate
                    state.reorder_prob = reorder
                    state.reorder_delay = reorder_delay
                self._emit("impairment-on",
                           links=[d.name for d in
                                  self._directions(link, direction)],
                           corrupt=corrupt, duplicate=duplicate,
                           reorder=reorder)

            def end() -> None:
                for state in states:
                    state.corrupt_prob = 0.0
                    state.duplicate_prob = 0.0
                    state.reorder_prob = 0.0
                self._emit("impairment-off",
                           links=[d.name for d in
                                  self._directions(link, direction)])

            sim.schedule_at(start, begin)
            if duration is not None:
                sim.schedule_at(start + duration, end)

        self._arm(arm)
        return self

    # -- component faults -----------------------------------------------------

    def endpoint_crash(self, endpoint: "Endpoint", at: float,
                       downtime: Optional[float] = None) -> "FaultPlan":
        """Crash ``endpoint`` at ``at``; restart it after ``downtime``.

        A crash severs every control connection mid-stream (no FIN — the
        peer sees a reset) and discards all session state, exactly the
        churn a real deployment's endpoints exhibit. With ``downtime``
        None the endpoint stays down.
        """

        def arm() -> None:
            sim = self._sim
            assert sim is not None

            def crash() -> None:
                self.faults_injected += 1
                self._emit("endpoint-crash", endpoint=endpoint.config.name,
                           sessions=len(endpoint.sessions))
                endpoint.crash()

            sim.schedule_at(at, crash)
            if downtime is not None:

                def restart() -> None:
                    self._emit("endpoint-restart",
                               endpoint=endpoint.config.name)
                    endpoint.restart()

                sim.schedule_at(at + downtime, restart)

        self._arm(arm)
        return self

    def endpoint_churn(
        self,
        endpoints: list["Endpoint"],
        rate_per_min: float = 0.01,
        start: float = 0.0,
        duration: float = 60.0,
        downtime: tuple[float, float] = (5.0, 20.0),
        permanent_fraction: float = 0.0,
    ) -> "FaultPlan":
        """Seeded Poisson join/leave churn over a fleet of endpoints.

        Models the constant membership turnover of a real measurement
        platform: each endpoint leaves (crashes) at ``rate_per_min``
        expected events per endpoint per minute — ``0.01`` is the classic
        "1 %/min" community-platform churn — and rejoins after a
        ``downtime`` drawn uniformly from the given range. A
        ``permanent_fraction`` of leave events never rejoin (the device
        is gone for good; its pool entry must be removed, not drained).

        The whole event schedule is drawn from the plan's seeded RNG in
        one deterministic pass, so two runs with the same plan seed
        produce bit-identical churn. The generated ``(time, endpoint,
        downtime)`` tuples are recorded in :attr:`churn_events`.
        """
        if not endpoints:
            raise ValueError("endpoint_churn needs at least one endpoint")
        if rate_per_min < 0:
            raise ValueError(f"rate must be >= 0, got {rate_per_min}")
        if downtime[0] > downtime[1] or downtime[0] < 0:
            raise ValueError(f"bad downtime range {downtime}")
        if not 0.0 <= permanent_fraction <= 1.0:
            raise ValueError(
                f"permanent_fraction out of range: {permanent_fraction}"
            )
        # Fleet-level Poisson rate: superposition of the per-endpoint
        # processes (events per simulated second).
        fleet_rate = rate_per_min * len(endpoints) / 60.0
        events: list[tuple[float, "Endpoint", Optional[float]]] = []
        if fleet_rate > 0:
            at = start
            while True:
                at += self.rng.expovariate(fleet_rate)
                if at >= start + duration:
                    break
                victim = endpoints[self.rng.randrange(len(endpoints))]
                down: Optional[float] = self.rng.uniform(*downtime)
                if (
                    permanent_fraction > 0
                    and self.rng.random() < permanent_fraction
                ):
                    down = None  # leaves and never comes back
                events.append((at, victim, down))
        self.churn_events.extend(events)
        for at, victim, down in events:
            # Overlapping windows on one endpoint compose through the
            # crash()/restart() idempotence guards: a crash while down is
            # a no-op, as is a restart while up.
            self.endpoint_crash(victim, at=at, downtime=down)
        return self

    def rendezvous_restart(self, server: "RendezvousServer", at: float,
                           downtime: float = 1.0) -> "FaultPlan":
        """Restart a rendezvous server: down at ``at``, back after
        ``downtime``. Stored experiments survive (rendezvous servers are
        the persistent infrastructure, §3.2); live subscriptions are
        severed and must be re-established by endpoints."""

        def arm() -> None:
            sim = self._sim
            assert sim is not None

            def stop() -> None:
                self.faults_injected += 1
                self._emit("rendezvous-down", port=server.port,
                           subscribers=len(server.subscribers))
                server.stop()

            def restart() -> None:
                self._emit("rendezvous-up", port=server.port,
                           experiments=len(server.experiments))
                server.restart()

            sim.schedule_at(at, stop)
            sim.schedule_at(at + downtime, restart)

        self._arm(arm)
        return self
