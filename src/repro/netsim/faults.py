"""Seeded, deterministic fault injection for the simulated network.

A :class:`FaultPlan` describes adversity — link outage windows, per-link
corruption/duplication/reordering probabilities, endpoint
crash-and-restart, rendezvous server restarts — and arms it on a
simulator. Everything is driven by the simulator clock and a single
``random.Random(seed)``, so two runs with the same plan, seed, and
workload produce bit-identical schedules and bit-identical ``fault.*``
event traces on ``sim.obs``.

Design notes:

- Links keep a ``faults`` slot that is ``None`` by default; the hot
  transmit path pays one attribute load and a branch when no plan is
  armed (same discipline as the observability guards).
- "Corruption" is modeled as consume-link-time-then-discard: the frame
  occupies the link exactly as a real transmission would, then is
  dropped, which is transport-equivalent to a checksum rejection at the
  receiver without manufacturing undecodable packet objects.
- Component faults (endpoint crash, rendezvous restart) only schedule
  calls into the components' own ``crash``/``restart``/``stop`` hooks;
  the recovery behavior lives with the component, the *timing* lives
  here.
"""

from __future__ import annotations

from dataclasses import replace
from random import Random
from typing import TYPE_CHECKING, Generator, Iterable, Optional, Union
from zlib import crc32

from repro.netsim.kernel import Simulator
from repro.netsim.links import Link, LinkDirection
from repro.proto.messages import CaptureRecord, PollData, Resumed, Result

if TYPE_CHECKING:
    from repro.endpoint.endpoint import Endpoint
    from repro.rendezvous.server import RendezvousServer

LinkLike = Union[Link, LinkDirection]

#: Adversary behaviors :meth:`FaultPlan.byzantine` can assign, in the
#: round-robin order used when a plan seeds several adversaries.
BYZANTINE_BEHAVIORS = ("stall", "flood", "fabricate", "desequence", "tamper")


class ByzantineAdversary:
    """Seeded misbehavior driver attached to one endpoint.

    An adversary reproduces one Byzantine behavior class against every
    session its endpoint serves:

    - ``stall``    — swallow a fraction of reqid-bearing commands so the
      controller's RPCs time out (slowloris).
    - ``flood``    — pump unsolicited reqid-0 PollData at the controller
      regardless of capture state (stream-budget abuse).
    - ``fabricate``— lie in PollData responses: suppress real capture
      records and substitute invented ones, yielding plausible,
      well-formed results that do not reflect what happened on the
      wire. Invisible to per-session checks; caught by cross-validating
      the job against honest replicas.
    - ``desequence``— emit protocol-illegal frames: Results for reqids
      never issued, Resumed without a preceding Interrupted.
    - ``tamper``   — bit-flip the payload of every shipped capture
      record (plausible frames, corrupt contents).

    All randomness comes from the per-endpoint ``Random`` handed in by
    :meth:`FaultPlan.byzantine`, so a given plan seed produces a
    bit-identical attack schedule. Activations are tallied on the plan
    (``byzantine_events`` / ``byzantine_activations``) and, when
    telemetry is on, as ``fault.byzantine`` counters.
    """

    __slots__ = (
        "plan",
        "endpoint_name",
        "behavior",
        "rng",
        "start",
        "stall_prob",
        "flood_interval",
        "flood_records",
        "flood_record_bytes",
        "fabricate_records",
        "desequence_interval",
    )

    def __init__(
        self,
        plan: "FaultPlan",
        endpoint_name: str,
        behavior: str,
        rng: Random,
        start: float = 0.0,
        stall_prob: float = 0.35,
        flood_interval: float = 0.05,
        flood_records: int = 32,
        flood_record_bytes: int = 512,
        fabricate_records: int = 4,
        desequence_interval: float = 0.25,
    ) -> None:
        if behavior not in BYZANTINE_BEHAVIORS:
            raise ValueError(f"unknown byzantine behavior {behavior!r}")
        self.plan = plan
        self.endpoint_name = endpoint_name
        self.behavior = behavior
        self.rng = rng
        self.start = start
        self.stall_prob = stall_prob
        self.flood_interval = flood_interval
        self.flood_records = flood_records
        self.flood_record_bytes = flood_record_bytes
        self.fabricate_records = fabricate_records
        self.desequence_interval = desequence_interval

    def _activate(self, sim: Simulator) -> None:
        plan = self.plan
        key = (self.endpoint_name, self.behavior)
        count = plan.byzantine_activations.get(key, 0)
        plan.byzantine_activations[key] = count + 1
        obs = sim.obs
        if count == 0:
            plan.byzantine_events.append(
                (sim.now, self.endpoint_name, self.behavior)
            )
            if obs.enabled:
                obs.emit("fault", "byzantine", endpoint=self.endpoint_name,
                         behavior=self.behavior)
        if obs.enabled:
            obs.counter("fault.byzantine", endpoint=self.endpoint_name,
                        behavior=self.behavior).inc()

    # -- session hooks (called from repro.endpoint.endpoint.Session) ----------

    def on_session_start(self, session) -> None:
        """Arm active behaviors (flood/desequence) on a fresh session."""
        sim = session.endpoint.node.sim
        if self.behavior == "flood":
            sim.spawn(self._flood_loop(session, sim),
                      name=f"byz-flood-{session.name}")
        elif self.behavior == "desequence":
            sim.spawn(self._desequence_loop(session, sim),
                      name=f"byz-deseq-{session.name}")

    def intercept_command(self, session, message) -> bool:
        """True to swallow ``message`` before dispatch (stall only)."""
        if self.behavior != "stall":
            return False
        if getattr(message, "reqid", None) is None:
            return False
        sim = session.endpoint.node.sim
        if sim.now < self.start:
            return False
        if self.rng.random() >= self.stall_prob:
            return False
        self._activate(sim)
        return True

    def outgoing(self, session, message):
        """Transform an outbound frame (fabricate/tamper only)."""
        if self.behavior not in ("fabricate", "tamper"):
            return message
        if not isinstance(message, PollData) or message.reqid == 0:
            return message
        sim = session.endpoint.node.sim
        if sim.now < self.start:
            return message
        rng = self.rng
        if self.behavior == "fabricate":
            if not message.records:
                return message
            # Suppress at least one real record (claiming the packet was
            # never captured) and pad with invented ones. The response
            # stays well-formed and the session stays polite — only a
            # replica run on an honest endpoint exposes the lie.
            kept = [r for r in message.records if rng.random() >= 0.5]
            if len(kept) == len(message.records) and len(kept) > 1:
                kept = kept[1:]
            junk = tuple(
                CaptureRecord(
                    sktid=rng.randrange(8),
                    timestamp=rng.getrandbits(48),
                    data=rng.randbytes(24),
                )
                for _ in range(self.fabricate_records)
            )
            self._activate(sim)
            return replace(message, records=tuple(kept) + junk)
        if not message.records:
            return message
        tampered = tuple(
            replace(record, data=bytes(b ^ 0xFF for b in record.data))
            for record in message.records
        )
        self._activate(sim)
        return replace(message, records=tampered)

    # -- active loops ---------------------------------------------------------

    def _flood_loop(self, session, sim: Simulator) -> Generator:
        if sim.now < self.start:
            yield self.start - sim.now
        rng = self.rng
        while not session.ended:
            records = tuple(
                CaptureRecord(
                    sktid=rng.randrange(8),
                    timestamp=rng.getrandbits(48),
                    data=rng.randbytes(self.flood_record_bytes),
                )
                for _ in range(self.flood_records)
            )
            session.send_message(PollData(reqid=0, records=records))
            self._activate(sim)
            yield self.flood_interval * (0.5 + rng.random())

    def _desequence_loop(self, session, sim: Simulator) -> Generator:
        if sim.now < self.start:
            yield self.start - sim.now
        rng = self.rng
        while not session.ended:
            if rng.random() < 0.5:
                message: object = Result(
                    reqid=0xDEAD0000 + rng.randrange(1 << 16), status=0
                )
            else:
                message = Resumed()
            session.send_message(message)
            self._activate(sim)
            yield self.desequence_interval * (0.5 + rng.random())


class DirectionFaults:
    """Mutable fault state consulted by ``LinkDirection.transmit``.

    ``down`` is a nesting counter so overlapping outage windows compose;
    the probability fields are set/cleared by impairment window timers.
    """

    __slots__ = (
        "plan",
        "down",
        "corrupt_prob",
        "duplicate_prob",
        "reorder_prob",
        "reorder_delay",
    )

    def __init__(self, plan: "FaultPlan") -> None:
        self.plan = plan
        self.down = 0
        self.corrupt_prob = 0.0
        self.duplicate_prob = 0.0
        self.reorder_prob = 0.0
        self.reorder_delay = 0.0

    @property
    def rng(self) -> Random:
        return self.plan.rng


class FaultPlan:
    """A deterministic schedule of network and component faults.

    Describe faults with :meth:`link_outage`, :meth:`link_impairment`,
    :meth:`endpoint_crash`, and :meth:`rendezvous_restart`, then arm the
    plan with :meth:`install`. Faults described after installation are
    armed immediately.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = Random(seed)
        self._sim: Optional[Simulator] = None
        self._pending: list = []  # deferred (callable, args) until install
        self.faults_injected = 0
        # (time, endpoint, downtime-or-None) tuples from endpoint_churn().
        self.churn_events: list = []
        # Byzantine bookkeeping from byzantine(): endpoint-name ->
        # behavior assignments, first-activation (time, endpoint,
        # behavior) tuples, and (endpoint, behavior) -> count tallies.
        self.byzantine_assignments: dict[str, str] = {}
        self.byzantine_events: list = []
        self.byzantine_activations: dict[tuple[str, str], int] = {}

    # -- plumbing -------------------------------------------------------------

    def install(self, sim: Simulator) -> "FaultPlan":
        """Arm the plan on a simulator; idempotent for the same simulator."""
        if self._sim is sim:
            return self
        if self._sim is not None:
            raise RuntimeError("FaultPlan is already installed on a simulator")
        self._sim = sim
        pending, self._pending = self._pending, []
        for arm, args in pending:
            arm(*args)
        return self

    @property
    def installed(self) -> bool:
        return self._sim is not None

    def _arm(self, arm, *args) -> None:
        if self._sim is None:
            self._pending.append((arm, args))
        else:
            arm(*args)

    def _emit(self, name: str, **fields) -> None:
        assert self._sim is not None
        obs = self._sim.obs
        if obs.enabled:
            obs.counter(f"fault.{name.replace('-', '_')}").inc()
            obs.emit("fault", name, **fields)

    def note_packet_fault(self, name: str, direction: LinkDirection,
                          packet) -> None:
        """Per-packet fault accounting (called from the link layer)."""
        self.faults_injected += 1
        obs = direction._sim.obs
        if obs.enabled:
            obs.counter(f"fault.{name.replace('-', '_')}",
                        link=direction.name).inc()
            obs.emit(
                "fault", name, link=direction.name, proto=packet.proto,
                src=packet.src, dst=packet.dst, size=packet.total_length,
            )

    @staticmethod
    def _directions(link: LinkLike, direction: str) -> Iterable[LinkDirection]:
        if isinstance(link, LinkDirection):
            return (link,)
        if direction == "both":
            return (link.forward, link.reverse)
        if direction == "forward":
            return (link.forward,)
        if direction == "reverse":
            return (link.reverse,)
        raise ValueError(f"unknown direction {direction!r}")

    def _state_for(self, direction: LinkDirection) -> DirectionFaults:
        state = direction.faults
        if state is None:
            state = DirectionFaults(self)
            direction.faults = state
        elif state.plan is not self:
            raise RuntimeError(
                f"link {direction.name} is already driven by another FaultPlan"
            )
        return state

    # -- link faults ----------------------------------------------------------

    def link_outage(self, link: LinkLike, start: float, duration: float,
                    direction: str = "both") -> "FaultPlan":
        """Take ``link`` down for ``[start, start+duration)`` sim seconds.

        Packets offered to a downed direction are dropped before they
        consume any link time. Overlapping windows nest.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        states = [self._state_for(d) for d in self._directions(link, direction)]

        def arm() -> None:
            sim = self._sim
            assert sim is not None

            def begin() -> None:
                for state in states:
                    state.down += 1
                self.faults_injected += 1
                self._emit("link-down",
                           links=[d.name for d in
                                  self._directions(link, direction)],
                           until=start + duration)

            def end() -> None:
                for state in states:
                    state.down -= 1
                self._emit("link-up",
                           links=[d.name for d in
                                  self._directions(link, direction)])

            sim.schedule_at(start, begin)
            sim.schedule_at(start + duration, end)

        self._arm(arm)
        return self

    def link_impairment(
        self,
        link: LinkLike,
        corrupt: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        reorder_delay: float = 0.05,
        start: float = 0.0,
        duration: Optional[float] = None,
        direction: str = "both",
    ) -> "FaultPlan":
        """Impair ``link`` with per-packet fault probabilities.

        ``corrupt`` drops the frame after it has consumed its link time
        (checksum-failure analog); ``duplicate`` delivers a back-to-back
        second copy; ``reorder`` holds a packet back ``reorder_delay``
        seconds so later packets overtake it. Active from ``start`` for
        ``duration`` seconds (forever when ``duration`` is None).
        """
        for prob in (corrupt, duplicate, reorder):
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"probability out of range: {prob}")
        states = [self._state_for(d) for d in self._directions(link, direction)]

        def arm() -> None:
            sim = self._sim
            assert sim is not None

            def begin() -> None:
                for state in states:
                    state.corrupt_prob = corrupt
                    state.duplicate_prob = duplicate
                    state.reorder_prob = reorder
                    state.reorder_delay = reorder_delay
                self._emit("impairment-on",
                           links=[d.name for d in
                                  self._directions(link, direction)],
                           corrupt=corrupt, duplicate=duplicate,
                           reorder=reorder)

            def end() -> None:
                for state in states:
                    state.corrupt_prob = 0.0
                    state.duplicate_prob = 0.0
                    state.reorder_prob = 0.0
                self._emit("impairment-off",
                           links=[d.name for d in
                                  self._directions(link, direction)])

            sim.schedule_at(start, begin)
            if duration is not None:
                sim.schedule_at(start + duration, end)

        self._arm(arm)
        return self

    # -- component faults -----------------------------------------------------

    def endpoint_crash(self, endpoint: "Endpoint", at: float,
                       downtime: Optional[float] = None) -> "FaultPlan":
        """Crash ``endpoint`` at ``at``; restart it after ``downtime``.

        A crash severs every control connection mid-stream (no FIN — the
        peer sees a reset) and discards all session state, exactly the
        churn a real deployment's endpoints exhibit. With ``downtime``
        None the endpoint stays down.
        """

        def arm() -> None:
            sim = self._sim
            assert sim is not None

            def crash() -> None:
                self.faults_injected += 1
                self._emit("endpoint-crash", endpoint=endpoint.config.name,
                           sessions=len(endpoint.sessions))
                endpoint.crash()

            sim.schedule_at(at, crash)
            if downtime is not None:

                def restart() -> None:
                    self._emit("endpoint-restart",
                               endpoint=endpoint.config.name)
                    endpoint.restart()

                sim.schedule_at(at + downtime, restart)

        self._arm(arm)
        return self

    def endpoint_churn(
        self,
        endpoints: list["Endpoint"],
        rate_per_min: float = 0.01,
        start: float = 0.0,
        duration: float = 60.0,
        downtime: tuple[float, float] = (5.0, 20.0),
        permanent_fraction: float = 0.0,
    ) -> "FaultPlan":
        """Seeded Poisson join/leave churn over a fleet of endpoints.

        Models the constant membership turnover of a real measurement
        platform: each endpoint leaves (crashes) at ``rate_per_min``
        expected events per endpoint per minute — ``0.01`` is the classic
        "1 %/min" community-platform churn — and rejoins after a
        ``downtime`` drawn uniformly from the given range. A
        ``permanent_fraction`` of leave events never rejoin (the device
        is gone for good; its pool entry must be removed, not drained).

        The whole event schedule is drawn from the plan's seeded RNG in
        one deterministic pass, so two runs with the same plan seed
        produce bit-identical churn. The generated ``(time, endpoint,
        downtime)`` tuples are recorded in :attr:`churn_events`.
        """
        if not endpoints:
            raise ValueError("endpoint_churn needs at least one endpoint")
        if rate_per_min < 0:
            raise ValueError(f"rate must be >= 0, got {rate_per_min}")
        if downtime[0] > downtime[1] or downtime[0] < 0:
            raise ValueError(f"bad downtime range {downtime}")
        if not 0.0 <= permanent_fraction <= 1.0:
            raise ValueError(
                f"permanent_fraction out of range: {permanent_fraction}"
            )
        # Fleet-level Poisson rate: superposition of the per-endpoint
        # processes (events per simulated second).
        fleet_rate = rate_per_min * len(endpoints) / 60.0
        events: list[tuple[float, "Endpoint", Optional[float]]] = []
        if fleet_rate > 0:
            at = start
            while True:
                at += self.rng.expovariate(fleet_rate)
                if at >= start + duration:
                    break
                victim = endpoints[self.rng.randrange(len(endpoints))]
                down: Optional[float] = self.rng.uniform(*downtime)
                if (
                    permanent_fraction > 0
                    and self.rng.random() < permanent_fraction
                ):
                    down = None  # leaves and never comes back
                events.append((at, victim, down))
        self.churn_events.extend(events)
        for at, victim, down in events:
            # Overlapping windows on one endpoint compose through the
            # crash()/restart() idempotence guards: a crash while down is
            # a no-op, as is a restart while up.
            self.endpoint_crash(victim, at=at, downtime=down)
        return self

    def byzantine(
        self,
        endpoints: list["Endpoint"],
        fraction: float = 0.05,
        count: Optional[int] = None,
        behaviors: tuple = BYZANTINE_BEHAVIORS,
        start: float = 0.0,
        **tuning,
    ) -> "FaultPlan":
        """Seed a fraction of the fleet with Byzantine adversaries.

        Picks ``count`` victims (or ``fraction`` of the fleet, at least
        one) with the plan RNG and assigns :data:`BYZANTINE_BEHAVIORS`
        round-robin, so a mixed fleet exercises every containment path.
        Each victim gets its own ``Random`` derived from the plan seed
        and the endpoint name — adversary schedules are independent of
        each other and of every other fault the plan injects.

        Assignments land in :attr:`byzantine_assignments`; the first
        activation of each (endpoint, behavior) pair is recorded in
        :attr:`byzantine_events` and per-pair counts in
        :attr:`byzantine_activations`. ``tuning`` is forwarded to
        :class:`ByzantineAdversary` (``stall_prob``, ``flood_interval``,
        ``fabricate_records``, ...).
        """
        if not endpoints:
            raise ValueError("byzantine needs at least one endpoint")
        if not behaviors:
            raise ValueError("byzantine needs at least one behavior")
        for behavior in behaviors:
            if behavior not in BYZANTINE_BEHAVIORS:
                raise ValueError(f"unknown byzantine behavior {behavior!r}")
        if count is None:
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"fraction out of range: {fraction}")
            count = max(1, round(len(endpoints) * fraction))
        count = min(count, len(endpoints))
        victims = sorted(self.rng.sample(range(len(endpoints)), count))
        for slot, index in enumerate(victims):
            endpoint = endpoints[index]
            name = endpoint.config.name
            if endpoint.adversary is not None:
                raise RuntimeError(f"endpoint {name} is already byzantine")
            endpoint.adversary = ByzantineAdversary(
                plan=self,
                endpoint_name=name,
                behavior=behaviors[slot % len(behaviors)],
                rng=Random((self.seed << 8) ^ crc32(name.encode())),
                start=start,
                **tuning,
            )
            self.byzantine_assignments[name] = endpoint.adversary.behavior
        return self

    def rendezvous_restart(self, server: "RendezvousServer", at: float,
                           downtime: float = 1.0) -> "FaultPlan":
        """Restart a rendezvous server: down at ``at``, back after
        ``downtime``. Stored experiments survive (rendezvous servers are
        the persistent infrastructure, §3.2); live subscriptions are
        severed and must be re-established by endpoints."""

        def arm() -> None:
            sim = self._sim
            assert sim is not None

            def stop() -> None:
                self.faults_injected += 1
                self._emit("rendezvous-down", port=server.port,
                           subscribers=len(server.subscribers))
                server.stop()

            def restart() -> None:
                self._emit("rendezvous-up", port=server.port,
                           experiments=len(server.experiments))
                server.restart()

            sim.schedule_at(at, stop)
            sim.schedule_at(at + downtime, restart)

        self._arm(arm)
        return self
