"""Host ICMP behaviour: echo reply generation and listener dispatch."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.packet.icmp import ICMP_ECHO_REQUEST, IcmpMessage
from repro.packet.ipv4 import PROTO_ICMP, IPv4Packet
from repro.util.byteio import DecodeError

if TYPE_CHECKING:
    from repro.netsim.node import Node

# Listener callbacks receive (ip_packet, icmp_message).
IcmpListener = Callable[[IPv4Packet, IcmpMessage], None]


class IcmpLayer:
    """Replies to echo requests and fans ICMP out to registered listeners."""

    def __init__(self, node: "Node") -> None:
        self._node = node
        self._listeners: list[IcmpListener] = []
        self.echo_requests_answered = 0

    def add_listener(self, listener: IcmpListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: IcmpListener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def receive(self, packet: IPv4Packet) -> None:
        try:
            message = IcmpMessage.decode(packet.payload)
        except DecodeError:
            return
        for listener in list(self._listeners):
            listener(packet, message)
        if message.icmp_type == ICMP_ECHO_REQUEST:
            self._answer_echo(packet, message)

    def _answer_echo(self, packet: IPv4Packet, request: IcmpMessage) -> None:
        reply = IcmpMessage.echo_reply(
            request.echo_ident, request.echo_seq, request.body
        )
        self.echo_requests_answered += 1
        self._node.send_ip(
            IPv4Packet(
                src=packet.dst,
                dst=packet.src,
                proto=PROTO_ICMP,
                payload=reply.encode(),
            )
        )

    def send_echo_request(
        self, dst: int, ident: int, seq: int, payload: bytes = b"", ttl: int = 64
    ) -> bool:
        """Convenience for on-node (baseline) ping implementations."""
        request = IcmpMessage.echo_request(ident, seq, payload)
        return self._node.send_ip(
            IPv4Packet(
                src=self._node.primary_address(),
                dst=dst,
                proto=PROTO_ICMP,
                payload=request.encode(),
                ttl=ttl,
            )
        )
