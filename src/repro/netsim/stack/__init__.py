"""The mini TCP/IP protocol stack running on every simulated node."""

from repro.netsim.stack.icmp import IcmpLayer
from repro.netsim.stack.ip import (
    VERDICT_CONSUME,
    VERDICT_IGNORE,
    VERDICT_MIRROR,
    IpLayer,
    RawTap,
)
from repro.netsim.stack.tcp import (
    ConnectionRefused,
    ConnectionReset,
    ConnectionTimeout,
    TcpConnection,
    TcpError,
    TcpLayer,
    TcpListener,
)
from repro.netsim.stack.udp import UdpLayer, UdpSocket

__all__ = [
    "ConnectionRefused",
    "ConnectionReset",
    "ConnectionTimeout",
    "IcmpLayer",
    "IpLayer",
    "RawTap",
    "TcpConnection",
    "TcpError",
    "TcpLayer",
    "TcpListener",
    "UdpLayer",
    "UdpSocket",
    "VERDICT_CONSUME",
    "VERDICT_IGNORE",
    "VERDICT_MIRROR",
]
