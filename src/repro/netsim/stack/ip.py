"""Host/router IP layer: delivery, forwarding, TTL, ICMP errors, raw taps.

The raw-tap mechanism is the simulator-side hook behind PacketLab's raw
sockets (§3.1). A tap sees every packet arriving at the node and returns a
verdict:

- ``VERDICT_IGNORE`` — the tap does not capture the packet; the host OS
  processes it normally,
- ``VERDICT_CONSUME`` — the tap captures the packet and the host OS never
  sees it (so the kernel cannot RST an experiment's TCP handshake),
- ``VERDICT_MIRROR`` — the tap captures a copy and the OS also processes it
  (the paper's passive-telescope use case).

If several taps claim a packet, capture happens per tap and the OS is
bypassed if any tap consumed it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.packet.icmp import (
    ICMP_DEST_UNREACH,
    ICMP_TIME_EXCEEDED,
    UNREACH_NET,
    IcmpMessage,
)
from repro.packet.ipv4 import PROTO_ICMP, IPv4Packet

if TYPE_CHECKING:
    from repro.netsim.node import Interface, Node

VERDICT_IGNORE = 0
VERDICT_CONSUME = 1
VERDICT_MIRROR = 2

# A tap callback receives the packet and returns a verdict.
TapCallback = Callable[[IPv4Packet], int]


class RawTap:
    """A registered raw-socket tap on a node's receive path."""

    __slots__ = ("callback", "active")

    def __init__(self, callback: TapCallback) -> None:
        self.callback = callback
        self.active = True


class IpLayer:
    """IP receive/forward/send logic for one node."""

    def __init__(self, node: "Node") -> None:
        self._node = node
        self._taps: list[RawTap] = []
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_dropped_no_route = 0

    # -- raw taps ---------------------------------------------------------

    def add_tap(self, callback: TapCallback) -> RawTap:
        tap = RawTap(callback)
        self._taps.append(tap)
        return tap

    def remove_tap(self, tap: RawTap) -> None:
        tap.active = False
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    # -- receive path ------------------------------------------------------

    def receive(self, packet: IPv4Packet, iface: Optional["Interface"]) -> None:
        node = self._node
        if node.is_local_address(packet.dst):
            consumed = False
            for tap in list(self._taps):
                if not tap.active:
                    continue
                verdict = tap.callback(packet)
                if verdict == VERDICT_CONSUME:
                    consumed = True
            if not consumed:
                self.packets_delivered += 1
                node.local_deliver(packet)
            return
        if node.forwarding:
            self.forward(packet, iface)
        # A non-forwarding host silently drops traffic not addressed to it.

    def forward(self, packet: IPv4Packet, in_iface: Optional["Interface"]) -> None:
        node = self._node
        if packet.ttl <= 1:
            self._send_icmp_error(
                packet, in_iface, IcmpMessage.time_exceeded(packet.encode())
            )
            return
        out = node.lookup_route(packet.dst)
        if out is None:
            self.packets_dropped_no_route += 1
            self._send_icmp_error(
                packet,
                in_iface,
                IcmpMessage.dest_unreachable(UNREACH_NET, packet.encode()),
            )
            return
        self.packets_forwarded += 1
        out.send(packet.decremented())

    def _send_icmp_error(
        self,
        offending: IPv4Packet,
        in_iface: Optional["Interface"],
        message: IcmpMessage,
    ) -> None:
        # Never generate ICMP errors about ICMP errors (RFC 1122).
        if offending.proto == PROTO_ICMP:
            try:
                inner = IcmpMessage.decode(offending.payload, verify_checksum=False)
            except Exception:
                inner = None
            if inner is not None and inner.icmp_type in (
                ICMP_DEST_UNREACH,
                ICMP_TIME_EXCEEDED,
            ):
                return
        src = in_iface.addr if in_iface is not None else self._node.primary_address()
        if src == 0:
            return
        reply = IPv4Packet(
            src=src, dst=offending.src, proto=PROTO_ICMP, payload=message.encode()
        )
        self.send(reply)

    # -- send path ---------------------------------------------------------

    def send(self, packet: IPv4Packet) -> bool:
        """Route and transmit a locally originated packet.

        Returns False if there was no route or the first-hop queue dropped
        the packet.
        """
        node = self._node
        if node.is_local_address(packet.dst):
            # Loopback: deliver on the next tick without touching any link.
            node.sim.schedule(0.0, self.receive, packet, None)
            return True
        out = node.lookup_route(packet.dst)
        if out is None:
            self.packets_dropped_no_route += 1
            return False
        return out.send(packet)
