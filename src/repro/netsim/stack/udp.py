"""Host UDP: port demultiplexing and socket delivery."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.netsim.kernel import Event, Queue
from repro.packet.icmp import UNREACH_PORT, IcmpMessage
from repro.packet.ipv4 import PROTO_UDP, IPv4Packet
from repro.packet.udp import UdpDatagram
from repro.util.byteio import DecodeError

if TYPE_CHECKING:
    from repro.netsim.node import Node

EPHEMERAL_PORT_BASE = 49152


class UdpSocket:
    """A bound UDP socket on a simulated node.

    ``recvfrom()`` returns an event to yield on; its value is a tuple
    ``(payload, src_ip, src_port, dst_ip)``.
    """

    def __init__(self, layer: "UdpLayer", port: int) -> None:
        self._layer = layer
        self.port = port
        self.rx = Queue(layer.node.sim, name=f"udp:{layer.node.name}:{port}")
        self.closed = False
        self.rx_dropped = 0
        self.rx_buffer_limit: Optional[int] = None  # packets; None = unbounded

    def sendto(self, payload: bytes, dst_ip: int, dst_port: int,
               src_ip: int = 0, ttl: int = 64) -> bool:
        """Send a datagram; returns False if unroutable or dropped at the
        first hop queue."""
        if self.closed:
            raise RuntimeError("socket is closed")
        node = self._layer.node
        src = src_ip or node.primary_address()
        datagram = UdpDatagram(src_port=self.port, dst_port=dst_port, payload=payload)
        packet = IPv4Packet(
            src=src, dst=dst_ip, proto=PROTO_UDP,
            payload=datagram.encode(src, dst_ip), ttl=ttl,
        )
        return node.send_ip(packet)

    def recvfrom(self) -> Event:
        if self.closed:
            raise RuntimeError("socket is closed")
        return self.rx.get()

    def try_recvfrom(self):
        """Non-blocking receive; returns None when no datagram is queued."""
        return self.rx.try_get()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._layer._unbind(self.port)

    def _deliver(self, payload: bytes, src_ip: int, src_port: int, dst_ip: int) -> None:
        if self.rx_buffer_limit is not None and len(self.rx) >= self.rx_buffer_limit:
            self.rx_dropped += 1
            return
        self.rx.put((payload, src_ip, src_port, dst_ip))


class UdpLayer:
    """Per-node UDP port table."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self._sockets: dict[int, UdpSocket] = {}
        self._next_ephemeral = EPHEMERAL_PORT_BASE
        self.datagrams_received = 0
        self.port_unreachable_sent = 0

    def bind(self, port: int = 0) -> UdpSocket:
        if port == 0:
            port = self._allocate_port()
        if port in self._sockets:
            raise RuntimeError(f"UDP port {port} already bound on {self.node.name}")
        socket = UdpSocket(self, port)
        self._sockets[port] = socket
        return socket

    def _allocate_port(self) -> int:
        for _ in range(0xFFFF - EPHEMERAL_PORT_BASE):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > 0xFFFF:
                self._next_ephemeral = EPHEMERAL_PORT_BASE
            if port not in self._sockets:
                return port
        raise RuntimeError("out of ephemeral UDP ports")

    def _unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def receive(self, packet: IPv4Packet) -> None:
        try:
            datagram = UdpDatagram.decode(packet.payload, packet.src, packet.dst)
        except DecodeError:
            return
        socket = self._sockets.get(datagram.dst_port)
        if socket is None or socket.closed:
            self.port_unreachable_sent += 1
            error = IcmpMessage.dest_unreachable(UNREACH_PORT, packet.encode())
            self.node.send_ip(
                IPv4Packet(
                    src=packet.dst,
                    dst=packet.src,
                    proto=1,  # ICMP
                    payload=error.encode(),
                )
            )
            return
        self.datagrams_received += 1
        socket._deliver(datagram.payload, packet.src, datagram.src_port, packet.dst)
