"""A miniature but real TCP for the simulator.

Implements the subset of TCP that PacketLab's design depends on:

- three-way handshake, graceful FIN teardown, abortive RST,
- **RST generation for segments that match no connection** — the kernel
  behaviour that motivates the `ncap` consume/ignore/mirror verdicts (§3.1),
- cumulative ACKs with go-back-N retransmission, RFC 6298 RTO estimation,
- **receive-window flow control** — the mechanism behind the paper's claim
  that a full endpoint capture buffer creates back pressure on TCP (§3.1),
- zero-window probing and spontaneous window updates,
- slow start / congestion avoidance with fast retransmit.

Out-of-order segments are not queued (the receiver dup-ACKs and the sender
retransmits), which trades throughput under loss for simplicity without
changing correctness.

Application API is generator-based: inside a simulated process, use
``yield from conn.send(data)``, ``data = yield from conn.recv()``, etc.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.netsim.kernel import Event, Queue, Timer
from repro.packet.ipv4 import PROTO_TCP, IPv4Packet
from repro.packet.tcp import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    TcpSegment,
)
from repro.util.byteio import DecodeError

if TYPE_CHECKING:
    from repro.netsim.node import Node

SEQ_MOD = 1 << 32

DEFAULT_MSS = 1460
DEFAULT_RCV_BUFFER = 65535
DEFAULT_SND_BUFFER = 65536
MIN_RTO = 0.2
MAX_RTO = 60.0
INITIAL_RTO = 1.0
MAX_RETRIES = 8
TIME_WAIT_SECONDS = 1.0
PROBE_INTERVAL = 0.5
EPHEMERAL_PORT_BASE = 33000

# Connection states.
CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
CLOSING = "CLOSING"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"


def seq_lt(a: int, b: int) -> bool:
    """True if sequence number ``a`` precedes ``b`` (mod 2^32)."""
    return ((a - b) & (SEQ_MOD - 1)) > (SEQ_MOD >> 1)


def seq_le(a: int, b: int) -> bool:
    return a == b or seq_lt(a, b)


def seq_add(a: int, n: int) -> int:
    return (a + n) % SEQ_MOD


def seq_sub(a: int, b: int) -> int:
    """Distance from ``b`` to ``a`` (mod 2^32), assuming a >= b."""
    return (a - b) % SEQ_MOD


class TcpError(Exception):
    """Base class for TCP application errors."""


class ConnectionReset(TcpError):
    pass


class ConnectionRefused(TcpError):
    pass


class ConnectionTimeout(TcpError):
    pass


class TcpConnection:
    """One endpoint of a TCP connection."""

    def __init__(
        self,
        layer: "TcpLayer",
        local_ip: int,
        local_port: int,
        remote_ip: int,
        remote_port: int,
        rcv_buffer: int = DEFAULT_RCV_BUFFER,
        snd_buffer: int = DEFAULT_SND_BUFFER,
    ) -> None:
        self.layer = layer
        self.node = layer.node
        self.sim = layer.node.sim
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.state = CLOSED
        self.error: Optional[TcpError] = None

        self.mss = DEFAULT_MSS

        # Send state.
        self.iss = layer._next_isn()
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_max = self.iss  # highest sequence ever sent (for go-back-N)
        self.snd_wnd = 0  # peer-advertised window
        self.snd_buffer = bytearray()  # unacked + unsent bytes, from snd_una
        self.snd_buffer_capacity = snd_buffer
        self.fin_pending = False
        self.fin_seq: Optional[int] = None

        # Receive state.
        self.rcv_nxt = 0
        self.rcv_buffer = bytearray()  # in-order bytes not yet read by the app
        self.rcv_buffer_capacity = rcv_buffer
        self.rcv_eof = False
        self._advertised_zero = False

        # Congestion control.
        self.cwnd = 4 * self.mss
        self.ssthresh = 1 << 30
        self.dup_acks = 0

        # RTT estimation (RFC 6298).
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        self._rtt_sample_seq: Optional[int] = None
        self._rtt_sample_time = 0.0

        # Timers.
        self._rtx_timer: Optional[Timer] = None
        self._probe_timer: Optional[Timer] = None
        self._time_wait_timer: Optional[Timer] = None
        self._retries = 0

        # Waiters.
        self._established_event = self.sim.event(name=f"tcp-est:{self._label()}")
        self._closed_event = self.sim.event(name=f"tcp-closed:{self._label()}")
        self._send_waiters: list[Event] = []
        self._recv_waiters: list[Event] = []

        # Stats.
        self.retransmissions = 0
        self.segments_sent = 0
        self.segments_received = 0
        self.bytes_delivered = 0

    def _label(self) -> str:
        return f"{self.node.name}:{self.local_port}->{self.remote_port}"

    # ------------------------------------------------------------------
    # Application API (generator helpers; use with ``yield from``)
    # ------------------------------------------------------------------

    def wait_established(self) -> Generator:
        """Block until the handshake completes (or raise on failure)."""
        if self.state not in (ESTABLISHED,) and self.error is None:
            if not self._established_event.fired:
                yield self._established_event
        self._raise_if_error()
        return self

    def send(self, data: bytes) -> Generator:
        """Queue ``data`` for transmission, blocking while the send buffer
        is full (this is where TCP back pressure reaches the application)."""
        view = memoryview(bytes(data))
        while view:
            self._raise_if_error()
            if self.state not in (ESTABLISHED, CLOSE_WAIT):
                raise TcpError(f"send in state {self.state}")
            space = self.snd_buffer_capacity - len(self.snd_buffer)
            if space <= 0:
                waiter = self.sim.event(name=f"tcp-send-wait:{self._label()}")
                self._send_waiters.append(waiter)
                yield waiter
                continue
            chunk = view[:space]
            self.snd_buffer.extend(chunk)
            view = view[len(chunk):]
            self._try_transmit()
        return None

    def recv(self, max_bytes: int = 65536) -> Generator:
        """Read up to ``max_bytes``; returns ``b''`` at EOF."""
        while True:
            if self.rcv_buffer:
                count = min(max_bytes, len(self.rcv_buffer))
                data = bytes(self.rcv_buffer[:count])
                del self.rcv_buffer[:count]
                self._maybe_send_window_update()
                return data
            self._raise_if_error()
            if self.rcv_eof:
                return b""
            if self.state in (CLOSED, TIME_WAIT):
                return b""
            waiter = self.sim.event(name=f"tcp-recv-wait:{self._label()}")
            self._recv_waiters.append(waiter)
            yield waiter

    def recv_exactly(self, count: int) -> Generator:
        """Read exactly ``count`` bytes or raise on premature EOF."""
        parts: list[bytes] = []
        remaining = count
        while remaining > 0:
            chunk = yield from self.recv(remaining)
            if not chunk:
                raise TcpError(
                    f"connection closed with {remaining} of {count} bytes unread"
                )
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    def close(self) -> None:
        """Graceful close: FIN after all queued data is sent."""
        if self.state in (ESTABLISHED, SYN_RCVD):
            self.state = FIN_WAIT_1
        elif self.state == CLOSE_WAIT:
            self.state = LAST_ACK
        elif self.state in (SYN_SENT, CLOSED):
            self._teardown(None)
            return
        else:
            return
        self.fin_pending = True
        self._try_transmit()

    def abort(self) -> None:
        """Abortive close: send RST, drop everything."""
        if self.state not in (CLOSED, TIME_WAIT, LISTEN):
            self._emit(FLAG_RST | FLAG_ACK, seq=self.snd_nxt)
        self._teardown(ConnectionReset("connection aborted locally"))

    def wait_closed(self) -> Generator:
        if not self._closed_event.fired:
            yield self._closed_event
        return None

    @property
    def bytes_in_flight(self) -> int:
        return seq_sub(self.snd_nxt, self.snd_una)

    @property
    def advertised_window(self) -> int:
        return max(0, self.rcv_buffer_capacity - len(self.rcv_buffer))

    def _raise_if_error(self) -> None:
        if self.error is not None:
            raise self.error

    # ------------------------------------------------------------------
    # Connection startup
    # ------------------------------------------------------------------

    def start_connect(self) -> None:
        self.state = SYN_SENT
        self.snd_nxt = seq_add(self.iss, 1)
        self.snd_max = self.snd_nxt
        self._emit(FLAG_SYN, seq=self.iss, mss=self.mss)
        self._arm_rtx_timer()

    def start_accept(self, syn: TcpSegment) -> None:
        self.state = SYN_RCVD
        self.rcv_nxt = seq_add(syn.seq, 1)
        if syn.mss is not None:
            self.mss = min(self.mss, syn.mss)
            self.cwnd = 4 * self.mss
        self.snd_wnd = syn.window
        self.snd_nxt = seq_add(self.iss, 1)
        self.snd_max = self.snd_nxt
        self._emit(FLAG_SYN | FLAG_ACK, seq=self.iss, mss=self.mss)
        self._arm_rtx_timer()

    # ------------------------------------------------------------------
    # Segment transmission
    # ------------------------------------------------------------------

    def _emit(
        self,
        flags: int,
        seq: int,
        payload: bytes = b"",
        mss: Optional[int] = None,
    ) -> None:
        ack = self.rcv_nxt if flags & FLAG_ACK else 0
        window = self.advertised_window
        self._advertised_zero = window == 0
        segment = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=min(window, 0xFFFF),
            payload=payload,
            mss=mss,
        )
        packet = IPv4Packet(
            src=self.local_ip,
            dst=self.remote_ip,
            proto=PROTO_TCP,
            payload=segment.encode(self.local_ip, self.remote_ip),
        )
        self.segments_sent += 1
        self.node.send_ip(packet)

    def _send_window(self) -> int:
        return min(self.snd_wnd, self.cwnd)

    def _try_transmit(self) -> None:
        """Send as much queued data as the send and congestion windows allow."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1, LAST_ACK, CLOSING):
            return
        window = self._send_window()
        sent_any = False
        while True:
            in_flight = self.bytes_in_flight
            unsent_offset = in_flight  # snd_buffer starts at snd_una
            available = len(self.snd_buffer) - unsent_offset
            if available <= 0:
                break
            allowance = window - in_flight
            if allowance <= 0:
                break
            count = min(self.mss, available, allowance)
            chunk = bytes(self.snd_buffer[unsent_offset : unsent_offset + count])
            seq = self.snd_nxt
            self.snd_nxt = seq_add(self.snd_nxt, count)
            if seq_lt(self.snd_max, self.snd_nxt):
                self.snd_max = self.snd_nxt
            flags = FLAG_ACK | (FLAG_PSH if count == available else 0)
            self._emit(flags, seq=seq, payload=chunk)
            if self._rtt_sample_seq is None:
                self._rtt_sample_seq = self.snd_nxt
                self._rtt_sample_time = self.sim.now
            sent_any = True
        # FIN once the buffer is fully transmitted (or re-transmitted to
        # its old position after a go-back-N rewind).
        if self.fin_pending and len(self.snd_buffer) == self.bytes_in_flight:
            if self.fin_seq is None:
                self.fin_seq = self.snd_nxt
            if self.snd_nxt == self.fin_seq:
                self.snd_nxt = seq_add(self.snd_nxt, 1)
                if seq_lt(self.snd_max, self.snd_nxt):
                    self.snd_max = self.snd_nxt
                self._emit(FLAG_FIN | FLAG_ACK, seq=self.fin_seq)
                sent_any = True
        if sent_any:
            self._arm_rtx_timer()
        if (
            self.snd_wnd == 0
            and len(self.snd_buffer) > self.bytes_in_flight
            and self._probe_timer is None
        ):
            self._arm_probe_timer()

    def _retransmit(self) -> None:
        """RTO recovery.

        Handshake states resend their SYN/SYN-ACK. Data states use
        textbook go-back-N: rewind ``snd_nxt`` to ``snd_una`` (re-arming
        the FIN if it was in flight) and let :meth:`_try_transmit` resend
        under the collapsed congestion window — subsequent ACKs then clock
        out the rest through slow start.
        """
        if self.state == SYN_SENT:
            self._emit(FLAG_SYN, seq=self.iss, mss=self.mss)
            self.retransmissions += 1
            return
        if self.state == SYN_RCVD:
            self._emit(FLAG_SYN | FLAG_ACK, seq=self.iss, mss=self.mss)
            self.retransmissions += 1
            return
        if self.bytes_in_flight == 0:
            return
        self.retransmissions += 1
        self.snd_nxt = self.snd_una
        self._try_transmit()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _arm_rtx_timer(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
        self._rtx_timer = self.sim.schedule(self.rto, self._on_rtx_timeout)

    def _cancel_rtx_timer(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None

    def _on_rtx_timeout(self) -> None:
        if self.state in (CLOSED, TIME_WAIT):
            return
        outstanding = (
            self.bytes_in_flight > 0
            or self.state in (SYN_SENT, SYN_RCVD)
            or (self.fin_seq is not None and seq_lt(self.snd_una, self.snd_nxt))
        )
        if not outstanding:
            self._rtx_timer = None
            return
        self._retries += 1
        if self._retries > MAX_RETRIES:
            error: TcpError
            if self.state == SYN_SENT:
                error = ConnectionTimeout("connect timed out")
            else:
                error = ConnectionTimeout("too many retransmissions")
            self._teardown(error)
            return
        # Timeout: multiplicative backoff, collapse cwnd, invalidate sample.
        self.rto = min(self.rto * 2, MAX_RTO)
        self.ssthresh = max(2 * self.mss, self.bytes_in_flight // 2)
        self.cwnd = self.mss
        self.dup_acks = 0
        self._rtt_sample_seq = None
        self._retransmit()
        self._arm_rtx_timer()

    def _arm_probe_timer(self) -> None:
        if self._probe_timer is not None:
            self._probe_timer.cancel()
        self._probe_timer = self.sim.schedule(PROBE_INTERVAL, self._on_probe_timeout)

    def _on_probe_timeout(self) -> None:
        self._probe_timer = None
        if self.state in (CLOSED, TIME_WAIT):
            return
        if self.snd_wnd == 0 and len(self.snd_buffer) > self.bytes_in_flight:
            # Window probe: one byte past the window edge.
            offset = self.bytes_in_flight
            chunk = bytes(self.snd_buffer[offset : offset + 1])
            if chunk:
                self._emit(FLAG_ACK, seq=self.snd_nxt, payload=chunk)
            self._arm_probe_timer()

    # ------------------------------------------------------------------
    # Segment reception
    # ------------------------------------------------------------------

    def handle_segment(self, packet: IPv4Packet, segment: TcpSegment) -> None:
        self.segments_received += 1
        if segment.has(FLAG_RST):
            self._handle_rst(segment)
            return
        if self.state == SYN_SENT:
            self._handle_syn_sent(segment)
            return
        if self.state in (CLOSED,):
            return
        if self.state == TIME_WAIT:
            # Re-ACK whatever arrives during TIME_WAIT.
            if segment.seg_len > 0:
                self._emit(FLAG_ACK, seq=self.snd_nxt)
            return
        if segment.has(FLAG_SYN):
            # Duplicate SYN (lost SYN-ACK): re-send the SYN-ACK.
            if self.state == SYN_RCVD:
                self._emit(FLAG_SYN | FLAG_ACK, seq=self.iss, mss=self.mss)
            return
        if segment.has(FLAG_ACK):
            self._handle_ack(segment)
        if self.state in (CLOSED, TIME_WAIT):
            return
        if segment.payload or segment.has(FLAG_FIN):
            self._handle_data(segment)

    def _handle_rst(self, segment: TcpSegment) -> None:
        if self.state == SYN_SENT:
            if segment.has(FLAG_ACK) and segment.ack == self.snd_nxt:
                self._teardown(ConnectionRefused("connection refused (RST)"))
            return
        if self.state in (CLOSED,):
            return
        # Accept RSTs within the window (simplified check).
        self._teardown(ConnectionReset("connection reset by peer"))

    def _handle_syn_sent(self, segment: TcpSegment) -> None:
        if not (segment.has(FLAG_SYN) and segment.has(FLAG_ACK)):
            return
        if segment.ack != self.snd_nxt:
            self._emit(FLAG_RST, seq=segment.ack)
            return
        self.rcv_nxt = seq_add(segment.seq, 1)
        self.snd_una = segment.ack
        self.snd_wnd = segment.window
        if segment.mss is not None:
            self.mss = min(self.mss, segment.mss)
            self.cwnd = 4 * self.mss
        self._retries = 0
        self._cancel_rtx_timer()
        self.state = ESTABLISHED
        self._emit(FLAG_ACK, seq=self.snd_nxt)
        if not self._established_event.fired:
            self._established_event.fire(self)

    def _handle_ack(self, segment: TcpSegment) -> None:
        ack = segment.ack
        self.snd_wnd = segment.window
        if self.state == SYN_RCVD and ack == self.snd_nxt:
            self.state = ESTABLISHED
            self._retries = 0
            self._cancel_rtx_timer()
            self.layer._connection_established(self)
            if not self._established_event.fired:
                self._established_event.fire(self)
        if seq_lt(self.snd_una, ack) and seq_le(ack, self.snd_max):
            # An ACK above snd_nxt is possible after a go-back-N rewind
            # (it acknowledges data sent before the rewind): jump forward.
            if seq_lt(self.snd_nxt, ack):
                self.snd_nxt = ack
            acked = seq_sub(ack, self.snd_una)
            data_acked = min(acked, len(self.snd_buffer))
            del self.snd_buffer[:data_acked]
            self.snd_una = ack
            self._retries = 0
            self.dup_acks = 0
            # RTT sample (Karn: only for never-retransmitted samples).
            if (
                self._rtt_sample_seq is not None
                and seq_le(self._rtt_sample_seq, ack)
            ):
                self._update_rtt(self.sim.now - self._rtt_sample_time)
                self._rtt_sample_seq = None
            # Congestion window growth.
            if self.cwnd < self.ssthresh:
                self.cwnd += data_acked  # slow start
            elif self.cwnd > 0:
                self.cwnd += max(1, self.mss * self.mss // self.cwnd)
            # FIN acked?
            if self.fin_seq is not None and seq_lt(self.fin_seq, ack):
                self._on_fin_acked()
            if self.bytes_in_flight == 0:
                self._cancel_rtx_timer()
            else:
                self._arm_rtx_timer()
            self._wake(self._send_waiters)
            self._try_transmit()
        elif ack == self.snd_una and self.bytes_in_flight > 0:
            self.dup_acks += 1
            if self.dup_acks == 3:
                # Fast retransmit + simplified recovery.
                self.ssthresh = max(2 * self.mss, self.bytes_in_flight // 2)
                self.cwnd = self.ssthresh + 3 * self.mss
                self._rtt_sample_seq = None
                chunk = bytes(self.snd_buffer[: self.mss])
                if chunk:
                    self._emit(FLAG_ACK, seq=self.snd_una, payload=chunk)
                    self.retransmissions += 1
        else:
            # Window update or duplicate; may unblock transmission.
            self._try_transmit()
        if self.snd_wnd > 0 and self._probe_timer is not None:
            self._probe_timer.cancel()
            self._probe_timer = None
            self._try_transmit()

    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(max(self.srtt + 4 * self.rttvar, MIN_RTO), MAX_RTO)

    def _handle_data(self, segment: TcpSegment) -> None:
        seq = segment.seq
        payload = segment.payload
        # Trim any portion we already received.
        if seq_lt(seq, self.rcv_nxt):
            overlap = seq_sub(self.rcv_nxt, seq)
            if overlap >= len(payload) and not segment.has(FLAG_FIN):
                self._emit(FLAG_ACK, seq=self.snd_nxt)  # pure duplicate
                return
            payload = payload[overlap:]
            seq = self.rcv_nxt
        if seq != self.rcv_nxt:
            # Out of order: dup-ACK and drop (go-back-N receiver).
            self._emit(FLAG_ACK, seq=self.snd_nxt)
            return
        space = self.advertised_window
        accepted = payload[: max(0, space)]
        if accepted:
            self.rcv_buffer.extend(accepted)
            self.rcv_nxt = seq_add(self.rcv_nxt, len(accepted))
            self.bytes_delivered += len(accepted)
            self._wake(self._recv_waiters)
        fin_in_order = (
            segment.has(FLAG_FIN)
            and len(accepted) == len(payload)
            and not self.rcv_eof
        )
        if fin_in_order:
            self.rcv_nxt = seq_add(self.rcv_nxt, 1)
            self.rcv_eof = True
            self._wake(self._recv_waiters)
            self._on_fin_received()
        self._emit(FLAG_ACK, seq=self.snd_nxt)

    def _on_fin_received(self) -> None:
        if self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
        elif self.state == FIN_WAIT_1:
            self.state = CLOSING
        elif self.state == FIN_WAIT_2:
            self._enter_time_wait()

    def _on_fin_acked(self) -> None:
        if self.state == FIN_WAIT_1:
            self.state = FIN_WAIT_2
        elif self.state == CLOSING:
            self._enter_time_wait()
        elif self.state == LAST_ACK:
            self._teardown(None)

    def _enter_time_wait(self) -> None:
        self.state = TIME_WAIT
        self._cancel_rtx_timer()
        if self._time_wait_timer is not None:
            self._time_wait_timer.cancel()
        self._time_wait_timer = self.sim.schedule(
            TIME_WAIT_SECONDS, self._teardown, None
        )

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _teardown(self, error: Optional[TcpError]) -> None:
        if self.state == CLOSED and self._closed_event.fired:
            return
        self.state = CLOSED
        self.error = error
        self.rcv_eof = True
        self._cancel_rtx_timer()
        for timer in (self._probe_timer, self._time_wait_timer):
            if timer is not None:
                timer.cancel()
        self._probe_timer = None
        self._time_wait_timer = None
        self.layer._forget(self)
        if not self._established_event.fired:
            self._established_event.fire(self)
        self._wake(self._send_waiters)
        self._wake(self._recv_waiters)
        if not self._closed_event.fired:
            self._closed_event.fire(None)

    def _wake(self, waiters: list[Event]) -> None:
        pending, waiters[:] = list(waiters), []
        for event in pending:
            event.fire(None)

    def _maybe_send_window_update(self) -> None:
        """After the app drains the receive buffer, reopen the window."""
        if self.state in (CLOSED, TIME_WAIT, SYN_SENT):
            return
        if self._advertised_zero and self.advertised_window > 0:
            self._emit(FLAG_ACK, seq=self.snd_nxt)

    def __repr__(self) -> str:
        return f"<TcpConnection {self._label()} {self.state}>"


class TcpListener:
    """A passive socket; ``accept()`` yields established connections."""

    def __init__(self, layer: "TcpLayer", port: int,
                 rcv_buffer: int = DEFAULT_RCV_BUFFER) -> None:
        self.layer = layer
        self.port = port
        self.rcv_buffer = rcv_buffer
        self.backlog: Queue = Queue(layer.node.sim, name=f"accept:{port}")
        self.closed = False

    def accept(self) -> Event:
        """Returns an event firing with the next established connection."""
        return self.backlog.get()

    def close(self) -> None:
        self.closed = True
        self.layer._listeners.pop(self.port, None)


class TcpLayer:
    """Per-node TCP: demux table, listeners, RST generation."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self._connections: dict[tuple[int, int, int, int], TcpConnection] = {}
        self._listeners: dict[int, TcpListener] = {}
        self._pending: dict[tuple[int, int, int, int], TcpConnection] = {}
        self._next_port = EPHEMERAL_PORT_BASE
        self._isn_counter = 1000
        self.rsts_sent = 0

    def _next_isn(self) -> int:
        self._isn_counter = (self._isn_counter + 64001) % SEQ_MOD
        return self._isn_counter

    def _allocate_port(self) -> int:
        for _ in range(0xFFFF - EPHEMERAL_PORT_BASE):
            port = self._next_port
            self._next_port += 1
            if self._next_port > 0xFFFF:
                self._next_port = EPHEMERAL_PORT_BASE
            if port not in self._listeners and not any(
                key[1] == port for key in self._connections
            ):
                return port
        raise RuntimeError("out of ephemeral TCP ports")

    # -- application entry points ------------------------------------------

    def listen(self, port: int, rcv_buffer: int = DEFAULT_RCV_BUFFER) -> TcpListener:
        if port in self._listeners:
            raise RuntimeError(f"TCP port {port} already listening on {self.node.name}")
        listener = TcpListener(self, port, rcv_buffer=rcv_buffer)
        self._listeners[port] = listener
        return listener

    def connect(
        self,
        dst_ip: int,
        dst_port: int,
        src_port: int = 0,
        src_ip: int = 0,
        rcv_buffer: int = DEFAULT_RCV_BUFFER,
        snd_buffer: int = DEFAULT_SND_BUFFER,
    ) -> TcpConnection:
        """Initiate a connection (returns immediately; wait_established to
        block)."""
        local_ip = src_ip or self.node.primary_address()
        local_port = src_port or self._allocate_port()
        key = (local_ip, local_port, dst_ip, dst_port)
        if key in self._connections:
            raise RuntimeError(f"connection {key} already exists")
        conn = TcpConnection(
            self, local_ip, local_port, dst_ip, dst_port,
            rcv_buffer=rcv_buffer, snd_buffer=snd_buffer,
        )
        self._connections[key] = conn
        conn.start_connect()
        return conn

    def open_connection(self, dst_ip: int, dst_port: int, **kwargs) -> Generator:
        """Generator helper: connect and wait for establishment."""
        conn = self.connect(dst_ip, dst_port, **kwargs)
        yield from conn.wait_established()
        return conn

    # -- wire entry point ----------------------------------------------------

    def receive(self, packet: IPv4Packet) -> None:
        try:
            segment = TcpSegment.decode(packet.payload, packet.src, packet.dst)
        except DecodeError:
            return
        key = (packet.dst, segment.dst_port, packet.src, segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(packet, segment)
            return
        # New connection request?
        if segment.has(FLAG_SYN) and not segment.has(FLAG_ACK):
            listener = self._listeners.get(segment.dst_port)
            if listener is not None and not listener.closed:
                conn = TcpConnection(
                    self,
                    packet.dst,
                    segment.dst_port,
                    packet.src,
                    segment.src_port,
                    rcv_buffer=listener.rcv_buffer,
                )
                self._connections[key] = conn
                self._pending[key] = conn
                conn.start_accept(segment)
                return
        self._send_rst(packet, segment)

    def _connection_established(self, conn: TcpConnection) -> None:
        """A SYN_RCVD connection reached ESTABLISHED; hand to the listener."""
        key = (conn.local_ip, conn.local_port, conn.remote_ip, conn.remote_port)
        if key in self._pending:
            del self._pending[key]
            listener = self._listeners.get(conn.local_port)
            if listener is not None and not listener.closed:
                listener.backlog.put(conn)
            else:
                conn.abort()

    def _send_rst(self, packet: IPv4Packet, segment: TcpSegment) -> None:
        """RST for a segment that matches no socket — the kernel behaviour
        the paper's raw-mode consume filter exists to suppress."""
        if segment.has(FLAG_RST):
            return
        self.rsts_sent += 1
        if segment.has(FLAG_ACK):
            reply = TcpSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                seq=segment.ack,
                ack=0,
                flags=FLAG_RST,
                window=0,
            )
        else:
            reply = TcpSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                seq=0,
                ack=seq_add(segment.seq, segment.seg_len),
                flags=FLAG_RST | FLAG_ACK,
                window=0,
            )
        self.node.send_ip(
            IPv4Packet(
                src=packet.dst,
                dst=packet.src,
                proto=PROTO_TCP,
                payload=reply.encode(packet.dst, packet.src),
            )
        )

    def _forget(self, conn: TcpConnection) -> None:
        key = (conn.local_ip, conn.local_port, conn.remote_ip, conn.remote_port)
        self._connections.pop(key, None)
        self._pending.pop(key, None)
