"""Per-host clocks with offset and skew.

PacketLab deliberately does not require endpoints to keep accurate time
(§3.1 "Timekeeping"): the endpoint exposes its local clock as a raw 64-bit
value, and controllers that need accuracy must estimate the offset
themselves. To make that estimation problem real, every simulated host gets
its own clock with a configurable offset (seconds) and skew (fractional
rate error, e.g. 50e-6 for 50 ppm).
"""

from __future__ import annotations

from repro.netsim.kernel import Simulator

NANOSECONDS = 1_000_000_000

# All clocks read seconds since a common (arbitrary, large) epoch, like
# real wall clocks: the 64-bit nanosecond tick counter stays far from both
# zero and wraparound even for hosts whose clocks run behind.
CLOCK_EPOCH = 1_000_000_000.0


class HostClock:
    """A host's local clock, possibly offset and skewed from true time."""

    def __init__(self, sim: Simulator, offset: float = 0.0, skew: float = 0.0) -> None:
        self._sim = sim
        self.offset = offset
        self.skew = skew

    def now(self) -> float:
        """Local time in seconds (epoch-based)."""
        return self._sim.now * (1.0 + self.skew) + self.offset + CLOCK_EPOCH

    def ticks(self) -> int:
        """Local time as a 64-bit nanosecond tick counter.

        This is the value an endpoint exposes through ``mread`` at the
        clock offset of the info block.
        """
        return int(self.now() * NANOSECONDS) & 0xFFFFFFFFFFFFFFFF

    def to_true_time(self, local: float) -> float:
        """Invert the clock model: local seconds -> simulator seconds."""
        return (local - self.offset - CLOCK_EPOCH) / (1.0 + self.skew)

    def from_ticks(self, ticks: int) -> float:
        """Convert a tick counter value back to local seconds."""
        return ticks / NANOSECONDS
