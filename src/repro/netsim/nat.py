"""Port-translating NAT middlebox.

The paper (§3.1, Endpoint Information) points out that an endpoint behind a
NAT has an internal address different from its external one, which is why
the info block exposes the internal address to controllers crafting raw
packets. This module provides the NAT box that creates that situation in
the simulator.

Supported translations: UDP and TCP (port mapping) and ICMP echo
(identifier mapping). Inbound ICMP errors are translated by inspecting the
quoted original header, so traceroute from behind a NAT works.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.kernel import Simulator
from repro.netsim.node import Interface, Node
from repro.packet.icmp import IcmpMessage
from repro.packet.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP, IPv4Packet
from repro.packet.tcp import TcpSegment
from repro.packet.udp import UdpDatagram
from repro.util.byteio import DecodeError

from dataclasses import replace

_EXTERNAL_PORT_BASE = 20000


class NatBox(Node):
    """A router that NATs traffic from its inside interface."""

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name, forwarding=True)
        self.inside_iface: Optional[Interface] = None
        self.outside_iface: Optional[Interface] = None
        # (proto, inside_ip, inside_id) -> external_id
        self._out_map: dict[tuple[int, int, int], int] = {}
        # (proto, external_id) -> (inside_ip, inside_id)
        self._in_map: dict[tuple[int, int], tuple[int, int]] = {}
        self._next_external = _EXTERNAL_PORT_BASE
        self.translations_out = 0
        self.translations_in = 0
        self.untranslatable_dropped = 0

    def set_sides(self, inside: Interface, outside: Interface) -> None:
        self.inside_iface = inside
        self.outside_iface = outside

    def external_address(self) -> int:
        if self.outside_iface is None:
            raise RuntimeError("NAT outside interface not configured")
        return self.outside_iface.addr

    # -- mapping management -------------------------------------------------

    def _allocate_external(self, proto: int, inside_ip: int, inside_id: int) -> int:
        key = (proto, inside_ip, inside_id)
        existing = self._out_map.get(key)
        if existing is not None:
            return existing
        external = self._next_external
        self._next_external += 1
        if self._next_external > 0xFFFF:
            self._next_external = _EXTERNAL_PORT_BASE
        self._out_map[key] = external
        self._in_map[(proto, external)] = (inside_ip, inside_id)
        return external

    def lookup_inbound(self, proto: int, external_id: int) -> Optional[tuple[int, int]]:
        return self._in_map.get((proto, external_id))

    # -- packet path hook ------------------------------------------------------

    def receive(self, packet: IPv4Packet, iface: Optional[Interface]) -> None:
        if (
            iface is self.inside_iface
            and not self.is_local_address(packet.dst)
        ):
            translated = self._translate_outbound(packet)
            if translated is None:
                self.untranslatable_dropped += 1
                return
            super().receive(translated, iface)
            return
        if iface is self.outside_iface and packet.dst == self.external_address():
            translated = self._translate_inbound(packet)
            if translated is None:
                # Not a mapped flow: treat as traffic to the NAT box itself.
                super().receive(packet, iface)
                return
            super().receive(translated, iface)
            return
        super().receive(packet, iface)

    # -- translations -----------------------------------------------------------

    def _translate_outbound(self, packet: IPv4Packet) -> Optional[IPv4Packet]:
        external_ip = self.external_address()
        try:
            if packet.proto == PROTO_UDP:
                datagram = UdpDatagram.decode(packet.payload, packet.src, packet.dst)
                external = self._allocate_external(
                    PROTO_UDP, packet.src, datagram.src_port
                )
                rewritten = UdpDatagram(
                    src_port=external,
                    dst_port=datagram.dst_port,
                    payload=datagram.payload,
                )
                payload = rewritten.encode(external_ip, packet.dst)
            elif packet.proto == PROTO_TCP:
                segment = TcpSegment.decode(packet.payload, packet.src, packet.dst)
                external = self._allocate_external(
                    PROTO_TCP, packet.src, segment.src_port
                )
                rewritten = replace(segment, src_port=external)
                payload = rewritten.encode(external_ip, packet.dst)
            elif packet.proto == PROTO_ICMP:
                message = IcmpMessage.decode(packet.payload)
                if message.is_error:
                    return None  # outbound errors from inside hosts: drop
                external = self._allocate_external(
                    PROTO_ICMP, packet.src, message.echo_ident
                )
                rewritten = IcmpMessage(
                    icmp_type=message.icmp_type,
                    code=message.code,
                    rest=((external & 0xFFFF) << 16) | message.echo_seq,
                    body=message.body,
                )
                payload = rewritten.encode()
            else:
                return None
        except DecodeError:
            return None
        self.translations_out += 1
        return replace(packet, src=external_ip, payload=payload)

    def _translate_inbound(self, packet: IPv4Packet) -> Optional[IPv4Packet]:
        try:
            if packet.proto == PROTO_UDP:
                datagram = UdpDatagram.decode(packet.payload, packet.src, packet.dst)
                mapping = self.lookup_inbound(PROTO_UDP, datagram.dst_port)
                if mapping is None:
                    return None
                inside_ip, inside_port = mapping
                rewritten = UdpDatagram(
                    src_port=datagram.src_port,
                    dst_port=inside_port,
                    payload=datagram.payload,
                )
                payload = rewritten.encode(packet.src, inside_ip)
            elif packet.proto == PROTO_TCP:
                segment = TcpSegment.decode(packet.payload, packet.src, packet.dst)
                mapping = self.lookup_inbound(PROTO_TCP, segment.dst_port)
                if mapping is None:
                    return None
                inside_ip, inside_port = mapping
                rewritten = replace(segment, dst_port=inside_port)
                payload = rewritten.encode(packet.src, inside_ip)
            elif packet.proto == PROTO_ICMP:
                message = IcmpMessage.decode(packet.payload)
                if message.is_error:
                    return self._translate_inbound_error(packet, message)
                mapping = self.lookup_inbound(PROTO_ICMP, message.echo_ident)
                if mapping is None:
                    return None
                inside_ip, inside_ident = mapping
                rewritten = IcmpMessage(
                    icmp_type=message.icmp_type,
                    code=message.code,
                    rest=((inside_ident & 0xFFFF) << 16) | message.echo_seq,
                    body=message.body,
                )
                payload = rewritten.encode()
            else:
                return None
        except DecodeError:
            return None
        self.translations_in += 1
        return replace(packet, dst=inside_ip, payload=payload)

    def _translate_inbound_error(
        self, packet: IPv4Packet, message: IcmpMessage
    ) -> Optional[IPv4Packet]:
        """Translate an ICMP error by inspecting the quoted original packet.

        The quote contains the *outbound* packet as it appeared after NAT:
        src = external address, L4 source = external id. Map it back and
        rewrite both the outer destination and the quoted bytes.
        """
        quote = message.original_datagram()
        if len(quote) < 28:
            return None
        # Parse the quoted header fields directly; the quote is truncated to
        # header + 8 bytes, so a full decode would reject it.
        quoted_proto = quote[9]
        inner = quote[20:28]
        if quoted_proto in (PROTO_UDP, PROTO_TCP):
            external_id = (inner[0] << 8) | inner[1]
        elif quoted_proto == PROTO_ICMP:
            external_id = (inner[4] << 8) | inner[5]
        else:
            return None
        mapping = self.lookup_inbound(quoted_proto, external_id)
        if mapping is None:
            return None
        inside_ip, inside_id = mapping
        # Rewrite the quoted original: source IP back to inside, id back.
        rebuilt = bytearray(quote)
        rebuilt[12:16] = inside_ip.to_bytes(4, "big")
        if quoted_proto in (PROTO_UDP, PROTO_TCP):
            rebuilt[20:22] = inside_id.to_bytes(2, "big")
        else:
            rebuilt[24:26] = inside_id.to_bytes(2, "big")
        rewritten = IcmpMessage(
            icmp_type=message.icmp_type,
            code=message.code,
            rest=message.rest,
            body=bytes(rebuilt),
        )
        self.translations_in += 1
        return replace(packet, dst=inside_ip, payload=rewritten.encode())


def natted_topology(
    access_bandwidth_bps: float = 10e6,
    access_delay: float = 0.010,
    core_delay: float = 0.020,
):
    """An endpoint behind a NAT: endpoint -- nat -- gw -- {controller, target}.

    Returns ``(network, endpoint, nat, controller, target)``.
    """
    from repro.netsim.topology import Network

    net = Network()
    endpoint = net.add_host("endpoint")
    nat = net.add_node(NatBox(net.sim, "nat"))
    gateway = net.add_router("gw")
    controller = net.add_host("controller")
    target = net.add_host("target")
    net.link(nat, endpoint, bandwidth_bps=access_bandwidth_bps, delay=access_delay)
    net.link(gateway, nat, bandwidth_bps=1e9, delay=core_delay)
    net.link(gateway, controller, bandwidth_bps=1e9, delay=core_delay)
    net.link(gateway, target, bandwidth_bps=1e9, delay=core_delay)
    net.compute_routes()
    nat.set_sides(inside=nat.interfaces[0], outside=nat.interfaces[1])
    return net, endpoint, nat, controller, target
