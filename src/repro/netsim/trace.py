"""Packet tracing: ground-truth capture of link activity.

Tests and benchmarks attach a :class:`PacketTrace` to links to obtain the
simulator's own record of what was transmitted — the ground truth against
which PacketLab's measured results (bandwidth, paths, drop counts) are
validated.

Compatibility shim: :class:`PacketTrace` predates the unified
observability layer (:mod:`repro.obs`) and is now a thin adapter — each
link observation is forwarded onto the link's obs event bus as a
``links.trace`` event *and* kept as a legacy :class:`TraceRecord` so the
existing selection API (``select``/``delivered_bytes``/``throughput_bps``)
keeps working. New code that only needs aggregate accounting should read
the ``links.*`` metrics from ``sim.obs`` instead of attaching a trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.netsim.links import Link, LinkDirection
from repro.packet.ipv4 import IPv4Packet


@dataclass(frozen=True)
class TraceRecord:
    time: float
    direction_name: str
    packet: IPv4Packet
    outcome: str  # "sent" | "delivered" | "drop-queue" | "drop-loss"


class PacketTrace:
    """Collects :class:`TraceRecord`s from observed links."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def attach(self, link: Link) -> "PacketTrace":
        link.add_observer(self._observe)
        return self

    def attach_direction(self, direction: LinkDirection) -> "PacketTrace":
        direction.add_observer(self._observe)
        return self

    def detach_direction(self, direction: LinkDirection) -> "PacketTrace":
        direction.remove_observer(self._observe)
        return self

    def _observe(
        self, time: float, direction: LinkDirection, packet: IPv4Packet, outcome: str
    ) -> None:
        self.records.append(TraceRecord(time, direction.name, packet, outcome))
        obs = direction._sim.obs
        if obs.enabled:
            obs.emit(
                "links", "trace", link=direction.name, outcome=outcome,
                proto=packet.proto, src=packet.src, dst=packet.dst,
                size=packet.total_length,
            )

    def clear(self) -> None:
        self.records.clear()

    def select(
        self,
        outcome: Optional[str] = None,
        proto: Optional[int] = None,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        result = []
        for record in self.records:
            if outcome is not None and record.outcome != outcome:
                continue
            if proto is not None and record.packet.proto != proto:
                continue
            if src is not None and record.packet.src != src:
                continue
            if dst is not None and record.packet.dst != dst:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def delivered_bytes(self, **kwargs) -> int:
        return sum(
            record.packet.total_length
            for record in self.select(outcome="delivered", **kwargs)
        )

    def throughput_bps(self, records: Iterable[TraceRecord]) -> float:
        """Observed rate over the span of the given delivered records."""
        records = list(records)
        if len(records) < 2:
            return 0.0
        span = records[-1].time - records[0].time
        if span <= 0:
            return 0.0
        total_bits = sum(record.packet.total_length * 8 for record in records[1:])
        return total_bits / span
