"""Simulated nodes (hosts and routers) and their interfaces."""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.clock import HostClock
from repro.netsim.kernel import Simulator
from repro.netsim.links import LinkDirection
from repro.netsim.stack.icmp import IcmpLayer
from repro.netsim.stack.ip import IpLayer
from repro.netsim.stack.tcp import TcpLayer
from repro.netsim.stack.udp import UdpLayer
from repro.packet.ipv4 import IPv4Packet
from repro.util.inet import format_ip, ip_in_network


class Interface:
    """A network interface: an address and an attached link direction."""

    def __init__(self, node: "Node", name: str) -> None:
        self.node = node
        self.name = name
        self.addr = 0
        self.prefix_len = 32
        self._tx: Optional[LinkDirection] = None

    @property
    def full_name(self) -> str:
        return f"{self.node.name}.{self.name}"

    @property
    def connected(self) -> bool:
        return self._tx is not None

    def configure(self, addr: int, prefix_len: int = 24) -> "Interface":
        if self.addr:
            self.node._local_addrs.discard(self.addr)
        self.addr = addr
        self.prefix_len = prefix_len
        if addr:
            self.node._local_addrs.add(addr)
        return self

    def attach(self, tx: LinkDirection) -> None:
        if self._tx is not None:
            raise RuntimeError(f"interface {self.full_name} already attached")
        self._tx = tx

    def send(self, packet: IPv4Packet) -> bool:
        if self._tx is None:
            raise RuntimeError(f"interface {self.full_name} not attached to a link")
        return self._tx.transmit(packet)

    def deliver(self, packet: IPv4Packet) -> None:
        self.node.receive(packet, self)

    def __repr__(self) -> str:
        return f"<Interface {self.full_name} {format_ip(self.addr)}/{self.prefix_len}>"


class Route:
    """A routing table entry (longest-prefix match, point-to-point links)."""

    __slots__ = ("prefix", "prefix_len", "iface")

    def __init__(self, prefix: int, prefix_len: int, iface: Interface) -> None:
        self.prefix = prefix
        self.prefix_len = prefix_len
        self.iface = iface

    def matches(self, addr: int) -> bool:
        return ip_in_network(addr, self.prefix, self.prefix_len)


class Node:
    """A simulated host or router with a full mini TCP/IP stack."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        forwarding: bool = False,
        clock_offset: float = 0.0,
        clock_skew: float = 0.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.forwarding = forwarding
        self.clock = HostClock(sim, offset=clock_offset, skew=clock_skew)
        self.interfaces: list[Interface] = []
        self.routes: list[Route] = []
        # Exact-match (/32) next-hop table: one dict probe replaces the
        # linear longest-prefix scan on the forwarding fast path. Filled
        # by Network.compute_routes / fleet route installation.
        self.route_table: dict[int, Interface] = {}
        self._local_addrs: set[int] = set()
        self.ip = IpLayer(self)
        self.icmp = IcmpLayer(self)
        self.udp = UdpLayer(self)
        self.tcp = TcpLayer(self)

    # -- configuration ------------------------------------------------------

    def add_interface(self, name: Optional[str] = None) -> Interface:
        iface = Interface(self, name or f"eth{len(self.interfaces)}")
        self.interfaces.append(iface)
        return iface

    def add_route(self, prefix: int, prefix_len: int, iface: Interface) -> None:
        if prefix_len == 32:
            self.route_table[prefix] = iface
        else:
            self.routes.append(Route(prefix, prefix_len, iface))

    def add_exact_route(self, addr: int, iface: Interface) -> None:
        """Install a host (/32) route in the exact-match table."""
        self.route_table[addr] = iface

    def set_default_route(self, iface: Interface) -> None:
        self.add_route(0, 0, iface)

    # -- address helpers ----------------------------------------------------

    def local_addresses(self) -> list[int]:
        return [iface.addr for iface in self.interfaces if iface.addr]

    def is_local_address(self, addr: int) -> bool:
        return addr in self._local_addrs

    def primary_address(self) -> int:
        for iface in self.interfaces:
            if iface.addr:
                return iface.addr
        return 0

    def lookup_route(self, dst: int) -> Optional[Interface]:
        """True longest-prefix-match across connected networks and the
        routing table (a /32 host route beats a directly connected /30,
        so globally computed shortest paths override link adjacency)."""
        exact = self.route_table.get(dst)
        if exact is not None:
            return exact
        best_iface: Optional[Interface] = None
        best_len = -1
        for iface in self.interfaces:
            if (
                iface.addr
                and iface.connected
                and iface.prefix_len > best_len
                and ip_in_network(dst, iface.addr, iface.prefix_len)
            ):
                best_iface = iface
                best_len = iface.prefix_len
        for route in self.routes:
            if route.prefix_len > best_len and route.matches(dst):
                best_iface = route.iface
                best_len = route.prefix_len
        return best_iface

    # -- packet paths ---------------------------------------------------------

    def receive(self, packet: IPv4Packet, iface: Optional[Interface]) -> None:
        self.ip.receive(packet, iface)

    def local_deliver(self, packet: IPv4Packet) -> None:
        """Dispatch a packet addressed to this node to its L4 handler."""
        from repro.packet.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP

        if packet.proto == PROTO_ICMP:
            self.icmp.receive(packet)
        elif packet.proto == PROTO_UDP:
            self.udp.receive(packet)
        elif packet.proto == PROTO_TCP:
            self.tcp.receive(packet)
        # Unknown protocols are dropped silently (matching common kernels
        # when no raw listener exists).

    def send_ip(self, packet: IPv4Packet) -> bool:
        return self.ip.send(packet)

    def spawn(self, gen, name: str = "") -> "object":
        """Start an application process on this node."""
        return self.sim.spawn(gen, name=name or f"{self.name}-app")

    def __repr__(self) -> str:
        kind = "router" if self.forwarding else "host"
        return f"<Node {self.name} ({kind})>"
