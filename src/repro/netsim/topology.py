"""Network assembly: nodes, links, addressing, and route computation.

A :class:`Network` owns a simulator and a set of nodes. Links get /30
subnets allocated from 10.0.0.0/8 automatically; :meth:`Network.compute_routes`
runs Dijkstra (weight = link propagation delay) and installs host routes on
every node, so any topology becomes fully routable with one call.
"""

from __future__ import annotations

import heapq
from random import Random
from typing import Optional

from repro.netsim.kernel import Simulator
from repro.netsim.links import Link
from repro.netsim.node import Interface, Node
from repro.util.inet import format_ip, parse_ip

_BASE_NETWORK = parse_ip("10.0.0.0")


class Network:
    """A simulated network: simulator + nodes + links + addressing."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim or Simulator()
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        self._next_subnet = 0

    # -- node management ----------------------------------------------------

    def add_host(
        self,
        name: str,
        clock_offset: float = 0.0,
        clock_skew: float = 0.0,
    ) -> Node:
        return self._add_node(
            Node(
                self.sim,
                name,
                forwarding=False,
                clock_offset=clock_offset,
                clock_skew=clock_skew,
            )
        )

    def add_router(self, name: str) -> Node:
        return self._add_node(Node(self.sim, name, forwarding=True))

    def add_node(self, node: Node) -> Node:
        """Register an externally constructed node (e.g. a NAT box)."""
        return self._add_node(node)

    def _add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node
        return node

    def __getitem__(self, name: str) -> Node:
        return self.nodes[name]

    # -- links ----------------------------------------------------------------

    def allocate_subnet(self) -> int:
        """Allocate the next /30 from 10.0.0.0/8."""
        subnet = _BASE_NETWORK + self._next_subnet * 4
        self._next_subnet += 1
        if subnet >= parse_ip("11.0.0.0"):
            raise RuntimeError("subnet pool exhausted")
        return subnet

    def link(
        self,
        a: Node | str,
        b: Node | str,
        bandwidth_bps: float = 100e6,
        delay: float = 0.001,
        queue_bytes: int = 256 * 1024,
        loss_rate: float = 0.0,
        seed: int = 0,
        bandwidth_up_bps: Optional[float] = None,
        delay_up: Optional[float] = None,
        jitter: float = 0.0,
    ) -> Link:
        """Create a duplex link with automatically assigned /30 addresses."""
        node_a = self.nodes[a] if isinstance(a, str) else a
        node_b = self.nodes[b] if isinstance(b, str) else b
        subnet = self.allocate_subnet()
        iface_a = node_a.add_interface().configure(subnet + 1, 30)
        iface_b = node_b.add_interface().configure(subnet + 2, 30)
        link = Link(
            self.sim,
            iface_a,
            iface_b,
            bandwidth_bps=bandwidth_bps,
            delay=delay,
            queue_bytes=queue_bytes,
            loss_rate=loss_rate,
            seed=seed,
            bandwidth_up_bps=bandwidth_up_bps,
            delay_up=delay_up,
            jitter=jitter,
        )
        self.links.append(link)
        return link

    # -- routing ----------------------------------------------------------------

    def compute_routes(self) -> None:
        """Install shortest-path (by propagation delay) host routes
        everywhere.

        Routes land in each node's exact-match ``route_table`` (one dict
        probe per forwarded packet). Purpose-built fleet topologies skip
        this generic all-pairs pass; see :func:`fleet_topology`.
        """
        adjacency = self._build_adjacency()
        for name, node in self.nodes.items():
            first_hop = self._dijkstra_first_hops(name, adjacency)
            node.routes.clear()
            node.route_table.clear()
            table = node.route_table
            for dest_name, iface in first_hop.items():
                if dest_name == name:
                    continue
                for dest_iface in self.nodes[dest_name].interfaces:
                    if dest_iface.addr:
                        table[dest_iface.addr] = iface

    def _build_adjacency(self) -> dict[str, list[tuple[str, float, Interface]]]:
        adjacency: dict[str, list[tuple[str, float, Interface]]] = {
            name: [] for name in self.nodes
        }
        for link in self.links:
            iface_a = link.reverse.dst_iface
            iface_b = link.forward.dst_iface
            assert iface_a is not None and iface_b is not None
            adjacency[iface_a.node.name].append(
                (iface_b.node.name, link.forward.delay, iface_a)
            )
            adjacency[iface_b.node.name].append(
                (iface_a.node.name, link.reverse.delay, iface_b)
            )
        return adjacency

    def _dijkstra_first_hops(
        self,
        source: str,
        adjacency: dict[str, list[tuple[str, float, Interface]]],
    ) -> dict[str, Interface]:
        """Shortest paths from ``source``; returns dest -> first-hop iface."""
        dist: dict[str, float] = {source: 0.0}
        first_hop: dict[str, Interface] = {}
        heap: list[tuple[float, str]] = [(0.0, source)]
        visited: set[str] = set()
        while heap:
            cost, current = heapq.heappop(heap)
            if current in visited:
                continue
            visited.add(current)
            for neighbor, weight, out_iface in adjacency[current]:
                candidate = cost + weight
                if candidate < dist.get(neighbor, float("inf")):
                    dist[neighbor] = candidate
                    first_hop[neighbor] = (
                        out_iface if current == source else first_hop[current]
                    )
                    heapq.heappush(heap, (candidate, neighbor))
        return first_hop

    # -- convenience topologies ---------------------------------------------

    def path_to(self, src: Node | str, dst: Node | str) -> list[str]:
        """Ground-truth router path between two nodes (for traceroute
        validation)."""
        src_node = self.nodes[src] if isinstance(src, str) else src
        dst_node = self.nodes[dst] if isinstance(dst, str) else dst
        path = [src_node.name]
        current = src_node
        guard = 0
        while current is not dst_node:
            iface = current.lookup_route(dst_node.primary_address())
            if iface is None or iface._tx is None:
                raise RuntimeError(
                    f"no route from {current.name} to {dst_node.name}"
                )
            next_iface = iface._tx.dst_iface
            assert next_iface is not None
            current = next_iface.node
            path.append(current.name)
            guard += 1
            if guard > 64:
                raise RuntimeError("routing loop detected")
        return path

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)


def linear_topology(
    hop_count: int,
    link_delay: float = 0.005,
    bandwidth_bps: float = 100e6,
    network: Optional[Network] = None,
) -> tuple[Network, Node, Node]:
    """``src -- r1 -- r2 -- ... -- rN -- dst`` chain, routed and ready.

    Returns ``(network, src_host, dst_host)``.
    """
    net = network or Network()
    src = net.add_host("src")
    previous: Node = src
    for index in range(hop_count):
        router = net.add_router(f"r{index + 1}")
        net.link(previous, router, delay=link_delay, bandwidth_bps=bandwidth_bps)
        previous = router
    dst = net.add_host("dst")
    net.link(previous, dst, delay=link_delay, bandwidth_bps=bandwidth_bps)
    net.compute_routes()
    return net, src, dst


def access_topology(
    access_bandwidth_bps: float = 10e6,
    access_delay: float = 0.010,
    core_delay: float = 0.020,
    core_bandwidth_bps: float = 1e9,
    uplink_bandwidth_bps: Optional[float] = None,
    access_jitter: float = 0.0,
    network: Optional[Network] = None,
) -> tuple[Network, Node, Node, Node]:
    """The paper's deployment shape: an endpoint behind a constrained access
    link, a controller and a measurement target on the far side of a core.

    ::

        endpoint --(access link)-- gw --(core)-- controller
                                      \\--(core)-- target

    Returns ``(network, endpoint_host, controller_host, target_host)``. The
    access link is asymmetric when ``uplink_bandwidth_bps`` is given
    (``bandwidth`` = downstream to the endpoint, ``uplink`` = upstream).
    """
    net = network or Network()
    endpoint = net.add_host("endpoint")
    gateway = net.add_router("gw")
    controller = net.add_host("controller")
    target = net.add_host("target")
    net.link(
        gateway,
        endpoint,
        bandwidth_bps=access_bandwidth_bps,
        delay=access_delay,
        bandwidth_up_bps=uplink_bandwidth_bps,
        jitter=access_jitter,
    )
    net.link(gateway, controller, bandwidth_bps=core_bandwidth_bps, delay=core_delay)
    net.link(gateway, target, bandwidth_bps=core_bandwidth_bps, delay=core_delay)
    net.compute_routes()
    return net, endpoint, controller, target


def fleet_topology(
    endpoint_count: int,
    kind: str = "star",
    fanout: int = 8,
    access_bandwidth_bps: float = 10e6,
    access_delay: float = 0.010,
    access_delay_spread: float = 0.5,
    core_delay: float = 0.005,
    core_bandwidth_bps: float = 1e9,
    seed: int = 0,
    network: Optional[Network] = None,
) -> tuple[Network, list[Node], Node, Node]:
    """A measurement *fleet*: many endpoint hosts behind a shared core.

    Three shapes, all with the controller and measurement target on the
    core side (the PacketLab deployment model scaled out):

    - ``star`` — every endpoint hangs off one core router,
    - ``tree`` — an N-ary router tree (``fanout`` children per router);
      endpoints attach round-robin to the deepest routers,
    - ``mesh`` — a router ring with cross-chords; endpoints distribute
      round-robin over the ring.

    Access-link delays vary per endpoint by ``±access_delay_spread``
    (fractional, seeded) so fleet-wide latency distributions are
    non-degenerate yet fully deterministic.

    Returns ``(network, endpoint_hosts, controller_host, target_host)``.
    """
    if endpoint_count < 1:
        raise ValueError(f"endpoint_count must be >= 1, got {endpoint_count}")
    net = network or Network()
    # The specialized route install below assumes it sees every node and
    # link; a pre-populated network falls back to the generic all-pairs
    # pass at the end.
    preexisting = bool(net.nodes) or bool(net.links)
    rng = Random(seed)

    # Parent -> child edges recorded during construction; the specialized
    # route installers consume these instead of re-deriving the shape.
    edges: list[tuple[Node, Node, Interface, Interface]] = []

    def attach(parent: Node, child: Node, **kwargs) -> None:
        link = net.link(parent, child, **kwargs)
        parent_iface = link.reverse.dst_iface
        child_iface = link.forward.dst_iface
        assert parent_iface is not None and child_iface is not None
        edges.append((parent, child, parent_iface, child_iface))

    def access_delay_for() -> float:
        spread = max(0.0, min(access_delay_spread, 0.95))
        return access_delay * (1.0 + rng.uniform(-spread, spread))

    routers: list[Node] = []
    if kind == "star":
        core = net.add_router("core")
        attach_points = [core]
    elif kind == "tree":
        fanout = max(2, fanout)
        core = net.add_router("core")
        level = [core]
        depth = 0
        # Grow until the deepest level has a router per `fanout` endpoints.
        leaves_needed = max(1, -(-endpoint_count // fanout))
        while len(level) < leaves_needed:
            depth += 1
            next_level = []
            for parent in level:
                for child_index in range(fanout):
                    child = net.add_router(
                        f"t{depth}-{parent.name}-{child_index}"
                    )
                    attach(parent, child,
                           bandwidth_bps=core_bandwidth_bps,
                           delay=core_delay)
                    next_level.append(child)
                    if len(next_level) >= leaves_needed:
                        break
                if len(next_level) >= leaves_needed:
                    break
            level = next_level
        attach_points = level
    elif kind == "mesh":
        ring_size = max(3, fanout)
        routers = [net.add_router(f"m{index}") for index in range(ring_size)]
        for index, router in enumerate(routers):
            net.link(router, routers[(index + 1) % ring_size],
                     bandwidth_bps=core_bandwidth_bps, delay=core_delay)
        # Chords halve the ring diameter.
        if ring_size >= 5:
            half = ring_size // 2
            for index in range(0, half, 2):
                net.link(routers[index], routers[index + half],
                         bandwidth_bps=core_bandwidth_bps, delay=core_delay)
        core = routers[0]
        attach_points = routers
    else:
        raise ValueError(f"unknown fleet topology kind: {kind!r}")

    controller = net.add_host("controller")
    target = net.add_host("target")
    attach(core, controller, bandwidth_bps=core_bandwidth_bps,
           delay=core_delay)
    target_attach = attach_points[len(attach_points) // 2]
    attach(target_attach, target, bandwidth_bps=core_bandwidth_bps,
           delay=core_delay)

    endpoints = []
    for index in range(endpoint_count):
        host = net.add_host(f"ep{index}")
        attach(
            attach_points[index % len(attach_points)],
            host,
            bandwidth_bps=access_bandwidth_bps,
            delay=access_delay_for(),
        )
        endpoints.append(host)
    if preexisting:
        net.compute_routes()
    elif kind == "mesh":
        _install_mesh_routes(net, routers, edges)
    else:
        _install_tree_routes(net, core, edges)
    return net, endpoints, controller, target


def _install_tree_routes(
    net: Network,
    root: Node,
    edges: list[tuple[Node, Node, Interface, Interface]],
) -> None:
    """Shortest-path routes for a pure tree in O(nodes * depth).

    One DFS from the root installs, at every router, exact-match routes
    for each child subtree's addresses; every non-root node also gets a
    default route toward its parent. At each hop the exact table wins
    when the destination is below, the default points up otherwise —
    exactly the shortest path in a tree, without the per-node Dijkstra
    the generic :meth:`Network.compute_routes` pays (quadratic at fleet
    scale).
    """
    children: dict[str, list[tuple[Node, Interface]]] = {}
    uplinks: list[tuple[Node, Interface]] = []
    for parent, child, parent_iface, child_iface in edges:
        children.setdefault(parent.name, []).append((child, parent_iface))
        uplinks.append((child, child_iface))

    def install(node: Node) -> list[int]:
        addrs = [iface.addr for iface in node.interfaces if iface.addr]
        table = node.route_table
        for child, parent_iface in children.get(node.name, ()):
            for addr in install(child):
                table[addr] = parent_iface
                addrs.append(addr)
        return addrs

    install(root)
    for child, child_iface in uplinks:
        child.set_default_route(child_iface)


def _install_mesh_routes(
    net: Network,
    routers: list[Node],
    host_edges: list[tuple[Node, Node, Interface, Interface]],
) -> None:
    """Routes for a router mesh with single-homed hosts hanging off it.

    Dijkstra runs once per *router* (the ring stays small regardless of
    endpoint count) instead of once per node; hosts just default-route to
    their attach router.
    """
    adjacency = net._build_adjacency()
    for router in routers:
        first_hop = net._dijkstra_first_hops(router.name, adjacency)
        table = router.route_table
        for dest_name, iface in first_hop.items():
            if dest_name == router.name:
                continue
            for dest_iface in net.nodes[dest_name].interfaces:
                if dest_iface.addr:
                    table[dest_iface.addr] = iface
    for _parent, host, _parent_iface, host_iface in host_edges:
        host.set_default_route(host_iface)


def describe(network: Network) -> str:
    """Human-readable topology dump (handy in examples)."""
    lines = []
    for name, node in sorted(network.nodes.items()):
        kind = "router" if node.forwarding else "host"
        addrs = ", ".join(
            f"{iface.name}={format_ip(iface.addr)}/{iface.prefix_len}"
            for iface in node.interfaces
            if iface.addr
        )
        lines.append(f"{name} ({kind}): {addrs}")
    return "\n".join(lines)
