"""Discrete-event network simulator: the substrate under PacketLab.

The paper's endpoints, controllers, and rendezvous servers all run as
processes on simulated hosts connected by links with real bandwidth, delay,
queueing, and loss — so every PacketLab mechanism (scheduled sends, capture
buffering, raw-mode filtering, clock sync) is exercised against genuine
packet dynamics.
"""

from repro.netsim.clock import HostClock
from repro.netsim.faults import DirectionFaults, FaultPlan
from repro.netsim.kernel import Event, Process, Queue, SimError, Simulator, all_of, any_of
from repro.netsim.links import Link, LinkDirection, LinkStats
from repro.netsim.nat import NatBox, natted_topology
from repro.netsim.node import Interface, Node
from repro.netsim.topology import (
    Network,
    access_topology,
    describe,
    fleet_topology,
    linear_topology,
)
from repro.netsim.trace import PacketTrace, TraceRecord

__all__ = [
    "DirectionFaults",
    "Event",
    "FaultPlan",
    "HostClock",
    "Interface",
    "Link",
    "LinkDirection",
    "LinkStats",
    "NatBox",
    "Network",
    "Node",
    "PacketTrace",
    "Process",
    "Queue",
    "SimError",
    "Simulator",
    "TraceRecord",
    "access_topology",
    "all_of",
    "any_of",
    "describe",
    "fleet_topology",
    "linear_topology",
    "natted_topology",
]
