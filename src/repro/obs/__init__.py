"""Unified observability: one hub per simulator for metrics, events, spans.

Every :class:`~repro.netsim.kernel.Simulator` owns an
:class:`Observability` instance (``sim.obs``), disabled by default.
Components reach their layer's telemetry through it:

    obs = sim.obs
    if obs.enabled:
        obs.counter("links.delivered", link=self.name).inc()
        obs.emit("links", "drop", link=self.name, reason="queue")

The ``enabled`` guard is the contract: with observability off, the only
cost at any instrumentation point is one attribute load and one branch —
no dict construction, no string formatting, no metric lookups. With it
on, counters/gauges/histograms accumulate under virtual time, events fan
out to sinks, and :meth:`Observability.telemetry_snapshot` bundles the
whole state for export (see ``Testbed.run_experiment(collect_telemetry=
True)``).

Layer prefixes used across the repo: ``kernel``, ``links``, ``endpoint``,
``controller``, ``rendezvous``, ``filtervm``, ``core``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs.bus import EventBus, ObsEvent, Sink
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_BUCKETS,
)
from repro.obs.sinks import (
    JsonlSink,
    RingBufferSink,
    event_to_json_dict,
    json_safe,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "Observability",
    "Span",
    "TelemetrySnapshot",
    "EventBus",
    "ObsEvent",
    "Sink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "RingBufferSink",
    "JsonlSink",
    "read_jsonl",
    "write_jsonl",
    "json_safe",
    "event_to_json_dict",
]


class Span:
    """A begin/end pair around a logical operation (an experiment session).

    Emits ``<name>.begin`` / ``<name>.end`` events and records the duration
    in a ``<layer>.<name>_duration_s`` histogram. Create via
    :meth:`Observability.span`; idempotent ``end``.
    """

    __slots__ = ("_obs", "layer", "name", "fields", "start", "ended")

    def __init__(self, obs: "Observability", layer: str, name: str,
                 fields: dict[str, Any]) -> None:
        self._obs = obs
        self.layer = layer
        self.name = name
        self.fields = fields
        self.start = obs.now()
        self.ended = False
        obs.emit(layer, f"{name}.begin", **fields)

    def end(self, **extra: Any) -> float:
        """Close the span; returns its duration in virtual seconds."""
        if self.ended:
            return 0.0
        self.ended = True
        duration = self._obs.now() - self.start
        self._obs.emit(
            self.layer, f"{self.name}.end",
            duration=duration, **{**self.fields, **extra},
        )
        self._obs.histogram(f"{self.layer}.{self.name}_duration_s").observe(
            duration
        )
        return duration


class TelemetrySnapshot:
    """Bundled metrics + events from one observed run.

    Returned by ``Testbed.run_experiment(..., collect_telemetry=True)``.
    """

    def __init__(self, time: float, metrics: list[dict],
                 events: list[ObsEvent]) -> None:
        self.time = time
        self.metrics = metrics
        self.events = events

    def layers(self) -> set[str]:
        """Layer prefixes with at least one active metric."""
        active: set[str] = set()
        for metric in self.metrics:
            if metric["kind"] == "counter" and metric["value"] == 0:
                continue
            if metric["kind"] == "histogram" and metric["count"] == 0:
                continue
            if metric["kind"] == "gauge" and metric["last_time"] is None:
                continue
            active.add(metric["name"].split(".", 1)[0])
        return active

    def metric(self, name: str, **labels: str) -> Optional[dict]:
        for metric in self.metrics:
            if metric["name"] != name:
                continue
            if labels and metric["labels"] != labels:
                continue
            return metric
        return None

    def counter_total(self, name: str) -> float:
        """Sum a counter across label sets (0.0 when absent)."""
        return sum(
            metric["value"]
            for metric in self.metrics
            if metric["kind"] == "counter" and metric["name"] == name
        )

    def to_jsonl_lines(self) -> list[dict]:
        lines: list[dict] = [
            {"kind": "snapshot", "time": self.time,
             "metrics": len(self.metrics), "events": len(self.events)}
        ]
        for metric in self.metrics:
            lines.append(json_safe(metric))
        for event in self.events:
            lines.append(event_to_json_dict(event))
        return lines

    def export_jsonl(self, path: str) -> int:
        """Write the snapshot to ``path`` as JSONL; returns line count."""
        return write_jsonl(path, self.to_jsonl_lines())


class Observability:
    """Per-simulator observability hub: metric registry + event bus.

    ``enabled`` starts False; flipping it on makes every guarded
    instrumentation point across the stack live. The clock is bound by the
    owning simulator so all telemetry is stamped with virtual time.
    """

    def __init__(self, enabled: bool = False,
                 time_fn: Optional[Callable[[], float]] = None) -> None:
        self.enabled = enabled
        self._time_fn: Callable[[], float] = time_fn or (lambda: 0.0)
        self.metrics = MetricsRegistry(self.now)
        self.bus = EventBus(self.now)
        self._ring: Optional[RingBufferSink] = None

    # -- clock ------------------------------------------------------------

    def now(self) -> float:
        return self._time_fn()

    def bind_clock(self, time_fn: Callable[[], float]) -> None:
        """Late-bind the virtual clock (called by the owning Simulator)."""
        self._time_fn = time_fn

    # -- metrics ----------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        return self.metrics.histogram(name, buckets, **labels)

    # -- events -----------------------------------------------------------

    def emit(self, layer: str, name: str, **fields: Any) -> None:
        self.bus.emit(layer, name, **fields)

    def span(self, layer: str, name: str, **fields: Any) -> Span:
        return Span(self, layer, name, fields)

    def add_sink(self, sink: Sink) -> Sink:
        return self.bus.add_sink(sink)

    def remove_sink(self, sink: Sink) -> None:
        self.bus.remove_sink(sink)

    def ensure_ring_sink(
        self, capacity: Optional[int] = None
    ) -> RingBufferSink:
        """Idempotently attach the default in-memory ring buffer sink."""
        if self._ring is None:
            self._ring = RingBufferSink(
                capacity if capacity is not None else 65536
            )
            self.bus.add_sink(self._ring)
        return self._ring

    @property
    def ring(self) -> Optional[RingBufferSink]:
        return self._ring

    # -- snapshots --------------------------------------------------------

    def telemetry_snapshot(self) -> TelemetrySnapshot:
        events = self._ring.events() if self._ring is not None else []
        return TelemetrySnapshot(self.now(), self.metrics.snapshot(), events)

    def export_jsonl(self, path: str) -> int:
        return self.telemetry_snapshot().export_jsonl(path)
