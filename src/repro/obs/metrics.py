"""Sim-time-aware metric primitives: counters, gauges, histograms.

Metrics are timestamped with *virtual* time (the owning simulator's clock),
so a rate computed from a counter is a rate in simulated seconds — the
quantity the paper's measurements are actually about — not wall-clock
noise from the host the reproduction happens to run on.

Naming convention: ``<layer>.<metric>`` (``kernel.events``,
``links.delivered``, ``endpoint.capture_used``). The layer prefix is how
:meth:`MetricsRegistry.layers` groups a snapshot for reporting, and how the
acceptance checks verify that every subsystem reports telemetry.

Hot-path discipline: metric objects are plain attribute machines with
``__slots__``; call sites cache the object once and guard updates behind
``obs.enabled`` so a disabled run pays one attribute load and a branch.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Optional

TimeFn = Callable[[], float]

# Default histogram boundaries: log-spaced from 1 microsecond to ~100 s,
# suitable for both latencies (seconds) and small magnitudes.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0
)


def _labels_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count with first/last update timestamps."""

    __slots__ = ("name", "labels", "value", "first_time", "last_time", "_time_fn")

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str], time_fn: TimeFn) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        self._time_fn = time_fn

    def inc(self, amount: int = 1) -> None:
        self.value += amount
        now = self._time_fn()
        if self.first_time is None:
            self.first_time = now
        self.last_time = now

    def rate(self) -> float:
        """Events per simulated second over the counter's active span."""
        if self.first_time is None or self.last_time is None:
            return 0.0
        span = self.last_time - self.first_time
        if span <= 0:
            return 0.0
        return self.value / span

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
            "first_time": self.first_time,
            "last_time": self.last_time,
        }


class Gauge:
    """Point-in-time value with min/max watermarks."""

    __slots__ = ("name", "labels", "value", "min", "max", "last_time", "_time_fn")

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str], time_fn: TimeFn) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last_time: Optional[float] = None
        self._time_fn = time_fn

    def set(self, value: float) -> None:
        self.value = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.last_time = self._time_fn()

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is a new high-water mark."""
        if self.max is None or value > self.max:
            self.set(value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "last_time": self.last_time,
        }


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max."""

    __slots__ = (
        "name", "labels", "boundaries", "bucket_counts",
        "count", "sum", "min", "max", "last_time", "_time_fn",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        time_fn: TimeFn,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.boundaries = tuple(buckets)
        # One count per boundary plus the overflow bucket.
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last_time: Optional[float] = None
        self._time_fn = time_fn

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect_right(self.boundaries, value)] += 1
        self.last_time = self._time_fn()

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket boundaries (upper bound)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= target:
                if index < len(self.boundaries):
                    return self.boundaries[index]
                return self.max if self.max is not None else 0.0
        return self.max if self.max is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
            "buckets": {
                str(boundary): count
                for boundary, count in zip(self.boundaries, self.bucket_counts)
            },
            "overflow": self.bucket_counts[-1],
            "last_time": self.last_time,
        }


class MetricsRegistry:
    """Owns every metric of one simulator; hands out memoized instances."""

    def __init__(self, time_fn: TimeFn) -> None:
        self._time_fn = time_fn
        self._metrics: dict[tuple, object] = {}

    def _get(self, factory, kind: str, name: str, labels: dict[str, str], *args):
        key = (kind, name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, labels, self._time_fn, *args)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, "counter", name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, "gauge", name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, "histogram", name, labels, buckets)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def find(self, name: str, **labels: str):
        """Look up an existing metric of any kind; None if absent."""
        wanted = _labels_key(labels)
        for (_, metric_name, metric_labels), metric in self._metrics.items():
            if metric_name == name and (not labels or metric_labels == wanted):
                return metric
        return None

    def total(self, name: str) -> float:
        """Sum a counter's value across every label combination."""
        total = 0.0
        for metric in self._metrics.values():
            if isinstance(metric, Counter) and metric.name == name:
                total += metric.value
        return total

    def layers(self) -> set[str]:
        """Layer prefixes that have reported at least one non-zero value."""
        active: set[str] = set()
        for metric in self._metrics.values():
            if isinstance(metric, Counter) and metric.value == 0:
                continue
            if isinstance(metric, Histogram) and metric.count == 0:
                continue
            if isinstance(metric, Gauge) and metric.last_time is None:
                continue
            active.add(metric.name.split(".", 1)[0])
        return active

    def snapshot(self) -> list[dict]:
        """Stable-ordered list of every metric as a plain dict."""
        return [
            metric.to_dict()
            for _, metric in sorted(
                self._metrics.items(), key=lambda item: (item[0][1], item[0][2])
            )
        ]
