"""The structured event bus: typed events fanned out to pluggable sinks.

Events are the discrete, narratable half of observability (a publish was
rejected, a session was preempted, a packet was dropped at a queue);
metrics (:mod:`repro.obs.metrics`) are the aggregate half. Both carry the
owning simulator's *virtual* timestamp.

An :class:`ObsEvent` is deliberately a dumb record — ``(time, layer, name,
fields)`` — so sinks can serialize, filter, or count without knowing any
layer's internals. Emission is cheap but not free; every call site guards
with ``if obs.enabled:`` so a disabled run never constructs field dicts or
formats strings.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

TimeFn = Callable[[], float]


class ObsEvent:
    """One structured event: virtual time, layer, name, and fields."""

    __slots__ = ("time", "layer", "name", "fields")

    def __init__(self, time: float, layer: str, name: str,
                 fields: dict[str, Any]) -> None:
        self.time = time
        self.layer = layer
        self.name = name
        self.fields = fields

    def __repr__(self) -> str:
        return f"ObsEvent({self.time:.6f}, {self.layer}.{self.name}, {self.fields})"

    def to_dict(self) -> dict:
        return {
            "kind": "event",
            "time": self.time,
            "layer": self.layer,
            "name": self.name,
            "fields": dict(self.fields),
        }


class Sink(Protocol):
    """Anything that consumes events off the bus."""

    def record(self, event: ObsEvent) -> None: ...


class EventBus:
    """Dispatches events to registered sinks; no buffering of its own."""

    def __init__(self, time_fn: TimeFn) -> None:
        self._time_fn = time_fn
        self._sinks: list[Sink] = []
        self.events_emitted = 0

    def add_sink(self, sink: Sink) -> Sink:
        if sink not in self._sinks:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return tuple(self._sinks)

    def emit(self, layer: str, name: str, **fields: Any) -> None:
        event = ObsEvent(self._time_fn(), layer, name, fields)
        self.events_emitted += 1
        for sink in self._sinks:
            sink.record(event)
