"""Event sinks: bounded in-memory capture and JSONL export.

Two sinks cover the repo's needs:

- :class:`RingBufferSink` — a bounded deque of :class:`ObsEvent` objects,
  kept in memory for tests and post-run inspection. Bounded so that a
  long simulation with per-packet events cannot grow without limit.
- :class:`JsonlSink` — streams every event to a file as one JSON object
  per line. Field values that JSON cannot represent (bytes, packets,
  arbitrary objects) are coerced: bytes to hex, everything else to
  ``repr``. :func:`read_jsonl` is the matching loader.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Callable, Iterable, Optional, TextIO, Union

from repro.obs.bus import ObsEvent

DEFAULT_RING_CAPACITY = 65536


def json_safe(value: Any) -> Any:
    """Coerce a field value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value).hex()
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    return repr(value)


def event_to_json_dict(event: ObsEvent) -> dict:
    return {
        "kind": "event",
        "time": event.time,
        "layer": event.layer,
        "name": event.name,
        "fields": {key: json_safe(value) for key, value in event.fields.items()},
    }


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        self._events: deque[ObsEvent] = deque(maxlen=capacity)
        self.total_recorded = 0

    def record(self, event: ObsEvent) -> None:
        self._events.append(event)
        self.total_recorded += 1

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> list[ObsEvent]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def select(
        self,
        layer: Optional[str] = None,
        name: Optional[str] = None,
        predicate: Optional[Callable[[ObsEvent], bool]] = None,
    ) -> list[ObsEvent]:
        result = []
        for event in self._events:
            if layer is not None and event.layer != layer:
                continue
            if name is not None and event.name != name:
                continue
            if predicate is not None and not predicate(event):
                continue
            result.append(event)
        return result


class JsonlSink:
    """Streams events to a JSONL file (or any writable text handle).

    Opening with ``mode="a"`` appends to an existing export, so a sink
    can be closed and re-opened across campaign phases without losing
    the earlier lines. ``close()`` flushes *and fsyncs* an owned file
    before closing it — a downstream ingester (the results warehouse)
    reading the file right after close must never see a truncated tail.
    """

    def __init__(self, target: Union[str, TextIO], mode: str = "w") -> None:
        if mode not in ("w", "a"):
            raise ValueError(f"JsonlSink mode must be 'w' or 'a', not {mode!r}")
        if isinstance(target, str):
            self._file: TextIO = open(target, mode, encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.closed = False
        self.lines_written = 0

    def record(self, event: ObsEvent) -> None:
        self.write_line(event_to_json_dict(event))

    def write_line(self, obj: dict) -> None:
        self._file.write(json.dumps(obj, separators=(",", ":")) + "\n")
        self.lines_written += 1

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._file.flush()
        if self._owns_file:
            try:
                os.fsync(self._file.fileno())
            except (OSError, ValueError):
                pass  # not a real file (StringIO) or fs refuses fsync
            self._file.close()


def write_jsonl(path: str, lines: Iterable[dict]) -> int:
    """Write pre-built dicts as JSONL; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(json.dumps(line, separators=(",", ":")) + "\n")
            count += 1
    return count


def read_jsonl(path: str, strict: bool = True) -> list[dict]:
    """Load a JSONL file back into a list of dicts (round-trip check).

    With ``strict=False`` a malformed *final* line — the signature of a
    writer killed mid-append — is silently dropped instead of failing
    the whole load; malformed interior lines still raise, since those
    mean corruption rather than truncation.
    """
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(json.loads(stripped))
        except ValueError:
            if not strict and index == len(lines) - 1 \
                    and not line.endswith("\n"):
                break
            raise
    return records
