"""Human-readable rendering of telemetry snapshots and JSONL exports.

Used by ``examples/telemetry_report.py`` and the ``python -m repro
observability`` subcommand: turn a :class:`~repro.obs.TelemetrySnapshot`
(or the dict records loaded back from its JSONL export) into a per-layer
text report.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.obs import TelemetrySnapshot


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _metric_lines(metrics: Iterable[dict]) -> dict[str, list[str]]:
    by_layer: dict[str, list[str]] = {}
    for metric in metrics:
        name = metric["name"]
        layer = name.split(".", 1)[0]
        labels = metric.get("labels") or {}
        label_text = (
            " {" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels else ""
        )
        kind = metric["kind"]
        if kind == "counter":
            detail = f"{_format_value(metric['value'])}"
        elif kind == "gauge":
            detail = (
                f"{_format_value(metric['value'])} "
                f"(min {_format_value(metric['min'])}, "
                f"max {_format_value(metric['max'])})"
            )
        else:  # histogram
            if not metric["count"]:
                continue
            detail = (
                f"n={metric['count']} mean={_format_value(metric['mean'])} "
                f"min={_format_value(metric['min'])} "
                f"max={_format_value(metric['max'])}"
            )
        by_layer.setdefault(layer, []).append(
            f"  {name + label_text:<52} [{kind}] {detail}"
        )
    return by_layer


def format_report(
    snapshot: Union[TelemetrySnapshot, list[dict]],
    title: str = "Telemetry report",
) -> str:
    """Render a snapshot (or JSONL records read back) as a text report."""
    if isinstance(snapshot, TelemetrySnapshot):
        metrics = snapshot.metrics
        events = [event.to_dict() for event in snapshot.events]
        time = snapshot.time
    else:
        metrics = [r for r in snapshot if r.get("kind") in
                   ("counter", "gauge", "histogram")]
        events = [r for r in snapshot if r.get("kind") == "event"]
        headers = [r for r in snapshot if r.get("kind") == "snapshot"]
        time = headers[0]["time"] if headers else 0.0

    lines = [title, "=" * len(title),
             f"virtual time: {time:.6f} s | metrics: {len(metrics)} | "
             f"events: {len(events)}", ""]
    by_layer = _metric_lines(metrics)
    for layer in sorted(by_layer):
        lines.append(f"[{layer}]")
        lines.extend(sorted(by_layer[layer]))
        lines.append("")

    event_counts: dict[str, int] = {}
    for event in events:
        key = f"{event['layer']}.{event['name']}"
        event_counts[key] = event_counts.get(key, 0) + 1
    if event_counts:
        lines.append("[events]")
        for key in sorted(event_counts):
            lines.append(f"  {key:<44} x{event_counts[key]}")
        lines.append("")
    return "\n".join(lines)
