"""Wire protocol constants."""

from __future__ import annotations

PROTOCOL_VERSION = 1

# Socket protocol selectors for nopen (Table 1).
SOCK_RAW = 0
SOCK_TCP = 1
SOCK_UDP = 2

SOCK_NAMES = {SOCK_RAW: "raw", SOCK_TCP: "tcp", SOCK_UDP: "udp"}

# Result status codes.
ST_OK = 0
ST_BAD_SOCKET = 1  # unknown or already-used socket id
ST_BAD_ARGUMENT = 2
ST_DENIED = 3  # rejected by a monitor or certificate restriction
ST_UNSUPPORTED = 4  # e.g. raw socket on an endpoint without raw capability
ST_CONNECT_FAILED = 5  # TCP connect refused / timed out
ST_NO_ROUTE = 6
ST_MEM_FAULT = 7  # mread/mwrite outside the accessible region
ST_INTERNAL = 8
# A monitor/filter program failed static verification at install time.
# Used both as AuthFail.code (certificate monitors, session setup) and as
# Result.status (ncap filters); the payload carries the verifier report.
ERR_MONITOR_REJECTED = 9

STATUS_NAMES = {
    ST_OK: "ok",
    ST_BAD_SOCKET: "bad-socket",
    ST_BAD_ARGUMENT: "bad-argument",
    ST_DENIED: "denied",
    ST_UNSUPPORTED: "unsupported",
    ST_CONNECT_FAILED: "connect-failed",
    ST_NO_ROUTE: "no-route",
    ST_MEM_FAULT: "mem-fault",
    ST_INTERNAL: "internal-error",
    ERR_MONITOR_REJECTED: "monitor-rejected",
}

# Endpoint capability bits (HELLO.caps and the info block caps field).
CAP_RAW = 1 << 0
CAP_TCP = 1 << 1
CAP_UDP = 1 << 2

# Session end reasons.
END_BYE = "bye"
END_AUTH_TIMEOUT = "auth-timeout"
END_CERT_EXPIRED = "certificate-expired"
END_PROTOCOL_ERROR = "protocol-error"
