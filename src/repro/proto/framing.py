"""Length-prefixed message framing over a simulated TCP connection.

A :class:`MessageStream` wraps a :class:`~repro.netsim.stack.tcp.TcpConnection`
and provides ``yield from stream.send(msg)`` / ``msg = yield from
stream.recv()`` for simulated processes. Frames are ``u32 length`` +
message bytes.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.netsim.stack.tcp import TcpConnection, TcpError
from repro.proto.messages import Message, decode_message
from repro.util.byteio import DecodeError

MAX_FRAME = 16 * 1024 * 1024


class FramingError(Exception):
    """Raised when the byte stream cannot be parsed into messages."""


class UndecodableFrame(FramingError):
    """A well-framed message body failed to decode.

    Unlike a broken length prefix or a mid-frame EOF, the stream itself
    is still in sync: the next frame boundary is intact, so a receiver
    may count the offence against a per-session decode budget and keep
    reading rather than tearing the connection down.  Callers that do
    not care still catch :class:`FramingError` and treat it as fatal.
    """


class MessageStream:
    """Framed message I/O over one TCP connection."""

    def __init__(self, conn: TcpConnection) -> None:
        self.conn = conn
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, message: Message) -> Generator:
        payload = message.encode()
        if len(payload) > MAX_FRAME:
            # Enforced symmetrically with recv(): a frame the peer is
            # guaranteed to reject must never be put on the wire.
            raise FramingError(
                f"frame of {len(payload)} bytes exceeds limit"
            )
        frame = len(payload).to_bytes(4, "big") + payload
        self.messages_sent += 1
        self.bytes_sent += len(frame)
        yield from self.conn.send(frame)

    def recv(self) -> Generator:
        """Receive one message; returns None on clean EOF."""
        header = yield from self._recv_exactly(4)
        if header is None:
            return None
        length = int.from_bytes(header, "big")
        if length > MAX_FRAME:
            raise FramingError(f"frame of {length} bytes exceeds limit")
        body = yield from self._recv_exactly(length)
        if body is None:
            raise FramingError("connection closed mid-frame")
        self.bytes_received += 4 + length
        try:
            message = decode_message(body)
        except DecodeError as exc:
            raise UndecodableFrame(f"undecodable message: {exc}") from exc
        self.messages_received += 1
        return message

    def _recv_exactly(self, count: int) -> Generator:
        """Read exactly ``count`` bytes, or None if EOF arrives first byte."""
        parts: list[bytes] = []
        remaining = count
        while remaining > 0:
            chunk = yield from self.conn.recv(remaining)
            if not chunk:
                if not parts:
                    return None
                raise FramingError("connection closed mid-frame")
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    def close(self) -> None:
        self.conn.close()
