"""Protocol state-machine enforcer: message legality *in sequence*.

Every PacketLab message is self-describing, so the codec layer
(``framing.py``/``messages.py``) can only reject malformed bytes.  A
byzantine peer speaks perfectly well-formed messages in an illegal
*order*: a Result for a reqid the controller never issued, a duplicate
AuthOk, traffic after SessionEnd.  :class:`SessionStateMachine` is the
shared sequencing judge — the controller instantiates one per session to
validate endpoint→controller traffic, the endpoint instantiates the
mirror role to validate controller→endpoint traffic.

The machine is pure (no sim dependencies): feed it each received message
via :meth:`observe` and it either returns ``None`` (legal) or a
:class:`Violation` describing the offence.  It never blocks and never
raises in the default lenient mode, which is what makes "any
interleaving either completes or yields a violation, never a hang" a
checkable property (see ``tests/test_proto_statemachine.py``).  Out-of-
band offences that are not a single message (decode failures, streaming
overflow, stalled RPCs) are folded into the same per-session record via
:meth:`record` so budget accounting sees one unified violation count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.proto.messages import (
    Auth,
    AuthFail,
    AuthOk,
    Bye,
    Hello,
    Interrupted,
    Message,
    MRead,
    MWrite,
    NCap,
    NClose,
    NOpen,
    NPoll,
    NSend,
    PollData,
    Result,
    Resumed,
    SessionEnd,
    Yield,
)

# Roles: which direction of traffic this machine validates.
ROLE_CONTROLLER = "controller"  # validates endpoint → controller messages
ROLE_ENDPOINT = "endpoint"      # validates controller → endpoint messages

# Session phases.
PHASE_HANDSHAKE = "handshake"
PHASE_ESTABLISHED = "established"
PHASE_ENDED = "ended"

# Violation kinds (the vocabulary shared with budgets and pool scoring).
V_WRONG_DIRECTION = "wrong-direction"
V_BEFORE_AUTH = "before-auth"
V_DUPLICATE_HELLO = "duplicate-hello"
V_DUPLICATE_AUTH = "duplicate-auth"
V_UNSOLICITED_RESPONSE = "unsolicited-response"
V_DUPLICATE_RESPONSE = "duplicate-response"
V_REQID_REUSE = "reqid-reuse"
V_AFTER_END = "after-end"
V_BAD_INTERRUPT = "bad-interrupt"
V_BAD_RESUME = "bad-resume"
# Out-of-band kinds recorded by the transport/budget layers.
V_DECODE_ERROR = "decode-error"
V_STREAM_OVERFLOW = "stream-overflow"

# Commands only a controller may send (all carry a reqid).
_COMMANDS = (NOpen, NClose, NSend, NCap, NPoll, MRead, MWrite)
# Responses/notifications only an endpoint may send.
_RESPONSES = (Result, PollData, Interrupted, Resumed, SessionEnd)


@dataclass(frozen=True)
class Violation:
    """One recorded protocol offence."""

    kind: str
    message: str  # offending message type name ("" for out-of-band kinds)
    detail: str = ""

    def __str__(self) -> str:
        head = f"{self.kind}({self.message})" if self.message else self.kind
        return f"{head}: {self.detail}" if self.detail else head


class ProtocolViolation(Exception):
    """Raised by a strict-mode machine on the first violation."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass
class SessionStateMachine:
    """Validates one session's inbound message sequence for one role.

    ``role`` selects which direction is legal: a ``ROLE_CONTROLLER``
    machine expects endpoint-originated traffic (Hello/AuthOk/Result/
    PollData/...), a ``ROLE_ENDPOINT`` machine expects controller-
    originated traffic (Auth/commands/Bye).  ``start_established`` skips
    the handshake phase for machines attached after authentication.
    """

    role: str
    strict: bool = False
    start_established: bool = False
    phase: str = field(init=False, default=PHASE_HANDSHAKE)
    violations: list = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.role not in (ROLE_CONTROLLER, ROLE_ENDPOINT):
            raise ValueError(f"unknown role: {self.role!r}")
        if self.start_established:
            self.phase = PHASE_ESTABLISHED
        # Controller side: reqids issued (commands sent, response still
        # legal) and answered (exactly-once responses already consumed).
        self._issued: set = set()
        self._answered: set = set()
        # Endpoint side: reqids already seen on inbound commands.
        self._seen_reqids: set = set()
        self._interrupted = False
        self._saw_hello = self.start_established
        self._saw_auth = self.start_established

    # -- controller bookkeeping ---------------------------------------------

    def note_request(self, reqid: int) -> None:
        """Controller role: register a reqid we issued, so the matching
        Result/PollData is legal (even if it arrives after our timeout)."""
        self._issued.add(reqid)

    # -- validation ----------------------------------------------------------

    def observe(self, message: Message) -> Optional[Violation]:
        """Judge one received message; None if legal in sequence."""
        if self.role == ROLE_CONTROLLER:
            violation = self._observe_from_endpoint(message)
        else:
            violation = self._observe_from_controller(message)
        if violation is not None:
            self.violations.append(violation)
            if self.strict:
                raise ProtocolViolation(violation)
        return violation

    def record(self, kind: str, detail: str = "") -> Violation:
        """Record an out-of-band offence (decode error, overflow, ...)."""
        violation = Violation(kind, "", detail)
        self.violations.append(violation)
        if self.strict:
            raise ProtocolViolation(violation)
        return violation

    @property
    def ended(self) -> bool:
        return self.phase == PHASE_ENDED

    # -- controller role: endpoint → controller traffic ----------------------

    def _observe_from_endpoint(self, message: Message) -> Optional[Violation]:
        name = type(message).__name__
        if self.phase == PHASE_ENDED:
            return Violation(V_AFTER_END, name, "traffic after session end")
        if isinstance(message, (Auth, Bye, Yield) + _COMMANDS):
            return Violation(
                V_WRONG_DIRECTION, name, "controller-only message from endpoint"
            )
        if self.phase == PHASE_HANDSHAKE:
            return self._observe_handshake_from_endpoint(message, name)
        # Established.
        if isinstance(message, Hello):
            return Violation(V_DUPLICATE_HELLO, name, "Hello after handshake")
        if isinstance(message, (AuthOk, AuthFail)):
            return Violation(V_DUPLICATE_AUTH, name, "auth response repeated")
        if isinstance(message, PollData) and message.reqid == 0:
            return None  # streaming mode; volume is the budget layer's job
        if isinstance(message, (Result, PollData)):
            reqid = message.reqid
            if reqid in self._issued:
                self._issued.discard(reqid)
                self._answered.add(reqid)
                return None
            if reqid in self._answered:
                return Violation(
                    V_DUPLICATE_RESPONSE, name, f"reqid {reqid} already answered"
                )
            return Violation(
                V_UNSOLICITED_RESPONSE, name, f"reqid {reqid} never issued"
            )
        if isinstance(message, Interrupted):
            if self._interrupted:
                return Violation(V_BAD_INTERRUPT, name, "already interrupted")
            self._interrupted = True
            return None
        if isinstance(message, Resumed):
            if not self._interrupted:
                return Violation(V_BAD_RESUME, name, "Resumed while not interrupted")
            self._interrupted = False
            return None
        if isinstance(message, SessionEnd):
            self.phase = PHASE_ENDED
            return None
        return Violation(V_WRONG_DIRECTION, name, "unexpected on a session")

    def _observe_handshake_from_endpoint(
        self, message: Message, name: str
    ) -> Optional[Violation]:
        if isinstance(message, Hello):
            if self._saw_hello:
                return Violation(V_DUPLICATE_HELLO, name, "second Hello")
            self._saw_hello = True
            return None
        if isinstance(message, (AuthOk, AuthFail)):
            if not self._saw_hello:
                return Violation(V_BEFORE_AUTH, name, "auth response before Hello")
            if self._saw_auth:
                return Violation(V_DUPLICATE_AUTH, name, "auth response repeated")
            self._saw_auth = True
            if isinstance(message, AuthOk):
                self.phase = PHASE_ESTABLISHED
            else:
                self.phase = PHASE_ENDED
            return None
        return Violation(V_BEFORE_AUTH, name, "session traffic before auth")

    # -- endpoint role: controller → endpoint traffic ------------------------

    def _observe_from_controller(self, message: Message) -> Optional[Violation]:
        name = type(message).__name__
        if self.phase == PHASE_ENDED:
            return Violation(V_AFTER_END, name, "traffic after Bye")
        if isinstance(message, (Hello, AuthOk, AuthFail) + _RESPONSES):
            return Violation(
                V_WRONG_DIRECTION, name, "endpoint-only message from controller"
            )
        if self.phase == PHASE_HANDSHAKE:
            if isinstance(message, Auth):
                self._saw_auth = True
                self.phase = PHASE_ESTABLISHED
                return None
            return Violation(V_BEFORE_AUTH, name, "command before Auth")
        # Established.
        if isinstance(message, Auth):
            return Violation(V_DUPLICATE_AUTH, name, "second Auth")
        if isinstance(message, _COMMANDS):
            reqid = message.reqid
            if reqid in self._seen_reqids:
                return Violation(V_REQID_REUSE, name, f"reqid {reqid} reused")
            self._seen_reqids.add(reqid)
            return None
        if isinstance(message, Yield):
            return None
        if isinstance(message, Bye):
            self.phase = PHASE_ENDED
            return None
        return Violation(V_WRONG_DIRECTION, name, "unexpected on a session")
