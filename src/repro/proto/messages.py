"""PacketLab wire messages.

Each message is a frozen dataclass with a class-level ``TYPE`` tag and
symmetric ``encode_body``/``decode_body``. The endpoint commands mirror
Table 1 exactly (``nopen``, ``nclose``, ``nsend``, ``ncap``, ``npoll``,
``mread``, ``mwrite``); the rest is session management (hello/auth),
contention notifications (§3.3), and the rendezvous protocol (§3.2).

Times on the wire are **endpoint-local 64-bit nanosecond ticks**, exactly
as the paper specifies: the endpoint never interprets controller wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Type

from repro.util.byteio import ByteReader, ByteWriter, DecodeError

_REGISTRY: dict[int, Type["Message"]] = {}


def register(cls: Type["Message"]) -> Type["Message"]:
    if cls.TYPE in _REGISTRY:
        raise ValueError(f"duplicate message type {cls.TYPE}")
    _REGISTRY[cls.TYPE] = cls
    return cls


@dataclass(frozen=True)
class Message:
    TYPE: ClassVar[int] = 0

    def encode(self) -> bytes:
        writer = ByteWriter()
        writer.u8(self.TYPE)
        self.encode_body(writer)
        return writer.getvalue()

    def encode_body(self, writer: ByteWriter) -> None:  # pragma: no cover
        raise NotImplementedError

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "Message":  # pragma: no cover
        raise NotImplementedError


def decode_message(data: bytes) -> Message:
    reader = ByteReader(data)
    msg_type = reader.u8()
    cls = _REGISTRY.get(msg_type)
    if cls is None:
        raise DecodeError(f"unknown message type {msg_type}")
    message = cls.decode_body(reader)
    reader.expect_end()
    return message


# ---------------------------------------------------------------------------
# Session establishment
# ---------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class Hello(Message):
    """Endpoint -> controller, first message after connecting."""

    TYPE: ClassVar[int] = 1
    version: int = 1
    caps: int = 0
    endpoint_name: str = ""
    descriptor_hash: bytes = b""  # which published experiment prompted this

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u8(self.version)
        writer.u16(self.caps)
        writer.str_u16(self.endpoint_name)
        writer.bytes_u16(self.descriptor_hash)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "Hello":
        return cls(
            version=reader.u8(),
            caps=reader.u16(),
            endpoint_name=reader.str_u16(),
            descriptor_hash=reader.bytes_u16(),
        )


@register
@dataclass(frozen=True)
class Auth(Message):
    """Controller -> endpoint: descriptor + certificate chains + priority.

    A controller may hold delegations from several endpoint operators and
    cannot know in advance which operator an incoming endpoint trusts, so
    it presents every chain; the endpoint accepts the experiment if *any*
    chain verifies against its trust store.
    """

    TYPE: ClassVar[int] = 2
    descriptor: bytes = b""
    chains: tuple[bytes, ...] = ()
    priority: int = 0

    def encode_body(self, writer: ByteWriter) -> None:
        writer.bytes_u32(self.descriptor)
        writer.u8(len(self.chains))
        for chain in self.chains:
            writer.bytes_u32(chain)
        writer.u8(self.priority)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "Auth":
        descriptor = reader.bytes_u32()
        count = reader.u8()
        chains = tuple(reader.bytes_u32() for _ in range(count))
        return cls(descriptor=descriptor, chains=chains, priority=reader.u8())


@register
@dataclass(frozen=True)
class AuthOk(Message):
    TYPE: ClassVar[int] = 3
    session_id: int = 0
    buffer_limit: int = 0  # effective capture buffer for this session

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.session_id)
        writer.u32(self.buffer_limit)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "AuthOk":
        return cls(session_id=reader.u32(), buffer_limit=reader.u32())


@register
@dataclass(frozen=True)
class AuthFail(Message):
    TYPE: ClassVar[int] = 4
    reason: str = ""
    # Machine-readable failure class (0 = generic auth failure,
    # ERR_MONITOR_REJECTED = a certificate monitor failed static
    # verification); ``report`` carries the full verifier report text.
    code: int = 0
    report: str = ""

    def encode_body(self, writer: ByteWriter) -> None:
        writer.str_u16(self.reason)
        writer.u8(self.code)
        writer.str_u16(self.report)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "AuthFail":
        reason = reader.str_u16()
        code = reader.u8()
        report = reader.str_u16()
        return cls(reason=reason, code=code, report=report)


# ---------------------------------------------------------------------------
# Table 1 commands (controller -> endpoint), each with a request id
# ---------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class NOpen(Message):
    TYPE: ClassVar[int] = 10
    reqid: int = 0
    sktid: int = 0
    proto: int = 0  # SOCK_RAW / SOCK_TCP / SOCK_UDP
    locport: int = 0
    remaddr: int = 0
    remport: int = 0

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.reqid)
        writer.u32(self.sktid)
        writer.u8(self.proto)
        writer.u16(self.locport)
        writer.u32(self.remaddr)
        writer.u16(self.remport)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "NOpen":
        return cls(
            reqid=reader.u32(),
            sktid=reader.u32(),
            proto=reader.u8(),
            locport=reader.u16(),
            remaddr=reader.u32(),
            remport=reader.u16(),
        )


@register
@dataclass(frozen=True)
class NClose(Message):
    TYPE: ClassVar[int] = 11
    reqid: int = 0
    sktid: int = 0

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.reqid)
        writer.u32(self.sktid)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "NClose":
        return cls(reqid=reader.u32(), sktid=reader.u32())


@register
@dataclass(frozen=True)
class NSend(Message):
    """Queue data to be sent on a socket at a particular endpoint-local
    time (ticks). A time in the past means "send immediately" (§3.1)."""

    TYPE: ClassVar[int] = 12
    reqid: int = 0
    sktid: int = 0
    time: int = 0  # endpoint-local ns ticks
    data: bytes = b""

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.reqid)
        writer.u32(self.sktid)
        writer.u64(self.time)
        writer.bytes_u32(self.data)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "NSend":
        return cls(
            reqid=reader.u32(),
            sktid=reader.u32(),
            time=reader.u64(),
            data=reader.bytes_u32(),
        )


@register
@dataclass(frozen=True)
class NCap(Message):
    """Install a packet filter on a raw socket; capture until ``time``."""

    TYPE: ClassVar[int] = 13
    reqid: int = 0
    sktid: int = 0
    time: int = 0  # endpoint-local ns ticks; capture deadline
    filt: bytes = b""  # serialized FilterProgram

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.reqid)
        writer.u32(self.sktid)
        writer.u64(self.time)
        writer.bytes_u32(self.filt)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "NCap":
        return cls(
            reqid=reader.u32(),
            sktid=reader.u32(),
            time=reader.u64(),
            filt=reader.bytes_u32(),
        )


@register
@dataclass(frozen=True)
class NPoll(Message):
    """Poll for buffered network data; wait until ``time`` if none."""

    TYPE: ClassVar[int] = 14
    reqid: int = 0
    time: int = 0  # endpoint-local ns ticks

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.reqid)
        writer.u64(self.time)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "NPoll":
        return cls(reqid=reader.u32(), time=reader.u64())


@register
@dataclass(frozen=True)
class MRead(Message):
    TYPE: ClassVar[int] = 15
    reqid: int = 0
    memaddr: int = 0
    bytecnt: int = 0

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.reqid)
        writer.u32(self.memaddr)
        writer.u32(self.bytecnt)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "MRead":
        return cls(reqid=reader.u32(), memaddr=reader.u32(), bytecnt=reader.u32())


@register
@dataclass(frozen=True)
class MWrite(Message):
    TYPE: ClassVar[int] = 16
    reqid: int = 0
    memaddr: int = 0
    data: bytes = b""

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.reqid)
        writer.u32(self.memaddr)
        writer.bytes_u32(self.data)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "MWrite":
        return cls(reqid=reader.u32(), memaddr=reader.u32(), data=reader.bytes_u32())


# ---------------------------------------------------------------------------
# Responses (endpoint -> controller)
# ---------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class Result(Message):
    TYPE: ClassVar[int] = 20
    reqid: int = 0
    status: int = 0
    payload: bytes = b""

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.reqid)
        writer.u8(self.status)
        writer.bytes_u32(self.payload)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "Result":
        return cls(reqid=reader.u32(), status=reader.u8(), payload=reader.bytes_u32())


@dataclass(frozen=True)
class CaptureRecord:
    """One captured unit: a raw packet, a UDP datagram, or a TCP chunk."""

    sktid: int
    timestamp: int  # endpoint-local ns ticks at receipt
    data: bytes

    def encode(self, writer: ByteWriter) -> None:
        writer.u32(self.sktid)
        writer.u64(self.timestamp)
        writer.bytes_u32(self.data)

    @classmethod
    def decode(cls, reader: ByteReader) -> "CaptureRecord":
        return cls(sktid=reader.u32(), timestamp=reader.u64(), data=reader.bytes_u32())


@register
@dataclass(frozen=True)
class PollData(Message):
    """Response to NPoll: buffered records plus drop accounting (§3.1)."""

    TYPE: ClassVar[int] = 21
    reqid: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0
    records: tuple[CaptureRecord, ...] = ()

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u32(self.reqid)
        writer.u32(self.dropped_packets)
        writer.u64(self.dropped_bytes)
        writer.u32(len(self.records))
        for record in self.records:
            record.encode(writer)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "PollData":
        reqid = reader.u32()
        dropped_packets = reader.u32()
        dropped_bytes = reader.u64()
        count = reader.u32()
        records = tuple(CaptureRecord.decode(reader) for _ in range(count))
        return cls(
            reqid=reqid,
            dropped_packets=dropped_packets,
            dropped_bytes=dropped_bytes,
            records=records,
        )


# ---------------------------------------------------------------------------
# Contention notifications (§3.3) and session management
# ---------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class Interrupted(Message):
    """Endpoint -> controller: a higher-priority experiment preempted you."""

    TYPE: ClassVar[int] = 30
    by_priority: int = 0

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u8(self.by_priority)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "Interrupted":
        return cls(by_priority=reader.u8())


@register
@dataclass(frozen=True)
class Resumed(Message):
    TYPE: ClassVar[int] = 31

    def encode_body(self, writer: ByteWriter) -> None:
        pass

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "Resumed":
        return cls()


@register
@dataclass(frozen=True)
class SessionEnd(Message):
    TYPE: ClassVar[int] = 32
    reason: str = ""

    def encode_body(self, writer: ByteWriter) -> None:
        writer.str_u16(self.reason)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "SessionEnd":
        return cls(reason=reader.str_u16())


@register
@dataclass(frozen=True)
class Yield(Message):
    """Controller -> endpoint: voluntarily suspend (give back control)."""

    TYPE: ClassVar[int] = 33

    def encode_body(self, writer: ByteWriter) -> None:
        pass

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "Yield":
        return cls()


@register
@dataclass(frozen=True)
class Bye(Message):
    """Controller -> endpoint: experiment finished."""

    TYPE: ClassVar[int] = 34

    def encode_body(self, writer: ByteWriter) -> None:
        pass

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "Bye":
        return cls()


# ---------------------------------------------------------------------------
# Rendezvous protocol (§3.2)
# ---------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class RdzPublish(Message):
    """Experimenter -> rendezvous: publish a signed experiment.

    ``chain`` authorizes *publishing* (anchored at a rendezvous-operator
    key). ``delivery_chains`` are the endpoint-operator-anchored chains;
    the keys appearing in them determine which subscriber channels receive
    the experiment (§3.3, Rendezvous Publish/Subscribe Channels).
    """

    TYPE: ClassVar[int] = 40
    descriptor: bytes = b""
    chain: bytes = b""
    delivery_chains: tuple[bytes, ...] = ()

    def encode_body(self, writer: ByteWriter) -> None:
        writer.bytes_u32(self.descriptor)
        writer.bytes_u32(self.chain)
        writer.u16(len(self.delivery_chains))
        for chain in self.delivery_chains:
            writer.bytes_u32(chain)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "RdzPublish":
        descriptor = reader.bytes_u32()
        chain = reader.bytes_u32()
        count = reader.u16()
        delivery = tuple(reader.bytes_u32() for _ in range(count))
        return cls(descriptor=descriptor, chain=chain, delivery_chains=delivery)


@register
@dataclass(frozen=True)
class RdzPublishResult(Message):
    TYPE: ClassVar[int] = 41
    ok: bool = False
    reason: str = ""

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u8(1 if self.ok else 0)
        writer.str_u16(self.reason)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "RdzPublishResult":
        return cls(ok=bool(reader.u8()), reason=reader.str_u16())


@register
@dataclass(frozen=True)
class RdzSubscribe(Message):
    """Endpoint -> rendezvous: subscribe to channels (trusted key hashes)."""

    TYPE: ClassVar[int] = 42
    channels: tuple[bytes, ...] = ()

    def encode_body(self, writer: ByteWriter) -> None:
        writer.u16(len(self.channels))
        for channel in self.channels:
            writer.bytes_u16(channel)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "RdzSubscribe":
        count = reader.u16()
        return cls(channels=tuple(reader.bytes_u16() for _ in range(count)))


@register
@dataclass(frozen=True)
class RdzExperiment(Message):
    """Rendezvous -> endpoint: a published experiment on your channels."""

    TYPE: ClassVar[int] = 43
    descriptor: bytes = b""
    chain: bytes = b""

    def encode_body(self, writer: ByteWriter) -> None:
        writer.bytes_u32(self.descriptor)
        writer.bytes_u32(self.chain)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "RdzExperiment":
        return cls(descriptor=reader.bytes_u32(), chain=reader.bytes_u32())


@register
@dataclass(frozen=True)
class RdzHeartbeat(Message):
    """Endpoint -> rendezvous: periodic liveness beacon.

    Sent on the already-open subscription stream, so liveness costs one
    small frame per interval and no extra connection. ``seq`` increases
    monotonically per endpoint process lifetime; a reset to a lower
    value signals the endpoint restarted since its last beacon.
    """

    TYPE: ClassVar[int] = 44
    endpoint_name: str = ""
    seq: int = 0

    def encode_body(self, writer: ByteWriter) -> None:
        writer.str_u16(self.endpoint_name)
        writer.u32(self.seq)

    @classmethod
    def decode_body(cls, reader: ByteReader) -> "RdzHeartbeat":
        return cls(endpoint_name=reader.str_u16(), seq=reader.u32())
