"""Cpf compiler driver: source text -> filter VM program.

Also carries the paper's Figure 2 monitor source, both verbatim (with its
dead-store bug — ``ping_dst`` is assigned *after* ``return len;``) and in
corrected form. DESIGN.md discusses why both are kept: the verbatim program
compiles fine but can never record the traceroute destination, so its
``recv`` entry denies every reply — which our tests demonstrate.
"""

from __future__ import annotations

from repro.cpf.codegen import CodeGen, CpfCompileError
from repro.cpf.lexer import CpfSyntaxError
from repro.cpf.parser import parse
from repro.cpf.stdlib import prelude
from repro.filtervm.program import FilterProgram


def compile_cpf(source: str) -> FilterProgram:
    """Compile Cpf source (with the standard prelude in scope) to a
    verified filter VM program.

    Raises :class:`~repro.cpf.lexer.CpfSyntaxError` on parse errors and
    :class:`~repro.cpf.codegen.CpfCompileError` on semantic errors.
    """
    struct_tags, typedefs, constants = prelude()
    program_ast = parse(
        source,
        struct_tags=struct_tags,
        typedefs=typedefs,
        constants=constants,
    )
    return CodeGen(program_ast).compile()


# ---------------------------------------------------------------------------
# Figure 2 of the paper, verbatim (modulo whitespace). Note the dead store:
# ``ping_dst = pkt->ip.dst;`` sits after ``return len;`` and never runs.
# ---------------------------------------------------------------------------
FIGURE2_VERBATIM = """
in_addr_t ping_dst = 0; // destination of traceroute

uint32_t send(const union packet * pkt, uint32_t len) {
    if (pkt->ip.ver == 4 && pkt->ip.ihl == 5 &&
        pkt->ip.proto == IPPROTO_ICMP &&
        pkt->ip.src == info->addr.ip &&
        pkt->ip.icmp.type == ICMP_ECHO_REQUEST)
    {
        return len; // allow
        ping_dst = pkt->ip.dst;
    } else
        return 0; // deny
}

uint32_t recv(const union packet * pkt, uint32_t len) {
    if (pkt->ip.ver == 4 && pkt->ip.ihl == 5 &&
        pkt->ip.proto == IPPROTO_ICMP && (
        (pkt->ip.icmp.type == ICMP_ECHO_REPLY &&
         pkt->ip.src == ping_dst) ||
        (pkt->ip.icmp.type == ICMP_TIME_EXCEEDED &&
         pkt->ip.icmp.orig.ip.src == info->addr.ip &&
         pkt->ip.icmp.orig.ip.dst == ping_dst)))
        return len; // allow
    else
        return 0; // deny
}
"""

# The corrected monitor: record the destination *before* returning.
FIGURE2_CORRECTED = """
in_addr_t ping_dst = 0; // destination of traceroute

uint32_t send(const union packet * pkt, uint32_t len) {
    if (pkt->ip.ver == 4 && pkt->ip.ihl == 5 &&
        pkt->ip.proto == IPPROTO_ICMP &&
        pkt->ip.src == info->addr.ip &&
        pkt->ip.icmp.type == ICMP_ECHO_REQUEST)
    {
        ping_dst = pkt->ip.dst;
        return len; // allow
    } else
        return 0; // deny
}

uint32_t recv(const union packet * pkt, uint32_t len) {
    if (pkt->ip.ver == 4 && pkt->ip.ihl == 5 &&
        pkt->ip.proto == IPPROTO_ICMP && (
        (pkt->ip.icmp.type == ICMP_ECHO_REPLY &&
         pkt->ip.src == ping_dst) ||
        (pkt->ip.icmp.type == ICMP_TIME_EXCEEDED &&
         pkt->ip.icmp.orig.ip.src == info->addr.ip &&
         pkt->ip.icmp.orig.ip.dst == ping_dst)))
        return len; // allow
    else
        return 0; // deny
}
"""


def figure2_monitor(corrected: bool = True) -> FilterProgram:
    """Compile the paper's Figure 2 traceroute monitor."""
    return compile_cpf(FIGURE2_CORRECTED if corrected else FIGURE2_VERBATIM)


__all__ = [
    "CpfCompileError",
    "CpfSyntaxError",
    "FIGURE2_CORRECTED",
    "FIGURE2_VERBATIM",
    "compile_cpf",
    "figure2_monitor",
]
