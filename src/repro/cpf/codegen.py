"""Cpf code generator: AST -> filter VM program.

Model mapping:

- **packet pointer parameters** (``const union packet *``) are symbolic:
  member access through them compiles to packet-space loads at the offsets
  computed from the struct layout,
- the builtin ``info`` (``const struct plinfo *``) maps to info-space loads,
- **globals** live in the VM's persistent memory (byte-addressed); nonzero
  initializers are collected into a synthesized ``init`` entry point,
- **locals and parameters** are 64-bit frame slots,
- all arithmetic happens on 64-bit stack values; loads sign/zero-extend by
  declared type, stores truncate, and casts renormalize.

Semantic errors raise :class:`CpfCompileError` with the source line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpf import ast
from repro.cpf.types import (
    ArrayType,
    CpfType,
    I32,
    I64,
    IntType,
    PointerType,
    StructType,
    U64,
    common_type,
    type_size,
)
from repro.filtervm.isa import Instruction, Op
from repro.filtervm.program import FilterProgram, Function

SPACE_PACKET = "packet"
SPACE_INFO = "info"
SPACE_GLOBAL = "global"

_LOAD_OPS = {
    (SPACE_PACKET, 1): Op.PKTLD8,
    (SPACE_PACKET, 2): Op.PKTLD16,
    (SPACE_PACKET, 4): Op.PKTLD32,
    (SPACE_INFO, 1): Op.INFOLD8,
    (SPACE_INFO, 2): Op.INFOLD16,
    (SPACE_INFO, 4): Op.INFOLD32,
    (SPACE_INFO, 8): Op.INFOLD64,
    (SPACE_GLOBAL, 1): Op.GLD8,
    (SPACE_GLOBAL, 2): Op.GLD16,
    (SPACE_GLOBAL, 4): Op.GLD32,
    (SPACE_GLOBAL, 8): Op.GLD64,
}

_STORE_OPS = {1: Op.GST8, 2: Op.GST16, 4: Op.GST32, 8: Op.GST64}

_ARITH_BINOPS = {
    "+": (Op.ADD, Op.ADD),
    "-": (Op.SUB, Op.SUB),
    "*": (Op.MUL, Op.MUL),
    "/": (Op.DIVU, Op.DIVS),
    "%": (Op.MODU, Op.MODS),
    "&": (Op.AND, Op.AND),
    "|": (Op.OR, Op.OR),
    "^": (Op.XOR, Op.XOR),
    "<<": (Op.SHL, Op.SHL),
    ">>": (Op.SHRU, Op.SHRS),
}

_CMP_BINOPS = {
    "==": (Op.EQ, Op.EQ),
    "!=": (Op.NE, Op.NE),
    "<": (Op.LTU, Op.LTS),
    "<=": (Op.LEU, Op.LES),
    ">": (Op.GTU, Op.GTS),
    ">=": (Op.GEU, Op.GES),
}


class CpfCompileError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass
class GlobalVar:
    name: str
    type: CpfType
    offset: int


@dataclass
class FunctionInfo:
    index: int
    node: ast.FunctionDef
    return_type: CpfType


@dataclass
class LValue:
    """A resolved assignable/loadable location.

    For ``kind == "memory"`` the byte offset has already been pushed onto
    the VM stack by the time the LValue is returned.
    """

    kind: str  # "local" | "memory"
    type: CpfType
    slot: int = -1
    space: str = ""
    bit_offset: int = 0
    bit_width: int = 0


class CodeGen:
    def __init__(self, program: ast.Program) -> None:
        self._ast = program
        self._code: list[Instruction] = []
        self._functions: dict[str, FunctionInfo] = {}
        self._globals: dict[str, GlobalVar] = {}
        self._globals_size = 0
        self._constants = dict(program.constants)
        # Per-function state.
        self._scopes: list[dict[str, tuple[int, CpfType]]] = []
        self._param_spaces: dict[str, str] = {}
        self._n_locals = 0
        self._current_return: CpfType = U64
        self._loop_stack: list[tuple[list[int], list[int]]] = []  # (breaks, continues)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def compile(self) -> FilterProgram:
        init_stores: list[tuple[GlobalVar, int]] = []
        for decl in self._ast.globals:
            var = self._declare_global(decl)
            if decl.init is not None:
                value = self._fold_constant(decl.init)
                if value is None:
                    raise CpfCompileError(
                        f"global {decl.name!r} initializer must be constant",
                        decl.line,
                    )
                if value != 0:
                    init_stores.append((var, value))
        for index, node in enumerate(self._ast.functions):
            if node.name in self._functions:
                raise CpfCompileError(f"duplicate function {node.name!r}", node.line)
            self._functions[node.name] = FunctionInfo(
                index=index, node=node, return_type=node.return_type
            )
        has_user_init = "init" in self._functions
        vm_functions: list[Function] = []
        for name, info in self._functions.items():
            offset = len(self._code)
            n_locals = self._compile_function(info.node, init_stores if
                                              (name == "init" and init_stores) else [])
            vm_functions.append(
                Function(
                    name=name,
                    offset=offset,
                    n_args=len(info.node.params),
                    n_locals=n_locals,
                )
            )
        if init_stores and not has_user_init:
            offset = len(self._code)
            self._emit_init_stores(init_stores)
            self._emit(Op.PUSH, 0)
            self._emit(Op.RET)
            vm_functions.append(Function(name="init", offset=offset, n_args=0, n_locals=0))
        program = FilterProgram(
            code=self._code,
            functions=vm_functions,
            globals_size=self._globals_size,
        )
        program.verify()
        return program

    def _declare_global(self, decl: ast.GlobalDecl) -> GlobalVar:
        if decl.name in self._globals:
            raise CpfCompileError(f"duplicate global {decl.name!r}", decl.line)
        if isinstance(decl.var_type, PointerType):
            raise CpfCompileError(
                f"global {decl.name!r}: pointer globals are not supported",
                decl.line,
            )
        var = GlobalVar(name=decl.name, type=decl.var_type, offset=self._globals_size)
        self._globals_size += type_size(decl.var_type)
        self._globals[decl.name] = var
        return var

    def _emit_init_stores(self, stores: list[tuple[GlobalVar, int]]) -> None:
        for var, value in stores:
            size = type_size(var.type) if isinstance(var.type, IntType) else None
            if size is None:
                raise CpfCompileError(
                    f"global {var.name!r}: only integer globals may have "
                    "initializers",
                    0,
                )
            self._emit(Op.PUSH, self._wrap_signed(value))
            self._emit(Op.PUSH, var.offset)
            self._emit(_STORE_OPS[size])

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def _compile_function(
        self, node: ast.FunctionDef, prepend_init: list[tuple[GlobalVar, int]]
    ) -> int:
        self._scopes = [{}]
        self._param_spaces = {}
        self._n_locals = 0
        self._scratch_slot_value = -1
        self._current_return = node.return_type
        self._loop_stack = []
        for param_name, param_type in node.params:
            slot = self._n_locals
            self._n_locals += 1
            if isinstance(param_type, PointerType):
                space = self._pointer_space(param_type, node.line)
                self._param_spaces[param_name] = space
            self._scopes[0][param_name] = (slot, param_type)
        start = len(self._code)
        if prepend_init:
            self._emit_init_stores(prepend_init)
        self._compile_stmt(node.body)
        # Implicit return 0, only when some path can actually fall off the
        # end of the body (a body ending in return on every path would
        # otherwise grow a dead PUSH/RET tail).
        if self._falls_through(start):
            self._emit(Op.PUSH, 0)
            self._emit(Op.RET)
        return self._n_locals

    def _falls_through(self, start: int) -> bool:
        """Whether control can reach ``len(self._code)`` from ``start``.

        Conservative reachability over the instructions emitted for the
        current function; jump operands are already absolute indices (loop
        exit jumps may legitimately target the not-yet-emitted tail).
        """
        end = len(self._code)
        seen: set[int] = set()
        stack = [start]
        while stack:
            pc = stack.pop()
            if pc >= end:
                return True
            if pc in seen or pc < start:
                continue
            seen.add(pc)
            instruction = self._code[pc]
            if instruction.op == Op.RET:
                continue
            if instruction.op == Op.JMP:
                stack.append(instruction.operand)
            elif instruction.op in (Op.JZ, Op.JNZ):
                stack.append(instruction.operand)
                stack.append(pc + 1)
            else:
                stack.append(pc + 1)
        return False

    def _pointer_space(self, pointer: PointerType, line: int) -> str:
        target = pointer.target
        if isinstance(target, StructType):
            if target.tag == "packet":
                return SPACE_PACKET
            if target.tag == "plinfo":
                return SPACE_INFO
        raise CpfCompileError(
            f"unsupported pointer type {pointer}; only 'const union packet *' "
            "and 'const struct plinfo *' parameters exist in Cpf",
            line,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _compile_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._scopes.append({})
            for inner in stmt.statements:
                self._compile_stmt(inner)
            self._scopes.pop()
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._compile_expr(stmt.expr)
                self._emit(Op.POP)
        elif isinstance(stmt, ast.VarDecl):
            self._compile_var_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._compile_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._compile_expr(stmt.value)
            else:
                self._emit(Op.PUSH, 0)
            self._emit(Op.RET)
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise CpfCompileError("break outside loop", stmt.line)
            self._loop_stack[-1][0].append(self._emit_placeholder(Op.JMP))
        elif isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise CpfCompileError("continue outside loop", stmt.line)
            self._loop_stack[-1][1].append(self._emit_placeholder(Op.JMP))
        else:  # pragma: no cover
            raise CpfCompileError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _compile_var_decl(self, stmt: ast.VarDecl) -> None:
        if isinstance(stmt.var_type, (StructType, ArrayType)):
            raise CpfCompileError(
                f"local {stmt.name!r}: aggregate locals are not supported "
                "(use a global)",
                stmt.line,
            )
        if isinstance(stmt.var_type, PointerType):
            raise CpfCompileError(
                f"local {stmt.name!r}: pointer locals are not supported",
                stmt.line,
            )
        if stmt.name in self._scopes[-1]:
            raise CpfCompileError(f"duplicate local {stmt.name!r}", stmt.line)
        slot = self._n_locals
        self._n_locals += 1
        self._scopes[-1][stmt.name] = (slot, stmt.var_type)
        if stmt.init is not None:
            value_type = self._compile_expr(stmt.init)
            self._normalize_to(stmt.var_type, value_type)
            self._emit(Op.STL, slot)
        else:
            self._emit(Op.PUSH, 0)
            self._emit(Op.STL, slot)

    def _compile_if(self, stmt: ast.If) -> None:
        self._compile_expr(stmt.condition)
        else_jump = self._emit_placeholder(Op.JZ)
        then_start = len(self._code)
        self._compile_stmt(stmt.then_body)
        if stmt.else_body is not None:
            # Skip the join jump when the then-branch always returns: it
            # would be dead code, and could target one-past-the-end.
            end_jump = (self._emit_placeholder(Op.JMP)
                        if self._falls_through(then_start) else None)
            self._patch(else_jump, len(self._code))
            self._compile_stmt(stmt.else_body)
            if end_jump is not None:
                self._patch(end_jump, len(self._code))
        else:
            self._patch(else_jump, len(self._code))

    def _compile_while(self, stmt: ast.While) -> None:
        top = len(self._code)
        self._compile_expr(stmt.condition)
        exit_jump = self._emit_placeholder(Op.JZ)
        self._loop_stack.append(([], []))
        self._compile_stmt(stmt.body)
        breaks, continues = self._loop_stack.pop()
        for index in continues:
            self._patch(index, top)
        self._emit(Op.JMP, top)
        end = len(self._code)
        self._patch(exit_jump, end)
        for index in breaks:
            self._patch(index, end)

    def _compile_do_while(self, stmt: ast.DoWhile) -> None:
        top = len(self._code)
        self._loop_stack.append(([], []))
        self._compile_stmt(stmt.body)
        breaks, continues = self._loop_stack.pop()
        cond_at = len(self._code)
        for index in continues:
            self._patch(index, cond_at)
        self._compile_expr(stmt.condition)
        self._emit(Op.JNZ, top)
        end = len(self._code)
        for index in breaks:
            self._patch(index, end)

    def _compile_for(self, stmt: ast.For) -> None:
        self._scopes.append({})
        if stmt.init is not None:
            self._compile_stmt(stmt.init)
        top = len(self._code)
        exit_jump = None
        if stmt.condition is not None:
            self._compile_expr(stmt.condition)
            exit_jump = self._emit_placeholder(Op.JZ)
        self._loop_stack.append(([], []))
        self._compile_stmt(stmt.body)
        breaks, continues = self._loop_stack.pop()
        step_at = len(self._code)
        for index in continues:
            self._patch(index, step_at)
        if stmt.step is not None:
            self._compile_expr(stmt.step)
            self._emit(Op.POP)
        self._emit(Op.JMP, top)
        end = len(self._code)
        if exit_jump is not None:
            self._patch(exit_jump, end)
        for index in breaks:
            self._patch(index, end)
        self._scopes.pop()

    # ------------------------------------------------------------------
    # Expressions (each leaves exactly one value on the stack)
    # ------------------------------------------------------------------

    def _compile_expr(self, expr: ast.Expr) -> CpfType:
        if isinstance(expr, ast.Number):
            self._emit(Op.PUSH, self._wrap_signed(expr.value))
            if expr.unsigned:
                # C: a 'u'-suffixed literal is unsigned; an unsuffixed
                # decimal too large for int32 is also unsigned here (the
                # common uint32 case in packet-header code).
                return IntType(4, False) if expr.value < (1 << 32) else U64
            if -(1 << 31) <= expr.value < (1 << 31):
                return I32
            if expr.value < (1 << 32):
                return IntType(4, False)
            return I64 if expr.value < (1 << 63) else U64
        if isinstance(expr, ast.Ident):
            return self._compile_ident(expr)
        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._compile_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._compile_conditional(expr)
        if isinstance(expr, ast.Call):
            return self._compile_call(expr)
        if isinstance(expr, (ast.MemberAccess, ast.Index)):
            lvalue = self._compile_lvalue(expr)
            return self._load_lvalue(lvalue, expr.line)
        if isinstance(expr, ast.Cast):
            operand_type = self._compile_expr(expr.operand)
            if not isinstance(expr.target_type, IntType):
                raise CpfCompileError("can only cast to integer types", expr.line)
            self._normalize_to(expr.target_type, operand_type)
            return expr.target_type
        raise CpfCompileError(f"unhandled expression {type(expr).__name__}", expr.line)

    def _compile_ident(self, expr: ast.Ident) -> CpfType:
        resolved = self._lookup_local(expr.name)
        if resolved is not None:
            slot, var_type = resolved
            if isinstance(var_type, PointerType):
                raise CpfCompileError(
                    f"{expr.name!r} is a pointer; pointers have no value in Cpf "
                    "(use -> member access)",
                    expr.line,
                )
            self._emit(Op.LDL, slot)
            return self._promote(var_type)
        if expr.name in self._globals:
            var = self._globals[expr.name]
            if not isinstance(var.type, IntType):
                raise CpfCompileError(
                    f"global aggregate {expr.name!r} cannot be used as a value",
                    expr.line,
                )
            self._emit(Op.PUSH, var.offset)
            self._emit(_LOAD_OPS[(SPACE_GLOBAL, var.type.size)])
            self._sign_extend_if_needed(var.type)
            return self._promote(var.type)
        if expr.name in self._constants:
            self._emit(Op.PUSH, self._wrap_signed(self._constants[expr.name]))
            return I64
        if expr.name == "info":
            raise CpfCompileError(
                "'info' is a pointer; use info-> member access", expr.line
            )
        raise CpfCompileError(f"undefined identifier {expr.name!r}", expr.line)

    def _compile_unary(self, expr: ast.Unary) -> CpfType:
        operand_type = self._compile_expr(expr.operand)
        if expr.op == "+":
            return operand_type
        if expr.op == "-":
            self._emit(Op.NEG)
            return IntType(8, True)
        if expr.op == "~":
            self._emit(Op.BNOT)
            return self._promote(operand_type) if isinstance(operand_type, IntType) else U64
        if expr.op == "!":
            self._emit(Op.LNOT)
            return I32
        raise CpfCompileError(f"unhandled unary operator {expr.op!r}", expr.line)

    def _compile_binary(self, expr: ast.Binary) -> CpfType:
        if expr.op == "&&":
            return self._compile_short_circuit(expr, is_and=True)
        if expr.op == "||":
            return self._compile_short_circuit(expr, is_and=False)
        if expr.op == ",":
            self._compile_expr(expr.left)
            self._emit(Op.POP)
            return self._compile_expr(expr.right)
        left_type = self._compile_expr(expr.left)
        right_type = self._compile_expr(expr.right)
        if not isinstance(left_type, IntType) or not isinstance(right_type, IntType):
            raise CpfCompileError(
                f"operator {expr.op!r} requires integer operands", expr.line
            )
        result = common_type(left_type, right_type)
        if expr.op in _ARITH_BINOPS:
            unsigned_op, signed_op = _ARITH_BINOPS[expr.op]
            self._emit(signed_op if result.signed else unsigned_op)
            return IntType(8, result.signed)
        if expr.op in _CMP_BINOPS:
            unsigned_op, signed_op = _CMP_BINOPS[expr.op]
            self._emit(signed_op if result.signed else unsigned_op)
            return I32
        raise CpfCompileError(f"unhandled binary operator {expr.op!r}", expr.line)

    def _compile_short_circuit(self, expr: ast.Binary, is_and: bool) -> CpfType:
        self._compile_expr(expr.left)
        if is_and:
            fail_jump = self._emit_placeholder(Op.JZ)
            self._compile_expr(expr.right)
            second_fail = self._emit_placeholder(Op.JZ)
            self._emit(Op.PUSH, 1)
            end_jump = self._emit_placeholder(Op.JMP)
            self._patch(fail_jump, len(self._code))
            self._patch(second_fail, len(self._code))
            self._emit(Op.PUSH, 0)
            self._patch(end_jump, len(self._code))
        else:
            taken_jump = self._emit_placeholder(Op.JNZ)
            self._compile_expr(expr.right)
            second_taken = self._emit_placeholder(Op.JNZ)
            self._emit(Op.PUSH, 0)
            end_jump = self._emit_placeholder(Op.JMP)
            self._patch(taken_jump, len(self._code))
            self._patch(second_taken, len(self._code))
            self._emit(Op.PUSH, 1)
            self._patch(end_jump, len(self._code))
        return I32

    def _compile_conditional(self, expr: ast.Conditional) -> CpfType:
        self._compile_expr(expr.condition)
        else_jump = self._emit_placeholder(Op.JZ)
        then_type = self._compile_expr(expr.then_value)
        end_jump = self._emit_placeholder(Op.JMP)
        self._patch(else_jump, len(self._code))
        else_type = self._compile_expr(expr.else_value)
        self._patch(end_jump, len(self._code))
        if isinstance(then_type, IntType) and isinstance(else_type, IntType):
            return common_type(then_type, else_type)
        return U64

    def _compile_call(self, expr: ast.Call) -> CpfType:
        info = self._functions.get(expr.name)
        if info is None:
            raise CpfCompileError(f"call to undefined function {expr.name!r}", expr.line)
        params = info.node.params
        if len(expr.args) != len(params):
            raise CpfCompileError(
                f"{expr.name!r} takes {len(params)} arguments, got {len(expr.args)}",
                expr.line,
            )
        for arg, (param_name, param_type) in zip(expr.args, params):
            if isinstance(param_type, PointerType):
                # Pointer arguments are symbolic; pass a zero placeholder.
                # The callee's own parameter binds to the same single
                # packet/info space, so any pointer expression works.
                if not isinstance(arg, ast.Ident):
                    raise CpfCompileError(
                        "pointer arguments must be passed by name", arg.line
                    )
                self._emit(Op.PUSH, 0)
            else:
                self._compile_expr(arg)
        self._emit(Op.CALL, info.index)
        return info.return_type if isinstance(info.return_type, IntType) else U64

    def _compile_assign(self, expr: ast.Assign) -> CpfType:
        target = expr.target
        if isinstance(target, ast.Ident):
            resolved = self._lookup_local(target.name)
            if resolved is not None:
                return self._assign_local(expr, *resolved)
            if target.name in self._globals:
                return self._assign_global_scalar(expr, self._globals[target.name])
            raise CpfCompileError(
                f"cannot assign to {target.name!r}", expr.line
            )
        # Memory lvalue (global array element / struct member).
        lvalue = self._compile_lvalue(target)
        if lvalue.space != SPACE_GLOBAL:
            raise CpfCompileError(
                "packet and info memory are read-only", expr.line
            )
        if lvalue.bit_width:
            raise CpfCompileError("cannot assign to bitfields", expr.line)
        if not isinstance(lvalue.type, IntType):
            raise CpfCompileError("can only assign integer values", expr.line)
        size = lvalue.type.size
        if expr.op == "=":
            # Stack: [offset]; need [value, offset].
            value_type = self._compile_expr(expr.value)
            self._normalize_to(lvalue.type, value_type)
            # Stack: [offset, value] -> keep a copy of value as the result.
            self._emit(Op.DUP)  # [offset, value, value]
            self._emit(Op.STL, self._scratch_slot())  # [offset, value]
            self._emit(Op.SWAP)  # [value, offset]
            self._emit(_STORE_OPS[size])
            self._emit(Op.LDL, self._scratch_slot_value)
            return self._promote(lvalue.type)
        # Compound assignment: offset on stack; duplicate for load + store.
        self._emit(Op.DUP)  # [offset, offset]
        self._emit(_LOAD_OPS[(SPACE_GLOBAL, size)])  # [offset, old]
        self._sign_extend_if_needed(lvalue.type)
        value_type = self._compile_expr(expr.value)  # [offset, old, rhs]
        op_token = expr.op[:-1]
        unsigned_op, signed_op = _ARITH_BINOPS[op_token]
        result = common_type(self._promote(lvalue.type),
                             value_type if isinstance(value_type, IntType) else U64)
        self._emit(signed_op if result.signed else unsigned_op)  # [offset, new]
        self._normalize_to(lvalue.type, IntType(8, result.signed))
        self._emit(Op.DUP)
        self._emit(Op.STL, self._scratch_slot())  # [offset, new]
        self._emit(Op.SWAP)  # [new, offset]
        self._emit(_STORE_OPS[size])
        self._emit(Op.LDL, self._scratch_slot_value)
        return self._promote(lvalue.type)

    def _assign_local(self, expr: ast.Assign, slot: int, var_type: CpfType) -> CpfType:
        if isinstance(var_type, PointerType):
            raise CpfCompileError("cannot assign to pointer variables", expr.line)
        assert isinstance(var_type, IntType)
        if expr.op == "=":
            value_type = self._compile_expr(expr.value)
            self._normalize_to(var_type, value_type)
        else:
            self._emit(Op.LDL, slot)
            value_type = self._compile_expr(expr.value)
            op_token = expr.op[:-1]
            unsigned_op, signed_op = _ARITH_BINOPS[op_token]
            result = common_type(
                self._promote(var_type),
                value_type if isinstance(value_type, IntType) else U64,
            )
            self._emit(signed_op if result.signed else unsigned_op)
            self._normalize_to(var_type, IntType(8, result.signed))
        self._emit(Op.DUP)
        self._emit(Op.STL, slot)
        return self._promote(var_type)

    def _assign_global_scalar(self, expr: ast.Assign, var: GlobalVar) -> CpfType:
        if not isinstance(var.type, IntType):
            raise CpfCompileError(
                f"cannot assign to aggregate global {var.name!r}", expr.line
            )
        size = var.type.size
        if expr.op == "=":
            value_type = self._compile_expr(expr.value)
            self._normalize_to(var.type, value_type)
        else:
            self._emit(Op.PUSH, var.offset)
            self._emit(_LOAD_OPS[(SPACE_GLOBAL, size)])
            self._sign_extend_if_needed(var.type)
            value_type = self._compile_expr(expr.value)
            op_token = expr.op[:-1]
            unsigned_op, signed_op = _ARITH_BINOPS[op_token]
            result = common_type(
                self._promote(var.type),
                value_type if isinstance(value_type, IntType) else U64,
            )
            self._emit(signed_op if result.signed else unsigned_op)
            self._normalize_to(var.type, IntType(8, result.signed))
        self._emit(Op.DUP)  # [value, value]
        self._emit(Op.PUSH, var.offset)  # [value, value, offset]
        self._emit(_STORE_OPS[size])  # [value]
        return self._promote(var.type)

    # ------------------------------------------------------------------
    # Lvalue resolution (memory spaces)
    # ------------------------------------------------------------------

    def _compile_lvalue(self, expr: ast.Expr) -> LValue:
        """Resolve a memory lvalue, emitting code that pushes its offset."""
        if isinstance(expr, ast.MemberAccess):
            return self._lvalue_member(expr)
        if isinstance(expr, ast.Index):
            return self._lvalue_index(expr)
        if isinstance(expr, ast.Ident):
            if expr.name in self._globals:
                var = self._globals[expr.name]
                self._emit(Op.PUSH, var.offset)
                return LValue(kind="memory", type=var.type, space=SPACE_GLOBAL)
            raise CpfCompileError(
                f"{expr.name!r} is not a memory location", expr.line
            )
        raise CpfCompileError(
            f"expression is not an lvalue ({type(expr).__name__})", expr.line
        )

    def _lvalue_member(self, expr: ast.MemberAccess) -> LValue:
        if expr.arrow:
            base = expr.base
            if not isinstance(base, ast.Ident):
                raise CpfCompileError(
                    "-> requires a pointer variable on the left", expr.line
                )
            space, struct = self._resolve_pointer_ident(base)
            self._emit(Op.PUSH, 0)  # base offset of the space
        else:
            inner = self._compile_lvalue(expr.base)
            if not isinstance(inner.type, StructType):
                raise CpfCompileError(
                    f"member access on non-struct type {inner.type}", expr.line
                )
            space, struct = inner.space, inner.type
        found = struct.find_member(expr.member)
        if found is None:
            raise CpfCompileError(
                f"{struct} has no member {expr.member!r}", expr.line
            )
        member, byte_offset, bit_offset = found
        if byte_offset:
            self._emit(Op.PUSH, byte_offset)
            self._emit(Op.ADD)
        return LValue(
            kind="memory",
            type=member.type,
            space=space,
            bit_offset=bit_offset,
            bit_width=member.bit_width,
        )

    def _lvalue_index(self, expr: ast.Index) -> LValue:
        base = self._compile_lvalue(expr.base)
        if not isinstance(base.type, ArrayType):
            raise CpfCompileError(
                f"indexing non-array type {base.type}", expr.line
            )
        element = base.type.element
        index_type = self._compile_expr(expr.index)
        if not isinstance(index_type, IntType):
            raise CpfCompileError("array index must be an integer", expr.line)
        element_size = type_size(element)
        if element_size != 1:
            self._emit(Op.PUSH, element_size)
            self._emit(Op.MUL)
        self._emit(Op.ADD)
        return LValue(kind="memory", type=element, space=base.space)

    def _resolve_pointer_ident(self, ident: ast.Ident) -> tuple[str, StructType]:
        resolved = self._lookup_local(ident.name)
        if resolved is not None:
            _slot, var_type = resolved
            if isinstance(var_type, PointerType) and isinstance(
                var_type.target, StructType
            ):
                space = self._param_spaces.get(ident.name)
                if space is None:
                    space = self._pointer_space(var_type, ident.line)
                return space, var_type.target
            raise CpfCompileError(f"{ident.name!r} is not a pointer", ident.line)
        if ident.name == "info":
            from repro.cpf.stdlib import plinfo_struct

            return SPACE_INFO, plinfo_struct()
        raise CpfCompileError(f"unknown pointer {ident.name!r}", ident.line)

    def _load_lvalue(self, lvalue: LValue, line: int) -> CpfType:
        if not isinstance(lvalue.type, IntType):
            raise CpfCompileError(
                f"cannot load aggregate value of type {lvalue.type}", line
            )
        size = lvalue.type.size
        if lvalue.bit_width:
            # Bitfields load their containing byte, then shift and mask
            # (MSB-first layout).
            load_op = _LOAD_OPS.get((lvalue.space, 1))
            assert load_op is not None
            self._emit(load_op)
            shift = 8 - lvalue.bit_offset - lvalue.bit_width
            if shift:
                self._emit(Op.PUSH, shift)
                self._emit(Op.SHRU)
            self._emit(Op.PUSH, (1 << lvalue.bit_width) - 1)
            self._emit(Op.AND)
            return IntType(4, False)
        load_op = _LOAD_OPS.get((lvalue.space, size))
        if load_op is None:
            raise CpfCompileError(
                f"cannot load {size}-byte value from {lvalue.space} space", line
            )
        self._emit(load_op)
        self._sign_extend_if_needed(lvalue.type)
        return self._promote(lvalue.type)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _lookup_local(self, name: str) -> Optional[tuple[int, CpfType]]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    _scratch_slot_value: int = -1

    def _scratch_slot(self) -> int:
        """A per-function scratch local used by store sequences."""
        if self._scratch_slot_value == -1 or self._scratch_slot_value >= self._n_locals:
            self._scratch_slot_value = self._n_locals
            self._n_locals += 1
        return self._scratch_slot_value

    def _promote(self, var_type: IntType) -> IntType:
        """Type of a loaded value: 64-bit with the declared signedness."""
        return IntType(8, var_type.signed)

    def _sign_extend_if_needed(self, var_type: IntType) -> None:
        if var_type.signed and var_type.size < 8:
            bits = 64 - var_type.bits
            self._emit(Op.PUSH, bits)
            self._emit(Op.SHL)
            self._emit(Op.PUSH, bits)
            self._emit(Op.SHRS)

    def _normalize_to(self, target: IntType, _source: CpfType) -> None:
        """Coerce the stack top to the representation of ``target``."""
        if target.size >= 8:
            return
        if target.signed:
            bits = 64 - target.bits
            self._emit(Op.PUSH, bits)
            self._emit(Op.SHL)
            self._emit(Op.PUSH, bits)
            self._emit(Op.SHRS)
        else:
            self._emit(Op.PUSH, (1 << target.bits) - 1)
            self._emit(Op.AND)

    def _fold_constant(self, expr: ast.Expr) -> Optional[int]:
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Ident) and expr.name in self._constants:
            return self._constants[expr.name]
        if isinstance(expr, ast.Unary):
            inner = self._fold_constant(expr.operand)
            if inner is None:
                return None
            return {"-": -inner, "~": ~inner, "!": int(not inner), "+": inner}[expr.op]
        if isinstance(expr, ast.Binary):
            left = self._fold_constant(expr.left)
            right = self._fold_constant(expr.right)
            if left is None or right is None:
                return None
            try:
                return {
                    "+": left + right, "-": left - right, "*": left * right,
                    "/": left // right if right else None,
                    "%": left % right if right else None,
                    "&": left & right, "|": left | right, "^": left ^ right,
                    "<<": left << right, ">>": left >> right,
                    "==": int(left == right), "!=": int(left != right),
                    "<": int(left < right), "<=": int(left <= right),
                    ">": int(left > right), ">=": int(left >= right),
                }[expr.op]
            except (KeyError, TypeError, ZeroDivisionError):
                return None
        return None

    @staticmethod
    def _wrap_signed(value: int) -> int:
        """Map an arbitrary Python int into the VM's i64 operand range."""
        value &= (1 << 64) - 1
        return value - (1 << 64) if value >= (1 << 63) else value

    def _emit(self, op: Op, operand: int = 0) -> int:
        index = len(self._code)
        self._code.append(Instruction(op, operand))
        return index

    def _emit_placeholder(self, op: Op) -> int:
        return self._emit(op, 0)

    def _patch(self, index: int, target: int) -> None:
        self._code[index] = Instruction(self._code[index].op, target)
