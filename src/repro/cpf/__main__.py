"""Cpf compiler command line: ``python -m repro.cpf``.

Compiles a Cpf monitor/filter source file into a serialized filter VM
program (the bytes that go into a certificate's monitor restriction or an
``ncap`` command), with options to disassemble or to test entry points
against a hex-encoded packet.

Examples::

    python -m repro.cpf monitor.c -o monitor.plf
    python -m repro.cpf monitor.c --disasm
    python -m repro.cpf monitor.c --run send --packet 4500...
"""

from __future__ import annotations

import argparse
import sys

from repro.cpf.codegen import CpfCompileError
from repro.cpf.compiler import compile_cpf
from repro.cpf.lexer import CpfSyntaxError
from repro.cpf.lint import lint_source
from repro.filtervm import BytesInfo, FilterVM, disassemble
from repro.filtervm.verify import verify


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cpf",
        description="Compile Cpf monitor programs for the PacketLab filter VM",
    )
    parser.add_argument("source", help="Cpf source file (use '-' for stdin)")
    parser.add_argument("-o", "--output",
                        help="write the serialized program to this file")
    parser.add_argument("--disasm", action="store_true",
                        help="print the compiled program's assembly listing")
    parser.add_argument("--verify", action="store_true",
                        help="run the bytecode verifier and source lint; "
                        "exit 1 if the verifier rejects the program")
    parser.add_argument("--run", metavar="ENTRY",
                        help="invoke an entry point (send/recv/init)")
    parser.add_argument("--packet", default="",
                        help="hex packet bytes for --run")
    parser.add_argument("--info", default="",
                        help="hex info-block bytes for --run")
    args = parser.parse_args(argv)

    if args.source == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.source, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.source}: {exc}", file=sys.stderr)
            return 1

    try:
        program = compile_cpf(source)
    except (CpfSyntaxError, CpfCompileError) as exc:
        print(f"{args.source}: {exc}", file=sys.stderr)
        return 1

    encoded = program.encode()
    print(
        f"compiled: {len(program.code)} instructions, "
        f"{program.globals_size} B globals, entry points "
        f"{program.entry_points}, {len(encoded)} B serialized"
    )
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(encoded)
        print(f"wrote {args.output}")
    if args.verify:
        print()
        for diagnostic in lint_source(source):
            print(diagnostic.render(args.source))
        report = verify(program)
        print(report.render())
        if not report.ok:
            return 1
    if args.disasm:
        print()
        print(disassemble(program))
    if args.run:
        packet = bytes.fromhex(args.packet)
        vm = FilterVM(program, info=BytesInfo(bytes.fromhex(args.info)))
        vm.run_init()
        verdict = vm.invoke(args.run, packet=packet, args=(0, len(packet)))
        print(f"{args.run}({len(packet)}-byte packet) -> verdict {verdict}"
              + (f" (fault: {vm.last_fault})" if vm.faults else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
