"""Cpf abstract syntax tree nodes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cpf.types import CpfType


@dataclass(frozen=True)
class Node:
    line: int


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class Number(Node):
    value: int
    unsigned: bool = False  # 'u' suffix: C unsigned-literal semantics


@dataclass(frozen=True)
class Ident(Node):
    name: str


@dataclass(frozen=True)
class Unary(Node):
    op: str  # "-", "~", "!", "+"
    operand: "Expr"


@dataclass(frozen=True)
class Binary(Node):
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Assign(Node):
    op: str  # "=", "+=", ...
    target: "Expr"
    value: "Expr"


@dataclass(frozen=True)
class Conditional(Node):
    condition: "Expr"
    then_value: "Expr"
    else_value: "Expr"


@dataclass(frozen=True)
class Call(Node):
    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class MemberAccess(Node):
    base: "Expr"
    member: str
    arrow: bool  # True for ->


@dataclass(frozen=True)
class Index(Node):
    base: "Expr"
    index: "Expr"


@dataclass(frozen=True)
class Cast(Node):
    target_type: CpfType
    operand: "Expr"


Expr = (
    Number | Ident | Unary | Binary | Assign | Conditional | Call
    | MemberAccess | Index | Cast
)


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class ExprStmt(Node):
    expr: Optional[Expr]


@dataclass(frozen=True)
class VarDecl(Node):
    name: str
    var_type: CpfType
    init: Optional[Expr]


@dataclass(frozen=True)
class If(Node):
    condition: Expr
    then_body: "Stmt"
    else_body: Optional["Stmt"]


@dataclass(frozen=True)
class While(Node):
    condition: Expr
    body: "Stmt"


@dataclass(frozen=True)
class DoWhile(Node):
    body: "Stmt"
    condition: Expr


@dataclass(frozen=True)
class For(Node):
    init: Optional["Stmt"]
    condition: Optional[Expr]
    step: Optional[Expr]
    body: "Stmt"


@dataclass(frozen=True)
class Return(Node):
    value: Optional[Expr]


@dataclass(frozen=True)
class Break(Node):
    pass


@dataclass(frozen=True)
class Continue(Node):
    pass


@dataclass(frozen=True)
class Block(Node):
    statements: tuple["Stmt", ...]


Stmt = ExprStmt | VarDecl | If | While | DoWhile | For | Return | Break | Continue | Block


# -- top level ---------------------------------------------------------------


@dataclass(frozen=True)
class GlobalDecl(Node):
    name: str
    var_type: CpfType
    init: Optional[Expr]


@dataclass(frozen=True)
class FunctionDef(Node):
    name: str
    return_type: CpfType
    params: tuple[tuple[str, CpfType], ...]
    body: Block


@dataclass(frozen=True)
class Program(Node):
    globals: tuple[GlobalDecl, ...]
    functions: tuple[FunctionDef, ...]
    constants: dict[str, int] = field(default_factory=dict)
